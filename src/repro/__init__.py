"""repro: a BFT ordering service for Hyperledger Fabric, reproduced.

A from-scratch Python implementation of Sousa, Bessani & Vukolić,
"A Byzantine Fault-Tolerant Ordering Service for the Hyperledger
Fabric Blockchain Platform" (DSN 2018): the BFT-SMaRt replication
library with its WHEAT geo-optimizations, the Hyperledger Fabric v1.0
transaction pipeline, the BFT ordering service that connects them, and
a deterministic simulation substrate plus the benchmark harness that
regenerates every figure of the paper's evaluation.

Quickstart::

    from repro import build_ordering_service, OrderingServiceConfig
    from repro.fabric import ChannelConfig
    from repro.fabric.envelope import Envelope

    service = build_ordering_service(OrderingServiceConfig(
        f=1, channel=ChannelConfig("ch0", max_message_count=10)))
    for _ in range(20):
        service.submit(Envelope.raw("ch0", payload_size=1024))
    service.run(1.0)
    assert service.frontends[0].blocks_delivered == 2

Packages:

- :mod:`repro.sim` -- discrete-event simulation kernel (network, CPU);
- :mod:`repro.crypto` -- SHA-256 hashing, pure-Python ECDSA P-256,
  simulated signatures with modeled cost, HMAC channel MACs;
- :mod:`repro.smart` -- BFT-SMaRt state machine replication
  (consensus, leader change, state transfer, reconfiguration, WHEAT);
- :mod:`repro.fabric` -- the Hyperledger Fabric substrate (envelopes,
  blocks, endorsement, validation, ledgers, solo/Kafka orderers);
- :mod:`repro.ordering` -- the paper's contribution: the BFT ordering
  service (nodes, block cutter, frontends, deployment builders);
- :mod:`repro.bench` -- capacity models, topologies and the
  experiments behind every figure.
"""

from repro.ordering import (
    OrderingService,
    OrderingServiceConfig,
    build_ordering_service,
)

__version__ = "1.0.0"

__all__ = [
    "OrderingService",
    "OrderingServiceConfig",
    "build_ordering_service",
    "__version__",
]
