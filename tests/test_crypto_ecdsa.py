"""Unit tests for the from-scratch ECDSA P-256 implementation."""

import random

import pytest

from repro.crypto.ecdsa import ECDSAP256Scheme, EllipticCurvePoint, P256


@pytest.fixture(scope="module")
def scheme():
    return ECDSAP256Scheme()


@pytest.fixture(scope="module")
def keypair(scheme):
    return scheme.keygen(random.Random(42))


class TestCurveArithmetic:
    def test_generator_on_curve(self):
        point = EllipticCurvePoint.generator(P256)
        assert not point.is_infinity

    def test_off_curve_point_rejected(self):
        with pytest.raises(ValueError):
            EllipticCurvePoint(P256, 1, 1)

    def test_addition_identity(self):
        g = EllipticCurvePoint.generator(P256)
        infinity = EllipticCurvePoint.infinity(P256)
        assert g + infinity == g
        assert infinity + g == g

    def test_point_plus_negation_is_infinity(self):
        g = EllipticCurvePoint.generator(P256)
        assert (g + (-g)).is_infinity

    def test_doubling_matches_addition(self):
        g = EllipticCurvePoint.generator(P256)
        assert g + g == g * 2

    def test_scalar_multiplication_distributes(self):
        g = EllipticCurvePoint.generator(P256)
        assert g * 5 == g * 2 + g * 3

    def test_order_annihilates_generator(self):
        g = EllipticCurvePoint.generator(P256)
        assert (g * P256.n).is_infinity

    def test_negative_scalar(self):
        g = EllipticCurvePoint.generator(P256)
        assert g * (-3) == -(g * 3)

    def test_encode_decode_roundtrip(self):
        point = EllipticCurvePoint.generator(P256) * 12345
        assert EllipticCurvePoint.decode(P256, point.encode()) == point

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            EllipticCurvePoint.decode(P256, b"\x05" + b"\x00" * 64)

    def test_known_vector_2g(self):
        # 2*G for P-256 (public test vector)
        g = EllipticCurvePoint.generator(P256)
        double = g * 2
        assert double.x == int(
            "7CF27B188D034F7E8A52380304B51AC3C08969E277F21B35A60B48FC47669978", 16
        )
        assert double.y == int(
            "07775510DB8ED040293D9AC69F7430DBBA7DADE63CE982299E04B79D227873D1", 16
        )


class TestSignatures:
    def test_sign_verify_roundtrip(self, scheme, keypair):
        private, public = keypair
        signature = scheme.sign(private, b"hello world")
        assert scheme.verify(public, b"hello world", signature)

    def test_signature_is_64_bytes(self, scheme, keypair):
        private, _ = keypair
        assert len(scheme.sign(private, b"m")) == 64

    def test_tampered_message_fails(self, scheme, keypair):
        private, public = keypair
        signature = scheme.sign(private, b"message")
        assert not scheme.verify(public, b"messagf", signature)

    def test_tampered_signature_fails(self, scheme, keypair):
        private, public = keypair
        signature = bytearray(scheme.sign(private, b"message"))
        signature[10] ^= 0x01
        assert not scheme.verify(public, b"message", bytes(signature))

    def test_wrong_key_fails(self, scheme, keypair):
        private, _ = keypair
        _, other_public = scheme.keygen(random.Random(43))
        signature = scheme.sign(private, b"message")
        assert not scheme.verify(other_public, b"message", signature)

    def test_rfc6979_determinism(self, scheme, keypair):
        private, _ = keypair
        assert scheme.sign(private, b"same") == scheme.sign(private, b"same")

    def test_different_messages_different_signatures(self, scheme, keypair):
        private, _ = keypair
        assert scheme.sign(private, b"a") != scheme.sign(private, b"b")

    def test_low_s_normalization(self, scheme, keypair):
        private, _ = keypair
        for message in (b"a", b"b", b"c", b"d"):
            signature = scheme.sign(private, message)
            s = int.from_bytes(signature[32:], "big")
            assert s <= P256.n // 2

    def test_malformed_signature_rejected(self, scheme, keypair):
        _, public = keypair
        assert not scheme.verify(public, b"m", b"short")
        assert not scheme.verify(public, b"m", b"\x00" * 64)

    def test_bad_public_key_rejected(self, scheme, keypair):
        private, _ = keypair
        signature = scheme.sign(private, b"m")
        assert not scheme.verify(b"\x04" + b"\x01" * 64, b"m", signature)

    def test_derive_public(self, scheme, keypair):
        private, public = keypair
        assert scheme.derive_public(private) == public

    def test_keygen_deterministic_per_seed(self, scheme):
        a = scheme.keygen(random.Random(7))
        b = scheme.keygen(random.Random(7))
        assert a == b
