"""ASCII rendering of benchmark results (what the bench targets print).

Each ``render_*`` function turns the structured results of
:mod:`repro.bench.figures` into the same rows/series the paper's
figures report.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.figures import AblationResult, GeoLatencyResult, LanSimResult


def _format_rate(value: float) -> str:
    if value >= 1000:
        return f"{value / 1000:8.1f}k"
    return f"{value:8.1f} "


def render_figure6(results: Dict[int, Dict[str, float]]) -> str:
    lines = [
        "Figure 6: Signature generation for Fabric blocks",
        f"{'workers':>8} | {'measured sig/s':>15} | {'model sig/s':>12}",
        "-" * 44,
    ]
    for workers in sorted(results):
        row = results[workers]
        lines.append(
            f"{workers:>8} | {row['measured']:>15.0f} | {row['model']:>12.0f}"
        )
    peak = max(row["measured"] for row in results.values())
    lines.append(f"peak: {peak:.0f} signatures/second (paper: ~8,400)")
    return "\n".join(lines)


def render_figure7_panel(
    orderers: int, block_size: int, panel: Dict[int, Dict[int, float]]
) -> str:
    receivers = sorted(next(iter(panel.values())).keys())
    header = f"{'env size':>9} | " + " | ".join(f"r={r:<4}" for r in receivers)
    lines = [
        f"Figure 7: {orderers} orderers, {block_size} envelopes/block "
        "(ktrans/sec by receivers)",
        header,
        "-" * len(header),
    ]
    for es in sorted(panel):
        cells = " | ".join(f"{panel[es][r] / 1000:6.1f}" for r in receivers)
        lines.append(f"{es:>7} B | {cells}")
    return "\n".join(lines)


def render_geo_results(
    title: str, results: Dict[str, Dict[int, List[GeoLatencyResult]]]
) -> str:
    lines = [title]
    regions = [r.frontend_region for r in next(iter(next(iter(results.values())).values()))]
    for region in regions:
        lines.append(f"\n  frontend: {region}")
        lines.append(
            f"  {'env size':>9} | {'BFT-SMaRt med/p90 (ms)':>24} | {'WHEAT med/p90 (ms)':>20}"
        )
        for es in sorted(next(iter(results.values()))):
            cells = []
            for protocol in ("bftsmart", "wheat"):
                entry = next(
                    r for r in results[protocol][es] if r.frontend_region == region
                )
                cells.append(f"{entry.median * 1000:6.0f} / {entry.p90 * 1000:6.0f}")
            lines.append(f"  {es:>7} B | {cells[0]:>24} | {cells[1]:>20}")
    return "\n".join(lines)


def render_lan_sim(results: Sequence[LanSimResult]) -> str:
    lines = [
        "Figure 7 cross-validation: capacity model vs full-stack simulation",
        f"{'n':>3} {'bs':>4} {'es':>6} {'recv':>5} | {'model tx/s':>11} | "
        f"{'sim generated':>13} | {'sim delivered':>13}",
    ]
    for r in results:
        lines.append(
            f"{r.orderers:>3} {r.block_size:>4} {r.envelope_size:>6} {r.receivers:>5} | "
            f"{r.model_prediction:>11.0f} | {r.generated_rate:>13.0f} | "
            f"{r.delivered_rate:>13.0f}"
        )
    return "\n".join(lines)


def render_conclusion(comparison: Dict[str, float]) -> str:
    return "\n".join(
        [
            "§8 comparison (worst case: 10 nodes, 4 KB envelopes, 32 receivers)",
            f"  BFT ordering service : {comparison['bft_ordering_worst_case']:8.0f} tx/s",
            f"  Ethereum theoretical : {comparison['ethereum_theoretical_peak']:8.0f} tx/s"
            f"  ({comparison['speedup_vs_ethereum']:.1f}x)",
            f"  Bitcoin              : {comparison['bitcoin_peak']:8.0f} tx/s"
            f"  ({comparison['speedup_vs_bitcoin']:.0f}x)",
        ]
    )


def render_ablation(results: Sequence[AblationResult]) -> str:
    lines = [
        "WHEAT ablation (median/p90 ordering latency, Virginia frontend)",
        f"{'weights':>8} | {'tentative':>9} | {'median (ms)':>11} | {'p90 (ms)':>9}",
    ]
    for r in results:
        lines.append(
            f"{str(r.weights):>8} | {str(r.tentative):>9} | "
            f"{r.median * 1000:>11.0f} | {r.p90 * 1000:>9.0f}"
        )
    return "\n".join(lines)
