"""Tests for DetSan, the runtime determinism sanitizer.

The comparator is tested on synthesized records (one planted tie, one
genuine divergence, per-view mismatches); the capture path is tested
in-process on a short seeded scenario.
"""

import copy

import pytest

from repro.analysis.detsan import (
    DetSanFinding,
    capture_record,
    compare_records,
)


def record(events, span_tree=None, metrics=None):
    from repro.analysis.detsan import _digest

    doc = {
        "schema": "repro-detsan-record/1",
        "scenario": {"seed": 0, "duration": 0.1, "rate": 100.0},
        "events": events,
        "span_tree": span_tree or [],
        "metrics": metrics or {},
    }
    doc["digests"] = {
        "events": _digest(doc["events"]),
        "span_tree": _digest(doc["span_tree"]),
        "metrics": _digest(doc["metrics"]),
    }
    return doc


EVENTS = [
    [0.001, "Propose", "0", "1", "cid=0"],
    [0.002, "Write", "1", "0", "cid=0"],
    [0.002, "Write", "1", "2", "cid=0"],
    [0.002, "Write", "1", "3", "cid=0"],
    [0.003, "Accept", "2", "0", "cid=0"],
]


class TestComparator:
    def test_identical_records_clean(self):
        assert compare_records(record(EVENTS), record(EVENTS)) == []

    def test_planted_tie_reorder_is_detsan002(self):
        # same multiset of t=0.002 events, different order: a tie with
        # no deterministic tie-break key -- the simulated data race
        reordered = copy.deepcopy(EVENTS)
        reordered[1], reordered[3] = reordered[3], reordered[1]
        (finding,) = compare_records(record(EVENTS), record(reordered))
        assert finding.rule == "DETSAN002"
        assert "t=0.002000s" in finding.message
        assert "tie" in finding.message

    def test_genuine_divergence_is_detsan001(self):
        changed = copy.deepcopy(EVENTS)
        changed[4] = [0.003, "Accept", "3", "0", "cid=1"]
        (finding,) = compare_records(record(EVENTS), record(changed))
        assert finding.rule == "DETSAN001"

    def test_length_divergence_is_detsan001(self):
        (finding,) = compare_records(record(EVENTS), record(EVENTS[:-1]))
        assert finding.rule == "DETSAN001"
        assert "lengths" in finding.message

    def test_span_tree_divergence_is_detsan003(self):
        first = record(EVENTS, span_tree=[{"name": "consensus"}])
        second = record(EVENTS, span_tree=[{"name": "sync"}])
        (finding,) = compare_records(first, second)
        assert finding.rule == "DETSAN003"

    def test_metrics_divergence_is_detsan004(self):
        first = record(EVENTS, metrics={"decided": 5})
        second = record(EVENTS, metrics={"decided": 6})
        (finding,) = compare_records(first, second)
        assert finding.rule == "DETSAN004"
        assert "decided" in finding.message

    def test_findings_render_with_rule_id(self):
        finding = DetSanFinding("DETSAN002", "something diverged")
        assert finding.render().startswith("DETSAN002 ")


@pytest.mark.bench
class TestCapture:
    """In-process capture of the short default scenario."""

    SCENARIO = dict(seed=0, duration=0.25, rate=200.0)

    def test_capture_is_deterministic_in_process(self):
        first = capture_record(**self.SCENARIO)
        second = capture_record(**self.SCENARIO)
        assert first["digests"] == second["digests"]
        assert compare_records(first, second) == []

    def test_capture_record_shape(self):
        doc = capture_record(**self.SCENARIO)
        assert doc["schema"] == "repro-detsan-record/1"
        assert doc["events"], "scenario produced no trace events"
        time, kind, src, dst, detail = doc["events"][0]
        assert isinstance(time, float) and isinstance(kind, str)
        assert set(doc["digests"]) == {"events", "span_tree", "metrics"}

    def test_different_seeds_diverge(self):
        # sanity check that the comparator has teeth: different seeds
        # must NOT produce identical traces
        first = capture_record(seed=0, duration=0.25, rate=200.0)
        second = capture_record(seed=1, duration=0.25, rate=200.0)
        assert compare_records(first, second) != []
