"""DetSan: the runtime determinism sanitizer.

Static rules catch the *patterns* that break determinism; DetSan
catches the *fact*.  It runs the default observability scenario
(4-node LAN, seeded) twice and diffs three independent views of the
execution:

- the ``sim/trace`` message-level event stream (every message send,
  timestamped in simulated time),
- the ``obs`` span tree (the normalized, id-free nested view), and
- the metrics snapshot.

Any divergence is a determinism bug.  DetSan further classifies the
first event divergence: when the two runs emitted the *same multiset*
of events at the divergent timestamp but in different order, the bug
is a same-timestamp tie without a deterministic tie-break key
(``DETSAN002``) -- the simulated-concurrency analogue of a data race.

The two runs happen in **subprocesses with different
``PYTHONHASHSEED`` values**.  That is the whole point: within one
process, iterating a set of strings is repeatable, so an in-process
double-run can never see hash-order nondeterminism.  Across processes
with different hash seeds, any protocol path whose order leaks from a
``set``/``dict`` of strings produces a different event stream and
DetSan catches it.

Runtime rules:

- ``DETSAN001`` trace event streams diverge (general nondeterminism)
- ``DETSAN002`` same-timestamp event tie ordered differently across
  runs (missing deterministic tie-break key)
- ``DETSAN003`` span trees diverge
- ``DETSAN004`` metric snapshots diverge
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parents[3]
SRC_ROOT = REPO_ROOT / "src"

#: Default scenario: the bench/obs smoke configuration
#: (tests/test_obs_scenario.py uses the same numbers).
DEFAULT_SEED = 0
DEFAULT_DURATION = 0.5
DEFAULT_RATE = 400.0

RECORD_SCHEMA = "repro-detsan-record/1"


@dataclass(frozen=True)
class DetSanFinding:
    """One runtime divergence between the two seeded runs."""

    rule: str
    message: str

    def render(self) -> str:
        return f"{self.rule} {self.message}"

    def to_json_dict(self) -> Dict[str, str]:
        return {"rule": self.rule, "message": self.message}


def _digest(value: Any) -> str:
    return hashlib.sha256(
        json.dumps(value, sort_keys=True).encode("utf-8")
    ).hexdigest()


def capture_record(
    seed: int = DEFAULT_SEED,
    duration: float = DEFAULT_DURATION,
    rate: float = DEFAULT_RATE,
) -> Dict[str, Any]:
    """Run the scenario once and serialize the three views.

    Events are ``[time, kind, src, dst, detail]`` rows in emission
    order; digests are sha256 over the canonical (sorted-keys) JSON.
    """
    from repro.obs.report import run_scenario

    result = run_scenario(
        seed=seed, duration=duration, rate=rate, trace=True
    )
    assert result.trace is not None
    events = [
        [event.time, event.kind, str(event.src), str(event.dst), event.detail]
        for event in result.trace.events
    ]
    span_tree = result.obs.tracer.tree()
    metrics = result.obs.registry.snapshot()
    record = {
        "schema": RECORD_SCHEMA,
        "scenario": {"seed": seed, "duration": duration, "rate": rate},
        "hash_seed": os.environ.get("PYTHONHASHSEED", "random"),
        "events": events,
        "span_tree": span_tree,
        "metrics": metrics,
    }
    record["digests"] = {
        "events": _digest(events),
        "span_tree": _digest(span_tree),
        "metrics": _digest(metrics),
    }
    return record


def _tie_group(
    events: Sequence[Sequence[Any]], index: int
) -> Tuple[int, List[Tuple[Any, ...]]]:
    """All events sharing a timestamp with ``events[index]``, plus the
    group's start index."""
    timestamp = events[index][0]
    start = index
    while start > 0 and events[start - 1][0] == timestamp:
        start -= 1
    end = index
    while end + 1 < len(events) and events[end + 1][0] == timestamp:
        end += 1
    return start, [tuple(event) for event in events[start : end + 1]]


def compare_records(
    first: Dict[str, Any], second: Dict[str, Any]
) -> List[DetSanFinding]:
    """Diff two capture records; empty list means deterministic."""
    findings: List[DetSanFinding] = []
    events_a = first["events"]
    events_b = second["events"]
    if first["digests"]["events"] != second["digests"]["events"]:
        findings.extend(_diff_events(events_a, events_b))
    if first["digests"]["span_tree"] != second["digests"]["span_tree"]:
        findings.append(
            DetSanFinding(
                "DETSAN003",
                "span trees diverge between runs "
                f"({first['digests']['span_tree'][:12]} vs "
                f"{second['digests']['span_tree'][:12]})",
            )
        )
    if first["digests"]["metrics"] != second["digests"]["metrics"]:
        keys_a, keys_b = set(first["metrics"]), set(second["metrics"])
        changed = sorted(
            key
            for key in keys_a & keys_b
            if first["metrics"][key] != second["metrics"][key]
        )
        detail = ", ".join(changed[:5]) or ", ".join(
            sorted(keys_a ^ keys_b)[:5]
        )
        findings.append(
            DetSanFinding(
                "DETSAN004",
                f"metric snapshots diverge between runs (first: {detail})",
            )
        )
    return findings


def _diff_events(
    events_a: Sequence[Sequence[Any]], events_b: Sequence[Sequence[Any]]
) -> List[DetSanFinding]:
    limit = min(len(events_a), len(events_b))
    divergence = None
    for i in range(limit):
        if list(events_a[i]) != list(events_b[i]):
            divergence = i
            break
    if divergence is None:
        return [
            DetSanFinding(
                "DETSAN001",
                f"trace lengths diverge ({len(events_a)} vs "
                f"{len(events_b)} events); runs are nondeterministic",
            )
        ]
    start_a, group_a = _tie_group(events_a, divergence)
    _, group_b = _tie_group(events_b, divergence)
    timestamp = events_a[divergence][0]
    if Counter(group_a) == Counter(group_b):
        example = events_a[divergence]
        return [
            DetSanFinding(
                "DETSAN002",
                f"same-timestamp tie at t={timestamp:.6f}s "
                f"(events {start_a}..{start_a + len(group_a) - 1}) is "
                "ordered differently across runs -- missing a "
                "deterministic tie-break key; first reordered event: "
                f"{example[1]} {example[2]}->{example[3]} ({example[4]})",
            )
        ]
    return [
        DetSanFinding(
            "DETSAN001",
            f"trace event streams diverge at event {divergence} "
            f"(t={timestamp:.6f}s): "
            f"{events_a[divergence][1:4]} vs {events_b[divergence][1:4]}",
        )
    ]


# ----------------------------------------------------------------------
# the double-run driver
# ----------------------------------------------------------------------
def _capture_subprocess(
    seed: int,
    duration: float,
    rate: float,
    hash_seed: str,
    out_path: Path,
) -> Dict[str, Any]:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    src = str(SRC_ROOT)
    existing = env.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src + os.pathsep + existing if existing else src
        )
    cmd = [
        sys.executable,
        "-m",
        "repro.analysis",
        "capture",
        "--seed",
        str(seed),
        "--duration",
        str(duration),
        "--rate",
        str(rate),
        "--out",
        str(out_path),
    ]
    subprocess.run(cmd, check=True, env=env, cwd=REPO_ROOT)
    return json.loads(out_path.read_text())


def double_run(
    seed: int = DEFAULT_SEED,
    duration: float = DEFAULT_DURATION,
    rate: float = DEFAULT_RATE,
    work_dir: Optional[Path] = None,
) -> Tuple[List[DetSanFinding], Dict[str, Any], Dict[str, Any]]:
    """Capture the scenario twice under different hash seeds and diff.

    Returns ``(findings, first_record, second_record)``.
    """
    import tempfile

    if work_dir is None:
        with tempfile.TemporaryDirectory(prefix="detsan-") as tmp:
            return double_run(seed, duration, rate, Path(tmp))
    first = _capture_subprocess(
        seed, duration, rate, "1", work_dir / "run1.json"
    )
    second = _capture_subprocess(
        seed, duration, rate, "2", work_dir / "run2.json"
    )
    return compare_records(first, second), first, second


def run(
    seed: int = DEFAULT_SEED,
    duration: float = DEFAULT_DURATION,
    rate: float = DEFAULT_RATE,
    json_out: Optional[str] = None,
) -> int:
    """CLI entry for ``python -m repro.analysis detsan``."""
    print(
        f"[detsan] double-running scenario seed={seed} "
        f"duration={duration}s rate={rate}/s "
        "(PYTHONHASHSEED 1 vs 2)"
    )
    try:
        findings, first, second = double_run(seed, duration, rate)
    except subprocess.CalledProcessError as exc:
        print(f"[detsan] capture subprocess failed: {exc}")
        return 2
    for finding in findings:
        print(finding.render())
    if json_out:
        doc = {
            "schema": "repro-detsan-report/1",
            "clean": not findings,
            "scenario": first["scenario"],
            "digests": {
                "first": first["digests"],
                "second": second["digests"],
            },
            "event_count": len(first["events"]),
            "findings": [finding.to_json_dict() for finding in findings],
        }
        out = Path(json_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    if findings:
        print(f"[detsan] {len(findings)} divergence(s)")
        return 1
    print(
        "[detsan] deterministic: "
        f"{len(first['events'])} events, trace digest "
        f"{first['digests']['events'][:16]} identical across hash seeds"
    )
    return 0
