"""Adversarial traffic mixes.

Each adversary is just an :class:`~repro.workload.profiles.ApplicationProfile`
that abuses the submission interface instead of using it: the engine
drives them exactly like honest tenants, which is the point -- the
admission layer must tell them apart by *behaviour* (budget
exhaustion, size ceilings), not by labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.fabric.envelope import DEFAULT_MAX_PAYLOAD_BYTES, Envelope
from repro.workload.profiles import ApplicationProfile, TokenTransferProfile


@dataclass
class DuplicateFlood(ApplicationProfile):
    """Replays one envelope identity over and over.

    Every ``unique_every``-th envelope is fresh; the rest are byte-
    identical duplicates (same envelope id, same digest).  Without
    per-tenant budgets a duplicate flood inflates every queue in the
    pipeline at near-zero cost to the attacker; with admission control
    each duplicate still burns one of the flooder's own tokens.
    """

    channel: str = "channel0"
    envelope_size: int = 256
    unique_every: int = 8
    _count: int = field(default=0, init=False)
    _current: Optional[Envelope] = field(default=None, init=False)

    def make(self, rng, tenant, envelope_id=None):
        fresh = self._current is None or self._count % self.unique_every == 0
        self._count += 1
        if fresh:
            self._current = self._envelope(
                self.channel, self.envelope_size, tenant, envelope_id
            )
            return self._current
        original = self._current
        # a fresh object with the same identity: what a replayed wire
        # message looks like to the frontend
        return Envelope(
            channel_id=original.channel_id,
            transaction=None,
            payload_size=original.payload_size,
            submitter=original.submitter,
            envelope_id=original.envelope_id,
        )


@dataclass
class OversizedSpam(ApplicationProfile):
    """Envelopes over the channel's AbsoluteMaxBytes ceiling.

    ``oversize_fraction`` of submissions exceed the ceiling by
    ``factor``; the rest are normal-size cover traffic.  Every
    oversized envelope must come back as an explicit ``oversized``
    rejection -- never a silent drop, and never an admitted giant.
    """

    channel: str = "channel0"
    envelope_size: int = 1024
    ceiling: int = DEFAULT_MAX_PAYLOAD_BYTES
    factor: float = 2.0
    oversize_fraction: float = 0.5

    def make(self, rng, tenant, envelope_id=None):
        if rng.random() < self.oversize_fraction:
            size = int(self.ceiling * self.factor)
        else:
            size = self.envelope_size
        return self._envelope(self.channel, size, tenant, envelope_id)


def ConflictStorm(
    channel: str = "channel0",
    envelope_size: int = 200,
    hot_keys: int = 2,
) -> TokenTransferProfile:
    """Conflict-maximizing key choices: every transfer touches one of
    ``hot_keys`` keys, so nearly every pair in a block is an MVCC
    conflict at the committing peers (wasted ordering throughput --
    the blocks commit, the transactions inside mostly abort)."""
    return TokenTransferProfile(
        channel=channel,
        envelope_size=envelope_size,
        hot_keys=hot_keys,
        cold_keys=1,
        hot_fraction=1.0,
    )


@dataclass
class CensorshipTargetSpam(ApplicationProfile):
    """Cover spam aimed at a censorship victim's frontend.

    Models the attack where spam is pointed at the exact frontend a
    colluding orderer censors, hoping the extra queueing hides the
    censorship as overload.  Pair it with a ``censor`` fault on the
    same frontend (the explorer's overload profile does) and pin the
    tenant's ``frontend_index`` to the victim.
    """

    channel: str = "channel0"
    envelope_size: int = 256
    victim: str = "victim"

    def make(self, rng, tenant, envelope_id=None):
        return self._envelope(self.channel, self.envelope_size, tenant, envelope_id)
