"""Shared helpers for the benchmark suite.

Each bench module runs one (or more) *registered* benchmarks from
:mod:`repro.bench.suite` through the harness, asserts the shape
properties the paper reports on the structured result, and records the
result twice via the shared reporter:

- ``benchmarks/results/BENCH_<name>.json`` -- the machine-readable
  result document (schema ``repro-bench-result/1``), comparable with
  ``python -m repro.bench compare``;
- ``benchmarks/results/<name>.txt`` -- the generic rendered table,
  so EXPERIMENTS.md can be checked against fresh numbers at any time.

Results are cached per session so several tests can assert on the same
(expensive) benchmark without re-running it.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

import pytest

from repro.bench import suite  # noqa: F401 - populates the registry
from repro.bench.harness import (
    REGISTRY,
    BenchmarkResult,
    SuiteResult,
    render_result,
    run_benchmark,
    write_result,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def _bench_cache():
    cache: Dict[Tuple[str, str], BenchmarkResult] = {}
    return cache


@pytest.fixture
def bench_result(results_dir, _bench_cache):
    """Run a registered benchmark (cached) and record JSON + text."""

    def _run(name: str, mode: str = "full") -> BenchmarkResult:
        key = (name, mode)
        if key not in _bench_cache:
            result = run_benchmark(REGISTRY.get(name), mode=mode)
            _bench_cache[key] = result
            document = SuiteResult(
                run_name=name,
                mode=mode,
                created_unix=0.0,
                environment={},
                benchmarks=[result],
            )
            json_path = os.path.join(results_dir, f"BENCH_{name}.json")
            write_result(document, json_path)
            text = render_result(result)
            text_path = os.path.join(results_dir, f"{name}.txt")
            with open(text_path, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            print(f"\n{text}\n[written to {text_path} and {json_path}]")
        return _bench_cache[key]

    return _run


@pytest.fixture
def record_result(results_dir):
    """Write a rendered result table to benchmarks/results/."""

    def _record(name: str, text: str) -> None:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record
