"""Per-instance consensus state (VP-Consensus [22]).

Each :class:`ConsensusInstance` tracks one slot of the total order:
the proposed batch, WRITE and ACCEPT vote sets per regency, whether
this replica already sent its own WRITE/ACCEPT, and -- once a WRITE
quorum is observed -- a :class:`~repro.smart.messages.WriteCertificate`
used as the value-selection proof during the synchronization phase.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.crypto.hashing import sha256
from repro.smart.messages import ClientRequest, WriteCertificate
from repro.smart.quorums import VoteSet
from repro.smart.view import View


def batch_hash(cid: int, batch: List[ClientRequest]) -> bytes:
    """Canonical hash of a proposed batch (what WRITE/ACCEPT vote on).

    When ``batch`` is a :class:`repro.smart.batching.RequestBatch` the
    digest is memoized per cid: inside one simulation every replica
    validates the *same* batch object (payloads are never serialized),
    and requests are immutable once batched, so hashing it ``n`` times
    per instance is pure waste.  Plain lists are hashed from scratch.
    """
    cache = getattr(batch, "hash_by_cid", None)
    if cache is not None:
        cached = cache.get(cid)
        if cached is not None:
            return cached
    ids = [(r.client_id, r.sequence, r.size_bytes) for r in batch]
    digest = sha256("batch", cid, ids)
    if cache is not None:
        cache[cid] = digest
    return digest


class ConsensusInstance:
    """State of consensus instance ``cid`` at one replica."""

    __slots__ = (
        "cid",
        "view",
        "known_values",
        "proposed_hash",
        "_writes",
        "_accepts",
        "write_sent",
        "accept_sent",
        "decided",
        "decided_hash",
        "decided_regency",
        "tentative_hash",
        "write_certificate",
        "timestamps",
    )

    def __init__(self, cid: int, view: View):
        self.cid = cid
        self.view = view
        #: batches known for this instance, keyed by their hash
        self.known_values: Dict[bytes, List[ClientRequest]] = {}
        #: hash this replica received in a PROPOSE (per regency)
        self.proposed_hash: Dict[int, bytes] = {}
        self._writes: Dict[int, VoteSet] = {}
        self._accepts: Dict[int, VoteSet] = {}
        self.write_sent: Dict[int, bytes] = {}
        self.accept_sent: Dict[int, bytes] = {}
        self.decided = False
        self.decided_hash: Optional[bytes] = None
        self.decided_regency: Optional[int] = None
        self.tentative_hash: Optional[bytes] = None
        self.write_certificate: Optional[WriteCertificate] = None
        #: lifecycle timestamps this replica observed (``at=`` params),
        #: keyed "write_quorum" / "decided" -- feeds repro.obs reports
        self.timestamps: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def writes(self, regency: int) -> VoteSet:
        votes = self._writes.get(regency)
        if votes is None:
            votes = VoteSet(self.view)
            self._writes[regency] = votes
        return votes

    def accepts(self, regency: int) -> VoteSet:
        votes = self._accepts.get(regency)
        if votes is None:
            votes = VoteSet(self.view)
            self._accepts[regency] = votes
        return votes

    def learn_value(self, batch: List[ClientRequest]) -> bytes:
        """Register a batch as a candidate value; returns its hash."""
        value_hash = batch_hash(self.cid, batch)
        self.known_values[value_hash] = batch
        return value_hash

    def value_of(self, value_hash: bytes) -> Optional[List[ClientRequest]]:
        return self.known_values.get(value_hash)

    def record_write_quorum(
        self, regency: int, value_hash: bytes, at: Optional[float] = None
    ) -> None:
        """Snapshot the WRITE quorum as a proof for leader changes."""
        if at is not None:
            self.timestamps.setdefault("write_quorum", at)
        voters = self.writes(regency).voters_of(value_hash)
        self.write_certificate = WriteCertificate(
            cid=self.cid,
            regency=regency,
            value_hash=value_hash,
            writers=voters,
            batch=self.known_values.get(value_hash),
        )

    def mark_decided(
        self, regency: int, value_hash: bytes, at: Optional[float] = None
    ) -> None:
        if at is not None:
            self.timestamps.setdefault("decided", at)
        self.decided = True
        self.decided_hash = value_hash
        self.decided_regency = regency

    @property
    def decided_batch(self) -> Optional[List[ClientRequest]]:
        if self.decided_hash is None:
            return None
        return self.known_values.get(self.decided_hash)
