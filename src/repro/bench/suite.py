"""The registered benchmark suite: every paper figure as a matrix.

Importing this module populates :data:`repro.bench.harness.REGISTRY`
with one declarative benchmark per table/figure of the evaluation (plus
our ablations and the orderer baselines).  The former
``benchmarks/bench_*.py`` sweep loops are all expressed here as
parameter matrices; the pytest wrappers under ``benchmarks/`` run these
registry entries through the harness and assert the paper's shape
properties on the structured results.

Each benchmark declares a ``smoke_matrix``: the seconds-fast subset
``make bench-smoke`` and the tier-1 smoke tests execute.  All
measurements run inside the deterministic simulator, so results are
bit-identical for identical seeds — which is what lets a committed
``BENCH_smoke.json`` act as a cross-machine regression baseline.
"""

from __future__ import annotations

from typing import Dict

from repro.bench.figures import (
    BLOCK_SIZES,
    CLUSTER_SIZES,
    ENVELOPE_SIZES,
    GEO_FRONTEND_SITES,
    RECEIVER_COUNTS,
    conclusion_comparison,
    figure6,
    geo_latency_experiment,
    kernel_speed,
    simulate_lan_throughput,
    wheat_ablation_point,
)
from repro.bench.harness import REGISTRY, BenchContext
from repro.bench.model import (
    OrderingCapacityModel,
    SignatureThroughputModel,
    eq1_bound,
)
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import SimulatedECDSA
from repro.fabric.channel import ChannelConfig
from repro.fabric.envelope import Envelope
from repro.fabric.orderers import KafkaCluster, KafkaOrderer, SoloOrderer
from repro.ordering import OrderingServiceConfig, build_ordering_service
from repro.sim import ConstantLatency, Network, RandomStreams, Simulator
from repro.sim.monitor import StatsRegistry
from repro.sim.storage import StorageFaults


# ----------------------------------------------------------------------
# Figure 6: signature-generation throughput
# ----------------------------------------------------------------------
@REGISTRY.register(
    name="fig6_signing",
    description="Figure 6: ECDSA signing throughput vs worker threads "
    "on the simulated 8-core/16-thread Xeon.",
    matrix={
        "workers": tuple(range(1, 17)),
        "envelopes_per_block": (10,),
        "measure_seconds": (1.0,),
    },
    smoke_matrix={
        "workers": (1, 8, 16),
        "envelopes_per_block": (10,),
        "measure_seconds": (0.5,),
    },
    directions={
        "sig_per_sec": "higher",
        "model_sig_per_sec": "higher",
        "tx_per_sec_bound": "higher",
    },
    tags=("figure6", "signing"),
)
def fig6_signing(ctx: BenchContext) -> Dict[str, float]:
    workers = ctx["workers"]
    row = figure6(
        workers=(workers,),
        envelopes_per_block=ctx["envelopes_per_block"],
        measure_seconds=ctx["measure_seconds"],
    )[workers]
    return {
        "sig_per_sec": row["measured"],
        "model_sig_per_sec": row["model"],
        "tx_per_sec_bound": row["theoretical_tx_per_sec"],
    }


@REGISTRY.register(
    name="fig6_invariance",
    description="§6.1: signing rate is independent of envelope and "
    "block sizes (only the header is signed).",
    matrix={
        "envelope_size": ENVELOPE_SIZES,
        "block_size": BLOCK_SIZES,
        "workers": (16,),
    },
    smoke_matrix={
        "envelope_size": (40, 4096),
        "block_size": (10,),
        "workers": (16,),
    },
    directions={"sig_per_sec": "higher"},
    tags=("figure6", "signing"),
)
def fig6_invariance(ctx: BenchContext) -> Dict[str, float]:
    model = SignatureThroughputModel()
    return {"sig_per_sec": model.throughput(ctx["workers"])}


# ----------------------------------------------------------------------
# Figure 7: LAN ordering throughput (capacity model + full-stack DES)
# ----------------------------------------------------------------------
@REGISTRY.register(
    name="fig7_capacity",
    description="Figure 7 (a-f): LAN ordering throughput by cluster "
    "size, block size, envelope size, and receivers (capacity model).",
    matrix={
        "orderers": CLUSTER_SIZES,
        "block_size": BLOCK_SIZES,
        "envelope_size": ENVELOPE_SIZES,
        "receivers": RECEIVER_COUNTS,
    },
    smoke_matrix={
        "orderers": (4,),
        "block_size": (10,),
        "envelope_size": (40, 4096),
        "receivers": (1, 32),
    },
    directions={"tx_per_sec": "higher", "blocks_per_sec": "higher"},
    tags=("figure7", "lan"),
)
def fig7_capacity(ctx: BenchContext) -> Dict[str, float]:
    model = OrderingCapacityModel(n=ctx["orderers"])
    tx = model.throughput(ctx["envelope_size"], ctx["block_size"], ctx["receivers"])
    return {"tx_per_sec": tx, "blocks_per_sec": tx / ctx["block_size"]}


@REGISTRY.register(
    name="fig7_lan_sim",
    description="Figure 7 cross-validation: the full simulated stack "
    "(clients -> consensus -> signing -> dissemination) at ~capacity.",
    matrix={
        "envelope_size": (200, 1024, 4096),
        "receivers": (1, 2, 4, 16),
        "orderers": (4,),
        "block_size": (10,),
        "duration": (1.0,),
        "warmup": (0.3,),
    },
    smoke_matrix={
        "envelope_size": (1024,),
        "receivers": (1, 4),
        "orderers": (4,),
        "block_size": (10,),
        "duration": (0.4,),
        "warmup": (0.2,),
    },
    directions={
        "generated_tx_per_sec": "higher",
        "delivered_tx_per_sec": "higher",
        "model_tx_per_sec": "higher",
        "offered_tx_per_sec": "higher",
    },
    tags=("figure7", "lan", "sim"),
)
def fig7_lan_sim(ctx: BenchContext) -> Dict[str, float]:
    result = simulate_lan_throughput(
        orderers=ctx["orderers"],
        block_size=ctx["block_size"],
        envelope_size=ctx["envelope_size"],
        receivers=ctx["receivers"],
        duration=ctx["duration"],
        warmup=ctx["warmup"],
        seed=ctx.seed,
        observability=ctx.obs,
    )
    return {
        "generated_tx_per_sec": result.generated_rate,
        "delivered_tx_per_sec": result.delivered_rate,
        "model_tx_per_sec": result.model_prediction,
        "offered_tx_per_sec": result.offered_rate,
    }


# ----------------------------------------------------------------------
# Figures 8/9: geo-distributed latency
# ----------------------------------------------------------------------
def _geo_metrics(ctx: BenchContext) -> Dict[str, float]:
    rows = geo_latency_experiment(
        protocol=ctx["protocol"],
        envelope_size=ctx["envelope_size"],
        block_size=ctx["block_size"],
        rate=ctx["rate"],
        duration=ctx["duration"],
        warmup=ctx["warmup"],
        seed=ctx.seed,
    )
    metrics: Dict[str, float] = {}
    for row in rows:
        metrics[f"{row.frontend_region}_median_s"] = row.median
        metrics[f"{row.frontend_region}_p90_s"] = row.p90
        metrics[f"{row.frontend_region}_tx_per_sec"] = row.throughput
        metrics[f"{row.frontend_region}_samples"] = float(row.samples)
    return metrics


_GEO_DIRECTIONS = {}
for _region in GEO_FRONTEND_SITES:
    _GEO_DIRECTIONS[f"{_region}_median_s"] = "lower"
    _GEO_DIRECTIONS[f"{_region}_p90_s"] = "lower"
    _GEO_DIRECTIONS[f"{_region}_tx_per_sec"] = "higher"
    _GEO_DIRECTIONS[f"{_region}_samples"] = "higher"


@REGISTRY.register(
    name="fig8_geo",
    description="Figure 8: geo latency with 10-envelope blocks, "
    "BFT-SMaRt vs WHEAT across four frontends.",
    matrix={
        "protocol": ("bftsmart", "wheat"),
        "envelope_size": ENVELOPE_SIZES,
        "block_size": (10,),
        "rate": (1100.0,),
        "duration": (6.0,),
        "warmup": (3.0,),
    },
    smoke_matrix={
        "protocol": ("bftsmart", "wheat"),
        "envelope_size": (1024,),
        "block_size": (10,),
        "rate": (700.0,),
        "duration": (1.5,),
        "warmup": (0.5,),
    },
    directions=_GEO_DIRECTIONS,
    tags=("figure8", "geo"),
)
def fig8_geo(ctx: BenchContext) -> Dict[str, float]:
    return _geo_metrics(ctx)


@REGISTRY.register(
    name="fig9_geo",
    description="Figure 9: geo latency with 100-envelope blocks "
    "(same pattern as Figure 8, higher latency).",
    matrix={
        "protocol": ("bftsmart", "wheat"),
        "envelope_size": (200, 1024),
        "block_size": (100,),
        "rate": (1100.0,),
        "duration": (6.0,),
        "warmup": (3.0,),
    },
    smoke_matrix={
        "protocol": ("wheat",),
        "envelope_size": (1024,),
        "block_size": (100,),
        "rate": (700.0,),
        "duration": (1.5,),
        "warmup": (0.5,),
    },
    directions=_GEO_DIRECTIONS,
    tags=("figure9", "geo"),
)
def fig9_geo(ctx: BenchContext) -> Dict[str, float]:
    return _geo_metrics(ctx)


# ----------------------------------------------------------------------
# Equation 1 and the §8 conclusion comparison
# ----------------------------------------------------------------------
@REGISTRY.register(
    name="eq1_bounds",
    description="Equation 1: TP_os <= min(TP_sign*bs, TP_bftsmart); "
    "headroom of the capacity model under the bound.",
    matrix={
        "orderers": CLUSTER_SIZES,
        "envelope_size": ENVELOPE_SIZES,
        "block_size": BLOCK_SIZES,
        "receivers": (1, 4, 32),
    },
    smoke_matrix={
        "orderers": (4, 10),
        "envelope_size": (40, 4096),
        "block_size": (10,),
        "receivers": (1, 32),
    },
    directions={
        "predicted_tx_per_sec": "higher",
        "eq1_bound_tx_per_sec": "higher",
        "headroom_tx_per_sec": "higher",
    },
    tags=("eq1",),
)
def eq1_bounds(ctx: BenchContext) -> Dict[str, float]:
    model = OrderingCapacityModel(n=ctx["orderers"])
    predicted = model.throughput(
        ctx["envelope_size"], ctx["block_size"], ctx["receivers"]
    )
    bound = eq1_bound(
        ctx["block_size"], ctx["envelope_size"], ctx["receivers"], n=ctx["orderers"]
    )
    return {
        "predicted_tx_per_sec": predicted,
        "eq1_bound_tx_per_sec": bound,
        "headroom_tx_per_sec": bound - predicted,
    }


@REGISTRY.register(
    name="conclusion",
    description="§8: worst-case BFT ordering throughput vs Ethereum's "
    "theoretical 1,000 tx/s and Bitcoin's 7 tx/s.",
    matrix={},
    directions={
        "bft_worst_case_tx_per_sec": "higher",
        "speedup_vs_ethereum": "higher",
        "speedup_vs_bitcoin": "higher",
    },
    tags=("conclusion",),
)
def conclusion(ctx: BenchContext) -> Dict[str, float]:
    comparison = conclusion_comparison()
    return {
        "bft_worst_case_tx_per_sec": comparison["bft_ordering_worst_case"],
        "speedup_vs_ethereum": comparison["speedup_vs_ethereum"],
        "speedup_vs_bitcoin": comparison["speedup_vs_bitcoin"],
    }


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------
@REGISTRY.register(
    name="ablation_wheat",
    description="WHEAT ablation: vote weights and tentative execution "
    "toggled independently on the 5-replica geo deployment.",
    matrix={
        "weights": (False, True),
        "tentative": (False, True),
        "envelope_size": (1024,),
        "block_size": (10,),
        "rate": (1100.0,),
        "duration": (6.0,),
    },
    smoke_matrix={
        "weights": (False, True),
        "tentative": (False, True),
        "envelope_size": (1024,),
        "block_size": (10,),
        "rate": (700.0,),
        "duration": (2.0,),
    },
    directions={"median_s": "lower", "p90_s": "lower"},
    tags=("ablation", "geo"),
)
def ablation_wheat(ctx: BenchContext) -> Dict[str, float]:
    row = wheat_ablation_point(
        ctx["weights"],
        ctx["tentative"],
        envelope_size=ctx["envelope_size"],
        block_size=ctx["block_size"],
        rate=ctx["rate"],
        duration=ctx["duration"],
        seed=ctx.seed,
    )
    return {"median_s": row.median, "p90_s": row.p90}


@REGISTRY.register(
    name="ablation_batching",
    description="BFT-SMaRt batch-limit ablation: batching amortizes "
    "per-consensus vote traffic (capacity model).",
    matrix={
        "batch_limit": (1, 10, 50, 100, 400),
        "envelope_size": (40, 4096),
        "orderers": (4,),
        "block_size": (10,),
        "receivers": (2,),
    },
    smoke_matrix={
        "batch_limit": (1, 400),
        "envelope_size": (40,),
        "orderers": (4,),
        "block_size": (10,),
        "receivers": (2,),
    },
    directions={"tx_per_sec": "higher"},
    tags=("ablation", "lan"),
)
def ablation_batching(ctx: BenchContext) -> Dict[str, float]:
    model = OrderingCapacityModel(n=ctx["orderers"], batch_limit=ctx["batch_limit"])
    return {
        "tx_per_sec": model.throughput(
            ctx["envelope_size"], ctx["block_size"], ctx["receivers"]
        )
    }


# ----------------------------------------------------------------------
# Baselines: solo and Kafka-CFT orderers vs the BFT service
# ----------------------------------------------------------------------
def _run_solo(envelopes: int, envelope_size: int, block_size: int):
    sim = Simulator()
    network = Network(sim, ConstantLatency(0.0001))
    registry = KeyRegistry(scheme=SimulatedECDSA())
    channel = ChannelConfig("ch0", max_message_count=block_size, batch_timeout=0.5)
    stats = StatsRegistry()
    orderer = SoloOrderer(
        sim, network, "solo", registry.enroll("solo"), channel, stats=stats
    )
    network.register("solo", orderer)
    for _ in range(envelopes):
        orderer.submit(Envelope.raw("ch0", envelope_size))
    sim.run(until=5.0)
    return stats.latency("solo.latency").median, orderer.blocks_created


def _run_kafka(envelopes: int, envelope_size: int, block_size: int):
    sim = Simulator()
    network = Network(sim, ConstantLatency(0.0001))
    registry = KeyRegistry(scheme=SimulatedECDSA())
    channel = ChannelConfig("ch0", max_message_count=block_size, batch_timeout=0.5)
    stats = StatsRegistry()
    cluster = KafkaCluster(sim, network, num_brokers=3)
    orderer = KafkaOrderer(
        sim, network, "korderer0", registry.enroll("korderer0"), cluster, channel,
        stats=stats,
    )
    for _ in range(envelopes):
        orderer.submit(Envelope.raw("ch0", envelope_size))
    sim.run(until=5.0)
    return stats.latency("korderer0.latency").median, orderer.blocks_created


def _run_bft(envelopes: int, envelope_size: int, block_size: int):
    config = OrderingServiceConfig(
        f=1,
        channel=ChannelConfig(
            "ch0", max_message_count=block_size, batch_timeout=0.5
        ),
        physical_cores=None,
        latency=ConstantLatency(0.0001),
    )
    service = build_ordering_service(config)
    for _ in range(envelopes):
        service.submit(Envelope.raw("ch0", envelope_size))
    service.run(5.0)
    recorder = service.stats.latency(f"{service.frontends[0].name}.latency")
    return recorder.median, service.nodes[0].blocks_created


_BASELINE_RUNNERS = {"solo": _run_solo, "kafka": _run_kafka, "bft": _run_bft}


# ----------------------------------------------------------------------
# Recovery: crash-amnesia restart over the consensus WAL
# ----------------------------------------------------------------------
@REGISTRY.register(
    name="recovery_time",
    description="Crash-amnesia recovery: WAL replay time, rejoin "
    "latency and state-transfer volume for a replica restarting from "
    "its durable consensus log (see docs/RECOVERY.md).",
    matrix={
        "envelopes": (32, 96),
        "payload_size": (1024,),
        "block_size": (4,),
        "torn_tail": (0, 1),
    },
    smoke_matrix={
        "envelopes": (24,),
        "payload_size": (1024,),
        "block_size": (4,),
        "torn_tail": (1,),
    },
    directions={
        "replay_s": "lower",
        "rejoin_s": "lower",
        "recovery_total_s": "lower",
        "state_transfer_bytes": "lower",
        "replayed_batches": "higher",
        "delivered": "higher",
    },
    tags=("recovery", "wal", "faults"),
)
def recovery_time(ctx: BenchContext) -> Dict[str, float]:
    envelopes = ctx["envelopes"]
    config = OrderingServiceConfig(
        f=1,
        channel=ChannelConfig(
            "ch0", max_message_count=ctx["block_size"], batch_timeout=0.25
        ),
        num_frontends=1,
        physical_cores=None,
        enable_batch_timeout=True,
        durable_wal=True,
        seed=ctx.seed,
    )
    service = build_ordering_service(config, observability=ctx.obs)
    spacing = 1.5 / envelopes
    for i in range(envelopes):
        envelope = Envelope(
            channel_id="ch0",
            transaction=None,
            payload_size=ctx["payload_size"],
            envelope_id=i,
        )
        service.sim.schedule_at(0.1 + i * spacing, service.submit, envelope, 0)

    replica = service.replicas[1]
    streams = RandomStreams(ctx.seed)

    def crash() -> None:
        replica.crash(amnesia=True)
        replica.log.disk.crash(
            StorageFaults(torn_tail=bool(ctx["torn_tail"])),
            streams["bench-recovery-storage"],
        )

    service.sim.schedule_at(0.8, crash)
    service.sim.schedule_at(1.2, replica.recover)
    service.sim.run_until(
        lambda: service.total_delivered() >= envelopes, 60.0
    )
    # keep running until the restarted replica finishes its rejoin (its
    # state transfer may complete after the last client delivery)
    service.sim.run_until(
        lambda: (replica.recovery_stats or {}).get("rejoined_at") is not None,
        service.sim.now + 30.0,
    )
    stats = replica.recovery_stats or {}
    rejoined_at = stats.get("rejoined_at")
    started = stats.get("started", 0.0)
    replay_s = stats.get("replay_s", 0.0)
    total_s = (rejoined_at - started) if rejoined_at is not None else -1.0
    return {
        "replay_s": replay_s,
        "rejoin_s": (total_s - replay_s) if rejoined_at is not None else -1.0,
        "recovery_total_s": total_s,
        "state_transfer_bytes": float(stats.get("state_transfer_bytes", 0)),
        "replayed_batches": float(stats.get("replayed_batches", 0)),
        "delivered": float(service.total_delivered()),
    }


@REGISTRY.register(
    name="baseline_orderers",
    description="§3 baselines: solo and Kafka-CFT orderers vs the BFT "
    "ordering service on the same LAN workload.",
    matrix={
        "orderer": ("solo", "kafka", "bft"),
        "envelopes": (2000,),
        "envelope_size": (1024,),
        "block_size": (10,),
    },
    smoke_matrix={
        "orderer": ("solo", "kafka", "bft"),
        "envelopes": (600,),
        "envelope_size": (1024,),
        "block_size": (10,),
    },
    directions={"median_latency_s": "lower", "blocks": "higher"},
    tags=("baselines", "lan"),
)
def baseline_orderers(ctx: BenchContext) -> Dict[str, float]:
    runner = _BASELINE_RUNNERS[ctx["orderer"]]
    median, blocks = runner(
        ctx["envelopes"], ctx["envelope_size"], ctx["block_size"]
    )
    return {"median_latency_s": median, "blocks": float(blocks)}


# ----------------------------------------------------------------------
# Kernel fast path: simulated seconds per wall-clock second
# ----------------------------------------------------------------------
@REGISTRY.register(
    name="kernel_speed",
    description="Simulator fast-path speed: simulated seconds per "
    "wall-clock second under the saturated Figure 7 LAN workload. "
    "Wall-clock metrics gate with a wide declared tolerance; "
    "events_processed is bit-deterministic and gates exactly.",
    matrix={
        "orderers": (4, 10),
        "duration": (0.4,),
        "warmup": (0.1,),
        "repeats": (3,),
    },
    smoke_matrix={
        "orderers": (4, 10),
        "duration": (0.3,),
        "warmup": (0.1,),
        "repeats": (2,),
    },
    seed_policy="fixed",
    directions={
        "sim_s_per_wall_s": "higher",
        "events_per_wall_s": "higher",
        # fewer kernel events for the same simulated workload = leaner
        # kernel; this count is exact, so any drift is a real change
        "events_processed": "lower",
        "events_per_sim_s": "lower",
    },
    tolerances={
        # real-time measurements: generous band so machine noise cannot
        # trip the gate, while an order-of-magnitude regression still
        # fails it (direction-aware: improvements never fail)
        "sim_s_per_wall_s": 0.60,
        "events_per_wall_s": 0.60,
    },
    tags=("kernel", "speed", "lan"),
)
def kernel_speed_bench(ctx: BenchContext) -> Dict[str, float]:
    result = kernel_speed(
        orderers=ctx["orderers"],
        duration=ctx["duration"],
        warmup=ctx["warmup"],
        seed=ctx.seed,
        repeats=ctx["repeats"],
    )
    return {
        "sim_s_per_wall_s": result.sim_seconds_per_wall_second,
        "events_per_wall_s": result.events_per_wall_second,
        "events_processed": float(result.events_processed),
        "events_per_sim_s": result.events_per_sim_second,
    }

# ----------------------------------------------------------------------
# Bake-off: all four ordering backends on one workload
# ----------------------------------------------------------------------
@REGISTRY.register(
    name="bakeoff_orderers",
    description="Four-backend bake-off (solo / Kafka / BFT-SMaRt / "
    "SmartBFT) on one Figure-7-style workload, with dissemination "
    "bandwidth -- bytes on the wire from the ordering service to its "
    "delivery clients per committed block -- as the first-class "
    "metric (docs/SMARTBFT.md).",
    matrix={
        "orderer": ("solo", "kafka", "bftsmart", "smartbft"),
        # f sizes the BFT group (n = 3f+1); the CFT backends ignore it,
        # their rows document that the CFT cost does not scale with n
        "f": (1, 3),
        "envelopes": (96,),
        "envelope_size": (1024,),
        "block_size": (10,),
    },
    smoke_matrix={
        "orderer": ("solo", "kafka", "bftsmart", "smartbft"),
        "f": (1, 3),
        "envelopes": (40,),
        "envelope_size": (1024,),
        "block_size": (10,),
    },
    directions={
        "dissemination_bytes_per_block": "lower",
        "dissemination_bytes": "lower",
        "blocks": "higher",
    },
    tags=("bakeoff", "lan", "smartbft"),
)
def bakeoff_orderers(ctx: BenchContext) -> Dict[str, float]:
    from repro.ordering.backends import WorkloadSpec, run_backend_workload

    spec = WorkloadSpec(
        num_envelopes=ctx["envelopes"],
        payload_size=ctx["envelope_size"],
        block_size=ctx["block_size"],
        f=ctx["f"],
        seed=ctx.seed,
    )
    run = run_backend_workload(ctx["orderer"], spec)
    blocks = len(run.committed_blocks)
    return {
        "dissemination_bytes_per_block": (
            run.dissemination_bytes / blocks if blocks else 0.0
        ),
        "dissemination_bytes": float(run.dissemination_bytes),
        "blocks": float(blocks),
    }


# ----------------------------------------------------------------------
# Overload: goodput under open-loop pressure and adversarial floods
# ----------------------------------------------------------------------
@REGISTRY.register(
    name="overload",
    description="Open-loop overload sweep: per-tenant goodput, p99 "
    "admitted latency and Jain fairness vs offered load (multiples of "
    "the admission-controlled saturation rate), with and without a "
    "one-tenant duplicate flood.  Admission control must make goodput "
    "saturate instead of collapse (docs/WORKLOADS.md).",
    matrix={
        "load_multiplier": (0.5, 1.0, 2.0, 4.0),
        "adversary": ("none", "duplicate-flood"),
        "saturation_rate": (800.0,),
        "tenants": (4,),
        "duration": (2.0,),
        "block_size": (25,),
    },
    smoke_matrix={
        "load_multiplier": (0.5, 1.0, 4.0),
        "adversary": ("none", "duplicate-flood"),
        "saturation_rate": (400.0,),
        "tenants": (4,),
        "duration": (1.5,),
        "block_size": (25,),
    },
    directions={
        "goodput_per_s": "higher",
        "p99_latency_s": "lower",
        "fairness": "higher",
        "shed_fraction": "lower",
        "offered": "higher",
        "committed": "higher",
    },
    tags=("overload", "workload", "admission"),
)
def overload(ctx: BenchContext) -> Dict[str, float]:
    from repro.ordering import AdmissionConfig
    from repro.workload import DuplicateFlood, RawProfile, TenantSpec, WorkloadEngine

    num_tenants = ctx["tenants"]
    saturation = ctx["saturation_rate"]
    duration = ctx["duration"]
    share = saturation / num_tenants  # per-tenant fair share
    num_frontends = 2
    config = OrderingServiceConfig(
        f=1,
        channel=ChannelConfig(
            "ch0", max_message_count=ctx["block_size"], batch_timeout=0.05
        ),
        num_frontends=num_frontends,
        physical_cores=None,
        enable_batch_timeout=True,
        seed=ctx.seed,
        # per-tenant budget = the fair share; the window stays loose so
        # the token buckets, not the window, shape the steady state
        admission=AdmissionConfig(
            tenant_rate=share,
            tenant_burst=share * 0.25,
            max_in_flight=600,
        ),
    )
    service = build_ordering_service(config, observability=ctx.obs)
    # tenants are pinned to frontends so each tenant faces exactly one
    # token bucket (admission state is per frontend)
    tenants = [
        TenantSpec(
            name=f"tenant{i}",
            sessions=10_000,
            session_rate=share * ctx["load_multiplier"] / 10_000,
            arrival="poisson",
            profile=RawProfile(channel="ch0", envelope_size=512),
            frontend_index=i % num_frontends,
        )
        for i in range(num_tenants)
    ]
    if ctx["adversary"] == "duplicate-flood":
        tenants.append(
            TenantSpec(
                name="mallory",
                session_rate=2.0 * saturation,
                arrival="fixed",
                profile=DuplicateFlood(channel="ch0", envelope_size=512),
                frontend_index=0,
            )
        )
    engine = WorkloadEngine(
        service.sim,
        service.frontends,
        tenants,
        streams=RandomStreams(ctx.seed),
        duration=duration,
    )
    engine.start()
    service.run(duration + 1.5)  # drain the in-flight tail
    report = engine.report(honest_only_fairness=True)
    return {
        "goodput_per_s": report.committed / duration,
        "p99_latency_s": report.p99_latency_s,
        "fairness": report.fairness,
        "shed_fraction": report.shed_fraction,
        "offered": float(report.offered),
        "committed": float(report.committed),
    }
