"""The paper's experiments, one function per table/figure.

Every function returns plain dict/dataclass results that the benchmark
modules under ``benchmarks/`` render and assert on, and that
EXPERIMENTS.md records next to the paper's numbers.

- :func:`figure6` -- signature-generation throughput vs worker
  threads, *measured* on the simulated 8-core/16-thread Xeon, with the
  analytic curve alongside;
- :func:`figure6_invariance` -- signing rate vs envelope/block sizes
  (constant, because only the header is signed);
- :func:`figure7_panel` -- LAN ordering throughput vs receivers for
  all envelope sizes (one panel of Figure 7, from the capacity model);
- :func:`simulate_lan_throughput` -- full-stack DES cross-validation
  of a single Figure 7 operating point;
- :func:`geo_latency_experiment` -- Figures 8 and 9: end-to-end
  ordering latency at four frontends across the Americas with the
  ordering cluster spread world-wide, BFT-SMaRt vs WHEAT;
- :func:`conclusion_comparison` -- the §8 comparison against
  Ethereum's and Bitcoin's peaks;
- :func:`wheat_ablation` -- our ablation: weights and tentative
  execution toggled independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.model import (
    BATCH_LIMIT,
    OrderingCapacityModel,
    SignatureThroughputModel,
)
from repro.bench.topology import aws_latency_model, lan_latency_model
from repro.bench.workload import OpenLoopGenerator
from repro.fabric.channel import ChannelConfig
from repro.ordering.service import (
    FRONTEND_ID_BASE,
    OrderingServiceConfig,
    build_ordering_service,
)
from repro.sim.core import Simulator
from repro.sim.cpu import CPU, ThreadPool

#: The envelope sizes of the evaluation: a SHA-256 hash, three ECDSA
#: endorsement signatures, and 1/4 KB transaction messages (§6.2).
ENVELOPE_SIZES = (40, 200, 1024, 4096)

#: Receiver counts of Figure 7.
RECEIVER_COUNTS = (1, 2, 4, 8, 16, 32)

#: Cluster sizes of Figure 7 (f = 1, 2, 3).
CLUSTER_SIZES = (4, 7, 10)

#: Block sizes of the evaluation.
BLOCK_SIZES = (10, 100)

#: The geo deployment of §6.3.
BFTSMART_GEO_SITES = ("oregon", "ireland", "sydney", "saopaulo")
WHEAT_GEO_SITES = ("oregon", "virginia", "ireland", "sydney", "saopaulo")
GEO_FRONTEND_SITES = ("canada", "oregon", "virginia", "saopaulo")


# ----------------------------------------------------------------------
# Figure 6
# ----------------------------------------------------------------------
def figure6(
    workers: Sequence[int] = tuple(range(1, 17)),
    envelopes_per_block: int = 10,
    measure_seconds: float = 1.0,
) -> Dict[int, Dict[str, float]]:
    """Signature generation for Fabric blocks (Figure 6).

    For each worker count, runs the simulated 16-hardware-thread Xeon
    with a saturated signing pool and measures signatures/second; the
    closed-form model value is reported alongside.
    """
    model = SignatureThroughputModel()
    results: Dict[int, Dict[str, float]] = {}
    for count in workers:
        sim = Simulator()
        cpu = CPU(sim, physical_cores=model.physical_cores,
                  hardware_threads=model.hardware_threads, ht_yield=model.ht_yield)
        pool = ThreadPool(cpu, count)
        completed = [0]

        def finish(_=None):
            completed[0] += 1

        # keep the pool saturated: twice the expected work plus slack
        expected = model.throughput(count) * measure_seconds
        for _ in range(int(expected * 2) + count + 8):
            pool.submit(model.sign_cost, finish)
        sim.run(until=measure_seconds)
        measured = completed[0] / measure_seconds
        results[count] = {
            "measured": measured,
            "model": model.throughput(count),
            "theoretical_tx_per_sec": measured * envelopes_per_block,
        }
    return results


def figure6_invariance(
    envelope_sizes: Sequence[int] = ENVELOPE_SIZES,
    block_sizes: Sequence[int] = BLOCK_SIZES,
    workers: int = 16,
) -> Dict[Tuple[int, int], float]:
    """§6.1: the signing rate is independent of envelope and block
    sizes because only the (fixed-size) header is signed."""
    model = SignatureThroughputModel()
    rate = model.throughput(workers)
    return {(es, bs): rate for es in envelope_sizes for bs in block_sizes}


# ----------------------------------------------------------------------
# Figure 7 (capacity model) + DES cross-validation
# ----------------------------------------------------------------------
def figure7_panel(
    orderers: int,
    block_size: int,
    envelope_sizes: Sequence[int] = ENVELOPE_SIZES,
    receivers: Sequence[int] = RECEIVER_COUNTS,
) -> Dict[int, Dict[int, float]]:
    """One panel of Figure 7: tx/s by envelope size and receivers."""
    model = OrderingCapacityModel(n=orderers)
    return {
        es: {r: model.throughput(es, block_size, r) for r in receivers}
        for es in envelope_sizes
    }


def figure7_all_panels() -> Dict[Tuple[int, int], Dict[int, Dict[int, float]]]:
    """All six panels: (orderers, block size) -> series."""
    return {
        (n, bs): figure7_panel(n, bs)
        for n in CLUSTER_SIZES
        for bs in BLOCK_SIZES
    }


@dataclass
class LanSimResult:
    """One full-stack DES measurement of a Figure 7 operating point."""

    orderers: int
    block_size: int
    envelope_size: int
    receivers: int
    offered_rate: float
    generated_rate: float  # blocks*bs signed at node 0
    delivered_rate: float  # envelopes accepted (2f+1 copies) at a frontend
    model_prediction: float
    #: kernel events the run processed (deterministic for a seed)
    events_processed: int = 0


def simulate_lan_throughput(
    orderers: int = 4,
    block_size: int = 10,
    envelope_size: int = 1024,
    receivers: int = 2,
    duration: float = 2.0,
    warmup: float = 0.5,
    rate_factor: float = 1.15,
    seed: int = 0,
    observability=None,
) -> LanSimResult:
    """Drive the real simulated stack at ~capacity and measure.

    Cross-validates the capacity model: the DES implements bandwidth
    and signing-CPU contention natively, so measured throughput should
    land in the same regime as the model's prediction.
    """
    f = (orderers - 1) // 3
    model = OrderingCapacityModel(n=orderers)
    predicted = model.throughput(envelope_size, block_size, receivers)
    offered = predicted * rate_factor
    channel = ChannelConfig(
        "bench", max_message_count=block_size, batch_timeout=10.0
    )
    config = OrderingServiceConfig(
        f=f,
        channel=channel,
        num_frontends=receivers,
        latency=lan_latency_model(),
        bandwidth_bps=1e9,
        physical_cores=8,
        hardware_threads=16,
        signing_workers=16,
        smart_cpu_fraction=0.6,
        max_batch=BATCH_LIMIT,
        request_timeout=30.0,  # saturation benches must not trigger
        seed=seed,             # regency changes
    )
    service = build_ordering_service(config, observability=observability)
    generator = OpenLoopGenerator(
        sim=service.sim,
        frontends=service.frontends,
        channel_id="bench",
        envelope_size=envelope_size,
        rate_per_second=offered,
        duration=warmup + duration,
    )
    generator.start()
    service.run(warmup + duration)
    node_meter = service.stats.meter("orderer0.envelopes")
    frontend_meter = service.stats.meter(f"{FRONTEND_ID_BASE}.envelopes")
    generated = node_meter.rate(start=warmup, end=warmup + duration)
    delivered = frontend_meter.rate(start=warmup, end=warmup + duration)
    return LanSimResult(
        orderers=orderers,
        block_size=block_size,
        envelope_size=envelope_size,
        receivers=receivers,
        offered_rate=offered,
        generated_rate=generated,
        delivered_rate=delivered,
        model_prediction=predicted,
        events_processed=service.sim.processed_events,
    )


# ----------------------------------------------------------------------
# Figures 8 and 9: geo-distributed latency
# ----------------------------------------------------------------------
@dataclass
class GeoLatencyResult:
    """Latency distribution at one frontend for one configuration."""

    protocol: str
    envelope_size: int
    block_size: int
    frontend_region: str
    median: float
    p90: float
    samples: int
    throughput: float


def geo_latency_experiment(
    protocol: str = "bftsmart",
    envelope_size: int = 1024,
    block_size: int = 10,
    rate: float = 1100.0,
    duration: float = 10.0,
    warmup: float = 3.0,
    seed: int = 0,
) -> List[GeoLatencyResult]:
    """One cell of Figures 8/9: a world-spanning ordering cluster with
    four frontends across the Americas, median and 90th-percentile
    ordering latency per frontend.

    ``protocol`` is ``"bftsmart"`` (4 replicas, uniform weights, final
    delivery) or ``"wheat"`` (5 replicas with Virginia as the extra,
    Oregon+Virginia holding Vmax, tentative execution).
    """
    if protocol == "bftsmart":
        sites = list(BFTSMART_GEO_SITES)
        delta = 0
        vmax_holders: Optional[Sequence[int]] = None
        tentative = False
    elif protocol == "wheat":
        sites = list(WHEAT_GEO_SITES)
        delta = 1
        vmax_holders = (0, 1)  # oregon + virginia
        tentative = True
    else:
        raise ValueError(f"unknown protocol {protocol!r}")

    channel = ChannelConfig(
        "geo", max_message_count=block_size, batch_timeout=1.0
    )
    config = OrderingServiceConfig(
        f=1,
        delta=delta,
        vmax_holders=vmax_holders,
        tentative_execution=tentative,
        channel=channel,
        num_frontends=len(GEO_FRONTEND_SITES),
        node_sites=sites,
        frontend_sites=list(GEO_FRONTEND_SITES),
        latency=aws_latency_model(),
        bandwidth_bps=2e9,  # m4.4xlarge "High" network performance
        physical_cores=None,  # 16 vCPUs are never the bottleneck here
        max_batch=BATCH_LIMIT,
        request_timeout=8.0,
        enable_batch_timeout=True,
        seed=seed,
    )
    service = build_ordering_service(config)
    generator = OpenLoopGenerator(
        sim=service.sim,
        frontends=service.frontends,
        channel_id="geo",
        envelope_size=envelope_size,
        rate_per_second=rate,
        duration=warmup + duration,
        jitter_fraction=0.2,
        streams=None,
    )
    generator.start()
    service.run(warmup)
    for index in range(len(service.frontends)):
        service.stats.latency(f"{FRONTEND_ID_BASE + index}.latency").reset()
    service.run(duration + 2.0)  # drain the tail

    results: List[GeoLatencyResult] = []
    for index, region in enumerate(GEO_FRONTEND_SITES):
        name = FRONTEND_ID_BASE + index
        recorder = service.stats.latency(f"{name}.latency")
        meter = service.stats.meter(f"{name}.envelopes")
        results.append(
            GeoLatencyResult(
                protocol=protocol,
                envelope_size=envelope_size,
                block_size=block_size,
                frontend_region=region,
                median=recorder.median,
                p90=recorder.p90,
                samples=recorder.count,
                throughput=meter.rate(start=warmup, end=warmup + duration),
            )
        )
    return results


def figure8(
    envelope_sizes: Sequence[int] = ENVELOPE_SIZES,
    block_size: int = 10,
    rate: float = 1100.0,
    duration: float = 10.0,
    seed: int = 0,
) -> Dict[str, Dict[int, List[GeoLatencyResult]]]:
    """Figure 8 (or Figure 9 with ``block_size=100``)."""
    return {
        protocol: {
            es: geo_latency_experiment(
                protocol=protocol,
                envelope_size=es,
                block_size=block_size,
                rate=rate,
                duration=duration,
                seed=seed,
            )
            for es in envelope_sizes
        }
        for protocol in ("bftsmart", "wheat")
    }


def figure9(
    envelope_sizes: Sequence[int] = ENVELOPE_SIZES,
    rate: float = 1100.0,
    duration: float = 10.0,
    seed: int = 0,
) -> Dict[str, Dict[int, List[GeoLatencyResult]]]:
    return figure8(
        envelope_sizes=envelope_sizes,
        block_size=100,
        rate=rate,
        duration=duration,
        seed=seed,
    )


# ----------------------------------------------------------------------
# §8 conclusion comparison and ablations
# ----------------------------------------------------------------------
def conclusion_comparison() -> Dict[str, float]:
    """§8: the worst-case operating point (10 nodes, 4 KB envelopes,
    100-envelope blocks of ~400 KB, 32 receivers) against Ethereum's
    theoretical 1,000 tx/s and Bitcoin's 7 tx/s."""
    model = OrderingCapacityModel(n=10)
    floor = model.throughput(4096, 100, 32)
    return {
        "bft_ordering_worst_case": floor,
        "ethereum_theoretical_peak": 1000.0,
        "bitcoin_peak": 7.0,
        "speedup_vs_ethereum": floor / 1000.0,
        "speedup_vs_bitcoin": floor / 7.0,
    }


@dataclass
class AblationResult:
    weights: bool
    tentative: bool
    median: float
    p90: float


def wheat_ablation_point(
    weights: bool,
    tentative: bool,
    envelope_size: int = 1024,
    block_size: int = 10,
    rate: float = 1100.0,
    duration: float = 8.0,
    frontend_region: str = "virginia",
    warmup: float = 2.0,
    seed: int = 0,
) -> AblationResult:
    """One cell of the WHEAT ablation: weighted quorums and tentative
    execution toggled independently on the 5-replica geo deployment."""
    channel = ChannelConfig(
        "geo", max_message_count=block_size, batch_timeout=1.0
    )
    config = OrderingServiceConfig(
        f=1,
        delta=1,
        vmax_holders=(0, 1) if weights else None,
        tentative_execution=tentative,
        channel=channel,
        num_frontends=len(GEO_FRONTEND_SITES),
        node_sites=list(WHEAT_GEO_SITES),
        frontend_sites=list(GEO_FRONTEND_SITES),
        latency=aws_latency_model(),
        bandwidth_bps=2e9,
        physical_cores=None,
        request_timeout=8.0,
        enable_batch_timeout=True,
        seed=seed,
    )
    if not weights:
        # uniform weights over 3f+1+delta replicas
        config.vmax_holders = None
        uniform = {i: 1.0 for i in range(config.n)}
        service = build_ordering_service(config)
        # rebuild views with uniform weights is equivalent to
        # passing explicit weights; the builder computes binary
        # weights from delta, so override them here
        from repro.smart.view import View

        view = View(
            view_id=0,
            processes=tuple(range(config.n)),
            f=1,
            delta=1,
            weights=uniform,
        )
        for replica in service.replicas:
            replica.view = view
        for frontend in service.frontends:
            frontend.proxy.update_view(view)
    else:
        service = build_ordering_service(config)
    generator = OpenLoopGenerator(
        sim=service.sim,
        frontends=service.frontends,
        channel_id="geo",
        envelope_size=envelope_size,
        rate_per_second=rate,
        duration=warmup + duration,
    )
    generator.start()
    service.run(warmup)
    index = GEO_FRONTEND_SITES.index(frontend_region)
    recorder = service.stats.latency(f"{FRONTEND_ID_BASE + index}.latency")
    recorder.reset()
    service.run(duration + 2.0)
    return AblationResult(
        weights=weights,
        tentative=tentative,
        median=recorder.median,
        p90=recorder.p90,
    )


def wheat_ablation(
    envelope_size: int = 1024,
    block_size: int = 10,
    rate: float = 1100.0,
    duration: float = 8.0,
    frontend_region: str = "virginia",
    seed: int = 0,
) -> List[AblationResult]:
    """Decompose WHEAT's gain: weighted quorums and tentative execution
    toggled independently on the 5-replica geo deployment."""
    return [
        wheat_ablation_point(
            weights,
            tentative,
            envelope_size=envelope_size,
            block_size=block_size,
            rate=rate,
            duration=duration,
            frontend_region=frontend_region,
            seed=seed,
        )
        for weights in (False, True)
        for tentative in (False, True)
    ]


# ----------------------------------------------------------------------
# Kernel fast path: simulated time per wall-clock second
# ----------------------------------------------------------------------
@dataclass
class KernelSpeedResult:
    """Wall-clock speed of the simulator under the Figure 7 workload.

    ``sim_seconds_per_wall_second`` is the headline number: how many
    simulated seconds one real second buys.  ``events_processed`` is
    bit-deterministic for a seed, so it doubles as an exact regression
    probe for "someone made the protocol chattier" -- wall-clock noise
    cannot hide behind it.
    """

    orderers: int
    sim_seconds: float
    wall_seconds: float  # best (minimum) over the in-process repeats
    events_processed: int
    sim_seconds_per_wall_second: float
    events_per_wall_second: float
    events_per_sim_second: float


def kernel_speed(
    orderers: int = 10,
    duration: float = 0.4,
    warmup: float = 0.1,
    seed: int = 0,
    repeats: int = 3,
) -> KernelSpeedResult:
    """Measure simulated-seconds-per-wall-second on the fig7 LAN workload.

    Runs :func:`simulate_lan_throughput` (the saturated Figure 7 LAN
    operating point -- the most event-dense scenario in the suite)
    ``repeats`` times in-process with the *same* seed and keeps the
    fastest wall time: the workload is deterministic, so repeats only
    differ by interpreter warm-up and machine noise, and best-of is the
    standard estimator for that shape.  Wall-clock measurement is the
    entire point of this benchmark, hence the DET001 suppressions.
    """
    import time as _time

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    sim_seconds = warmup + duration
    best_wall = float("inf")
    events = 0
    for _ in range(repeats):
        start = _time.perf_counter()  # repro: allow[DET001] wall-clock benchmark by design
        result = simulate_lan_throughput(
            orderers=orderers, duration=duration, warmup=warmup, seed=seed
        )
        wall = _time.perf_counter() - start  # repro: allow[DET001] wall-clock benchmark by design
        best_wall = min(best_wall, wall)
        events = result.events_processed
    return KernelSpeedResult(
        orderers=orderers,
        sim_seconds=sim_seconds,
        wall_seconds=best_wall,
        events_processed=events,
        sim_seconds_per_wall_second=sim_seconds / best_wall,
        events_per_wall_second=events / best_wall,
        events_per_sim_second=events / sim_seconds,
    )
