"""Workload generation for the ordering-service experiments.

The paper drives the service with clients that emulate frontends
(§6.2: 16-32 asynchronous clients; §6.3: "enough client threads to
keep node throughput always above 1000 transactions/second").  We
provide an open-loop generator (fixed aggregate rate, optionally
jittered) and a simple closed-loop client pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.fabric.envelope import Envelope
from repro.ordering.frontend import Frontend
from repro.sim.core import Simulator
from repro.sim.randomness import RandomStreams


def envelope_stream(
    channel_id: str, size_bytes: int, count: int, submitter: str = "loadgen"
) -> Iterator[Envelope]:
    """A finite stream of raw envelopes of one size."""
    for _ in range(count):
        yield Envelope.raw(channel_id, size_bytes, submitter=submitter)


@dataclass
class OpenLoopGenerator:
    """Submits envelopes at a fixed aggregate rate, round-robin over
    frontends (each frontend then behaves like the paper's client
    threads feeding the ordering cluster)."""

    sim: Simulator
    frontends: Sequence[Frontend]
    channel_id: str
    envelope_size: int
    rate_per_second: float
    duration: float
    jitter_fraction: float = 0.0
    streams: Optional[RandomStreams] = None
    submitted: int = 0
    _stopped: bool = False

    def start(self) -> None:
        if self.rate_per_second <= 0:
            raise ValueError("rate must be positive")
        self._interval = 1.0 / self.rate_per_second
        self._deadline = self.sim.now + self.duration
        self._rng = (self.streams or RandomStreams(0)).stream("workload")
        self.sim.call_soon(self._tick)

    def stop(self) -> None:
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped or self.sim.now > self._deadline:
            return
        frontend = self.frontends[self.submitted % len(self.frontends)]
        envelope = Envelope.raw(
            self.channel_id, self.envelope_size, submitter="loadgen"
        )
        frontend.submit(envelope)
        self.submitted += 1
        delay = self._interval
        if self.jitter_fraction > 0:
            delay *= 1.0 + self.jitter_fraction * (2.0 * self._rng.random() - 1.0)
        self.sim.post(delay, self._tick)


@dataclass
class ClosedLoopClients:
    """``clients`` concurrent submitters, each sending its next
    envelope as soon as the previous one is committed at its frontend.

    Uses the frontend's ``on_block`` hook as the completion signal, so
    in-flight envelopes are bounded by the client count -- useful to
    probe latency at a fixed concurrency instead of a fixed rate.
    """

    sim: Simulator
    frontend: Frontend
    channel_id: str
    envelope_size: int
    clients: int
    max_envelopes: int
    submitted: int = 0
    completed: int = 0
    _outstanding: dict = field(default_factory=dict)

    def start(self) -> None:
        self.frontend.on_block.append(self._on_block)
        for _ in range(min(self.clients, self.max_envelopes)):
            self._submit_next()

    def _submit_next(self) -> None:
        if self.submitted >= self.max_envelopes:
            return
        envelope = Envelope.raw(
            self.channel_id, self.envelope_size, submitter="closedloop"
        )
        self._outstanding[envelope.envelope_id] = envelope
        self.submitted += 1
        self.frontend.submit(envelope)

    def _on_block(self, block) -> None:
        for envelope in block.envelopes:
            if envelope.envelope_id in self._outstanding:
                del self._outstanding[envelope.envelope_id]
                self.completed += 1
                self._submit_next()

    @property
    def done(self) -> bool:
        return self.completed >= self.max_envelopes
