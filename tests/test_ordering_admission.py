"""Admission control / backpressure tests (docs/WORKLOADS.md).

Covers the controller in isolation (token buckets, in-flight window,
explicit verdicts, fairness accounting) and its integration into both
frontends: a rejected envelope never reaches the cluster, an admitted
one frees its window slot when its block commits, and disabling
admission preserves the historical relay-everything behaviour.
"""

import pytest

from repro.fabric.channel import ChannelConfig
from repro.fabric.envelope import Envelope, OversizedPayloadError
from repro.ordering import OrderingServiceConfig, build_ordering_service
from repro.ordering.admission import (
    REASON_OVERSIZED,
    REASON_RATE_LIMITED,
    REASON_WINDOW_FULL,
    AdmissionConfig,
    AdmissionController,
    Rejected,
    jain_fairness,
    merge_tenant_counts,
)


class TestAdmissionController:
    def test_admits_within_burst(self):
        controller = AdmissionController(
            AdmissionConfig(tenant_rate=10.0, tenant_burst=5.0, max_in_flight=100)
        )
        verdicts = [controller.admit("alice", 0.0) for _ in range(5)]
        assert verdicts == [None] * 5
        assert controller.admitted == 5
        assert controller.in_flight == 5

    def test_rate_limits_past_burst(self):
        controller = AdmissionController(
            AdmissionConfig(tenant_rate=10.0, tenant_burst=2.0, max_in_flight=100)
        )
        assert controller.admit("alice", 0.0) is None
        assert controller.admit("alice", 0.0) is None
        verdict = controller.admit("alice", 0.0)
        assert isinstance(verdict, Rejected)
        assert verdict.reason == REASON_RATE_LIMITED
        assert verdict.retry_after == pytest.approx(0.1)

    def test_bucket_refills_over_time(self):
        controller = AdmissionController(
            AdmissionConfig(tenant_rate=10.0, tenant_burst=1.0, max_in_flight=100)
        )
        assert controller.admit("alice", 0.0) is None
        assert controller.admit("alice", 0.0).reason == REASON_RATE_LIMITED
        # 0.2s at 10 tokens/s refills 2 tokens, capped at burst=1
        assert controller.admit("alice", 0.2) is None

    def test_window_full_sheds_every_tenant(self):
        controller = AdmissionController(
            AdmissionConfig(tenant_rate=100.0, tenant_burst=10.0, max_in_flight=2)
        )
        assert controller.admit("alice", 0.0) is None
        assert controller.admit("bob", 0.0) is None
        verdict = controller.admit("carol", 0.0)
        assert verdict.reason == REASON_WINDOW_FULL
        controller.release(1)
        assert controller.admit("carol", 0.0) is None

    def test_release_never_goes_negative(self):
        controller = AdmissionController()
        controller.release(5)
        assert controller.in_flight == 0

    def test_buckets_are_per_tenant(self):
        controller = AdmissionController(
            AdmissionConfig(tenant_rate=10.0, tenant_burst=1.0, max_in_flight=100)
        )
        assert controller.admit("alice", 0.0) is None
        assert controller.admit("alice", 0.0).reason == REASON_RATE_LIMITED
        # bob's bucket is untouched by alice's exhaustion
        assert controller.admit("bob", 0.0) is None

    def test_oversized_recorded_with_zero_retry(self):
        controller = AdmissionController()
        verdict = controller.reject_oversized("alice")
        assert verdict.reason == REASON_OVERSIZED
        assert verdict.retry_after == 0.0
        assert controller.rejected[REASON_OVERSIZED] == 1

    def test_shed_fraction_and_fairness(self):
        controller = AdmissionController(
            AdmissionConfig(tenant_rate=10.0, tenant_burst=2.0, max_in_flight=100)
        )
        for _ in range(4):
            controller.admit("alice", 0.0)
        for _ in range(2):
            controller.admit("bob", 0.0)
        assert controller.shed_count == 2  # alice's 3rd and 4th
        assert controller.shed_fraction() == pytest.approx(2 / 6)
        assert controller.fairness_index() == pytest.approx(1.0)  # 2 vs 2

    def test_merge_tenant_counts(self):
        a = AdmissionController(AdmissionConfig(tenant_burst=10.0))
        b = AdmissionController(AdmissionConfig(tenant_burst=10.0))
        a.admit("alice", 0.0)
        b.admit("alice", 0.0)
        b.admit("bob", 0.0)
        admitted, rejected = merge_tenant_counts([a, b])
        assert admitted == {"alice": 2, "bob": 1}
        assert rejected == {}


class TestJainFairness:
    def test_even_allocation_is_one(self):
        assert jain_fairness([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_single_hog_is_one_over_n(self):
        assert jain_fairness([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_and_zero_are_fair(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0, 0]) == 1.0


def overload_service(orderer="bftsmart", **admission_kwargs):
    defaults = dict(tenant_rate=1000.0, tenant_burst=100.0, max_in_flight=8)
    defaults.update(admission_kwargs)
    config = OrderingServiceConfig(
        orderer=orderer,
        f=1,
        channel=ChannelConfig("ch0", max_message_count=4, batch_timeout=0.25),
        num_frontends=1,
        physical_cores=None,
        enable_batch_timeout=True,
        admission=AdmissionConfig(**defaults),
    )
    return build_ordering_service(config)


@pytest.mark.parametrize("orderer", ["bftsmart", "smartbft"])
class TestFrontendIntegration:
    def test_window_full_rejects_then_drains(self, orderer):
        service = overload_service(orderer)
        frontend = service.frontends[0]
        verdicts = []
        for i in range(12):
            envelope = Envelope(
                channel_id="ch0", transaction=None, payload_size=64, envelope_id=i
            )
            verdicts.append(frontend.submit(envelope))
        rejected = [v for v in verdicts if v is not None]
        assert len(rejected) == 4  # window of 8
        assert all(v.reason == REASON_WINDOW_FULL for v in rejected)
        assert frontend.envelopes_submitted == 8
        # committing the admitted envelopes frees the window
        service.sim.run_until(lambda: service.total_delivered() >= 8, 30.0)
        assert frontend.admission.in_flight == 0
        late = Envelope(
            channel_id="ch0", transaction=None, payload_size=64, envelope_id=99
        )
        assert frontend.submit(late) is None

    def test_oversized_is_explicit_verdict_with_admission(self, orderer):
        service = overload_service(orderer)
        frontend = service.frontends[0]
        huge = Envelope(
            channel_id="ch0",
            transaction=None,
            payload_size=512 * 1024 * 1024,
            envelope_id=1,
        )
        verdict = frontend.submit(huge)
        assert verdict is not None and verdict.reason == REASON_OVERSIZED
        assert frontend.envelopes_submitted == 0

    def test_rejected_envelopes_never_reach_the_cluster(self, orderer):
        service = overload_service(orderer, max_in_flight=2)
        frontend = service.frontends[0]
        for i in range(6):
            envelope = Envelope(
                channel_id="ch0", transaction=None, payload_size=64, envelope_id=i
            )
            frontend.submit(envelope)
        service.sim.run_until(lambda: service.total_delivered() >= 2, 30.0)
        service.run(2.0)
        assert service.total_delivered() == 2
        assert frontend.admission.shed_count == 4


class TestAdmissionDisabledCompat:
    def test_oversized_still_raises_without_admission(self):
        config = OrderingServiceConfig(
            f=1,
            channel=ChannelConfig("ch0", max_message_count=4),
            num_frontends=1,
            physical_cores=None,
        )
        service = build_ordering_service(config)
        huge = Envelope(
            channel_id="ch0",
            transaction=None,
            payload_size=512 * 1024 * 1024,
            envelope_id=1,
        )
        with pytest.raises(OversizedPayloadError):
            service.frontends[0].submit(huge)

    def test_submit_returns_none_without_admission(self):
        config = OrderingServiceConfig(
            f=1,
            channel=ChannelConfig("ch0", max_message_count=4),
            num_frontends=1,
            physical_cores=None,
        )
        service = build_ordering_service(config)
        envelope = Envelope(
            channel_id="ch0", transaction=None, payload_size=64, envelope_id=1
        )
        assert service.frontends[0].submit(envelope) is None
        assert service.frontends[0].admission is None


class TestObsIntegration:
    def test_reject_counters_and_gauges(self):
        from repro.obs import Observability

        obs = Observability()
        config = OrderingServiceConfig(
            f=1,
            channel=ChannelConfig("ch0", max_message_count=4),
            num_frontends=1,
            physical_cores=None,
            admission=AdmissionConfig(
                tenant_rate=10.0, tenant_burst=1.0, max_in_flight=4
            ),
        )
        service = build_ordering_service(config, observability=obs)
        frontend = service.frontends[0]
        for i in range(3):
            envelope = Envelope(
                channel_id="ch0",
                transaction=None,
                payload_size=64,
                envelope_id=i,
                submitter="alice",
            )
            frontend.submit(envelope)
        name = frontend.name
        registry = obs.registry
        assert (
            registry.counter(f"ordering.frontend.{name}.rejected.rate-limited").value
            == 2
        )
        assert (
            registry.counter(f"ordering.frontend.{name}.rejected_total").value == 2
        )
        assert registry.gauge(f"ordering.frontend.{name}.in_flight").value == 1
        assert registry.gauge(f"ordering.frontend.{name}.shed_count").value == 2
