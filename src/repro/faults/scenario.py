"""Timed fault scenarios.

A :class:`Scenario` is a declarative schedule: *at* time ``t`` start
this action, optionally stop it after ``duration`` seconds, and (if
``heal_at`` is set) stop everything and scrub the network at that time.
Installing a scenario only schedules simulator events -- the run itself
is driven by whoever owns the simulator (a test, the explorer, the
CLI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.faults.actions import FaultAction
from repro.faults.injector import FaultInjector


@dataclass
class FaultEvent:
    """One scheduled fault: start ``action`` at ``at`` for ``duration``.

    ``duration=None`` leaves the fault active until the scenario's
    ``heal_at`` (or forever if the scenario never heals).
    """

    at: float
    action: FaultAction
    duration: Optional[float] = None

    def describe(self) -> str:
        span = f"+{self.duration:g}s" if self.duration is not None else "until-heal"
        return f"@{self.at:g}s {self.action.describe()} ({span})"


class Scenario:
    """A reproducible fault schedule against one deployment."""

    def __init__(self, events: Sequence[FaultEvent], heal_at: Optional[float] = None):
        self.events = list(events)
        self.heal_at = heal_at
        for event in self.events:
            if heal_at is not None and event.at >= heal_at:
                raise ValueError(
                    f"fault at t={event.at} starts after heal_at={heal_at}"
                )

    def install(self, injector: FaultInjector) -> None:
        """Schedule every start/stop (and the heal) on the simulator."""
        sim = injector.sim
        for event in self.events:
            sim.schedule_at(event.at, injector.start, event.action)
            if event.duration is not None:
                stop_at = event.at + event.duration
                if self.heal_at is not None:
                    stop_at = min(stop_at, self.heal_at)
                sim.schedule_at(stop_at, injector.stop, event.action)
        if self.heal_at is not None:
            sim.schedule_at(self.heal_at, injector.heal)

    def describe(self) -> List[str]:
        lines = [event.describe() for event in self.events]
        if self.heal_at is not None:
            lines.append(f"@{self.heal_at:g}s heal")
        return lines
