"""End-to-end observability tests on the seeded 4-node LAN scenario.

The golden-determinism test is the teeth of the whole layer: two runs
of the same seeded scenario must produce byte-identical span trees, or
the tracer (or the simulator underneath it) has picked up a source of
nondeterminism.
"""

import json

import pytest

from repro.obs import validate_chrome_trace, chrome_trace
from repro.obs.__main__ import main as obs_main
from repro.obs.report import (
    CROSS_CHECK_TOLERANCE,
    cross_check,
    harness_end_to_end_mean,
    render_report,
    run_scenario,
)

pytestmark = pytest.mark.bench

SCENARIO = dict(seed=0, duration=0.5, rate=400.0)


@pytest.fixture(scope="module")
def result():
    return run_scenario(**SCENARIO)


class TestGoldenDeterminism:
    def test_identical_span_trees_across_runs(self, result):
        rerun = run_scenario(**SCENARIO)
        first = result.obs.tracer.tree()
        second = rerun.obs.tracer.tree()
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_identical_metric_snapshots_across_runs(self, result):
        rerun = run_scenario(**SCENARIO)
        assert result.obs.registry.snapshot() == rerun.obs.registry.snapshot()


class TestCrossCheck:
    def test_phase_sum_matches_harness_latency(self, result):
        ok, line = cross_check(result)
        assert ok, line
        breakdown = result.obs.phase_breakdown()
        harness = harness_end_to_end_mean(result.service)
        assert harness is not None
        assert breakdown.phase_sum == pytest.approx(
            harness, rel=CROSS_CHECK_TOLERANCE
        )

    def test_scenario_made_progress(self, result):
        assert result.submitted > 0
        breakdown = result.obs.phase_breakdown()
        assert breakdown.complete > 0

    def test_no_orphaned_spans_in_clean_run(self, result):
        assert result.obs.tracer.orphans() == []


class TestExport:
    def test_scenario_trace_validates(self, result):
        validate_chrome_trace(chrome_trace(result.obs.tracer))

    def test_report_renders_all_sections(self, result):
        text = render_report(result)
        assert "latency by protocol phase" in text
        assert "critical path, consensus instance" in text
        assert "CPU time by activity" in text
        assert "bytes by link" in text
        assert "cross-check [OK]" in text


class TestCli:
    def test_report_command_exits_zero(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        code = obs_main(
            ["report", "--duration", "0.5", "--trace", str(trace_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resource attribution" in out
        validate_chrome_trace(json.load(open(trace_path)))

    def test_trace_command_writes_trace(self, tmp_path):
        trace_path = tmp_path / "only.json"
        code = obs_main(
            ["trace", "--duration", "0.5", "--out", str(trace_path)]
        )
        assert code == 0
        validate_chrome_trace(json.load(open(trace_path)))


class TestBenchPhases:
    def test_run_benchmark_embeds_phase_samples(self):
        from repro.bench.figures import simulate_lan_throughput
        from repro.bench.harness import Benchmark, run_benchmark

        def run(ctx):
            sim = simulate_lan_throughput(
                duration=0.4,
                warmup=0.2,
                receivers=1,
                seed=ctx.seed,
                observability=ctx.obs,
            )
            return {"delivered_tx_per_sec": sim.delivered_rate}

        bench = Benchmark(name="phase-probe", run=run, repeats=2)
        result = run_benchmark(bench, phases=True)
        (point,) = result.points
        assert point.phases is not None
        assert "end_to_end" in point.phases
        assert "signing" in point.phases
        assert all(len(samples) == 2 for samples in point.phases.values())
        doc = point.to_json_dict()
        assert set(doc["phases"]) == set(point.phases)

    def test_phases_off_by_default_keeps_json_clean(self):
        from repro.bench.harness import Benchmark, run_benchmark

        bench = Benchmark(name="plain", run=lambda ctx: {"m": 1.0})
        result = run_benchmark(bench)
        (point,) = result.points
        assert point.phases is None
        assert "phases" not in point.to_json_dict()
