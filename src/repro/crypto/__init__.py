"""Cryptographic substrate.

Two interchangeable signature schemes share one interface:

- :class:`repro.crypto.ecdsa.ECDSAP256Scheme` -- a from-scratch,
  pure-Python implementation of ECDSA over NIST P-256 with RFC 6979
  deterministic nonces.  Used by unit tests and available to examples
  that want real cryptography (HLF 1.0 signs block headers with ECDSA).
- :class:`repro.crypto.signatures.SimulatedECDSA` -- a keyed-hash
  stand-in with identical semantics (unforgeable without the private
  key, tamper-evident) plus a *modeled CPU cost* per operation, so the
  simulator charges signing time to the ordering node's cores exactly
  as the real scheme would (this is what Figure 6 measures).

Hashing (:mod:`repro.crypto.hashing`) is always real SHA-256 over a
canonical encoding, so hash chains in the ledger are genuinely
tamper-evident even in simulation.
"""

from repro.crypto.ecdsa import ECDSAP256Scheme, EllipticCurvePoint, P256
from repro.crypto.hashing import canonical_encode, sha256
from repro.crypto.keys import Identity, KeyRegistry
from repro.crypto.mac import MacAuthenticator
from repro.crypto.signatures import (
    SignatureScheme,
    Signer,
    SimulatedECDSA,
    Verifier,
)

__all__ = [
    "ECDSAP256Scheme",
    "EllipticCurvePoint",
    "Identity",
    "KeyRegistry",
    "MacAuthenticator",
    "P256",
    "SignatureScheme",
    "Signer",
    "SimulatedECDSA",
    "Verifier",
    "canonical_encode",
    "sha256",
]
