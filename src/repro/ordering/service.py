"""Deployment builder: assemble a complete BFT ordering service.

Wires together everything from Figure 4: a cluster of ``3f+1+delta``
ordering nodes (BFT-SMaRt replica + :class:`BFTOrderingNode` app +
per-machine CPU with a signing thread pool) and a set of frontends,
over a simulated LAN or WAN.  Used by integration tests, the examples
and the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import SimulatedECDSA
from repro.fabric.channel import ChannelConfig
from repro.fabric.envelope import Envelope
from repro.ordering.admission import AdmissionConfig, AdmissionController
from repro.ordering.frontend import Frontend
from repro.ordering.node import BFTOrderingNode, TimeToCut
from repro.ordering.wal_codec import decode_value, encode_value
from repro.sim.core import Simulator
from repro.sim.cpu import CPU
from repro.sim.monitor import StatsRegistry
from repro.sim.network import ConstantLatency, LatencyModel, Network
from repro.sim.randomness import RandomStreams
from repro.sim.storage import DEFAULT_FSYNC_LATENCY, SECTOR_SIZE, SimDisk
from repro.smart.messages import ClientRequest
from repro.smart.proxy import ServiceProxy
from repro.smart.replica import ReplicaConfig, ServiceReplica, default_replier
from repro.smart.view import View, bft_group_size, binary_weights
from repro.smart.wal import ConsensusWAL

#: network-id base for frontends (BFT-SMaRt client ids)
FRONTEND_ID_BASE = 1000
#: network-id base for the nodes' internal TTC proxies
TTC_ID_BASE = 2000
#: network-id base for admin (reconfiguration) clients
ADMIN_ID_BASE = 3000


@dataclass
class OrderingServiceConfig:
    """Everything needed to stand up one deployment."""

    #: which BFT ordering backend to build: "bftsmart" (the paper's
    #: service) or "smartbft" (the successor design, repro.smart2)
    orderer: str = "bftsmart"
    f: int = 1
    delta: int = 0
    vmax_holders: Optional[Sequence[int]] = None
    tentative_execution: bool = False
    channel: ChannelConfig = field(
        default_factory=lambda: ChannelConfig(channel_id="channel0")
    )
    #: additional channels beyond ``channel`` (the ordering service
    #: "gathers envelopes from all channels in the network", §3)
    extra_channels: Sequence[ChannelConfig] = ()
    num_frontends: int = 1
    #: site name per node (len == n); None = all "lan"
    node_sites: Optional[Sequence[str]] = None
    #: site name per frontend; None = all "lan"
    frontend_sites: Optional[Sequence[str]] = None
    latency: Optional[LatencyModel] = None
    bandwidth_bps: float = 1e9
    #: per-node CPU model; None disables CPU cost accounting entirely
    physical_cores: Optional[int] = 8
    hardware_threads: int = 16
    signing_workers: int = 16
    sign_cost: Optional[float] = None
    #: fraction of each node's CPU consumed by BFT-SMaRt itself (§6.2)
    smart_cpu_fraction: float = 0.0
    max_batch: int = 400
    request_timeout: float = 2.0
    checkpoint_period: int = 1000
    enable_batch_timeout: bool = False
    verify_block_signatures: bool = False
    double_sign: bool = False
    #: opt-in admission control / backpressure: each frontend gets its
    #: own :class:`~repro.ordering.admission.AdmissionController` built
    #: from this config (None keeps the paper's relay-everything
    #: frontend; see docs/WORKLOADS.md)
    admission: Optional["AdmissionConfig"] = None
    #: give every replica a consensus WAL on simulated stable storage,
    #: enabling crash-recovery with amnesia (see docs/RECOVERY.md)
    durable_wal: bool = False
    fsync_latency: float = DEFAULT_FSYNC_LATENCY
    sector_size: int = SECTOR_SIZE
    seed: int = 0

    @property
    def n(self) -> int:
        return bft_group_size(self.f, self.delta)


def make_ordering_wal(config: OrderingServiceConfig) -> ConsensusWAL:
    """A per-replica consensus WAL wired to the ordering-layer codec."""
    disk = SimDisk(
        fsync_latency=config.fsync_latency, sector_size=config.sector_size
    )
    return ConsensusWAL(
        disk,
        encode_op=encode_value,
        decode_op=decode_value,
        encode_state=encode_value,
        decode_state=decode_value,
    )


def ordering_replier(replica, request: ClientRequest, result, regency, tentative):
    """The custom replier of §5.1: execution results for envelopes are
    *not* sent back to the invoking client (blocks flow to frontends
    instead); only control operations (reconfigurations, unknown ops)
    get normal replies."""
    if isinstance(request.operation, (Envelope, TimeToCut)):
        return
    default_replier(replica, request, result, regency, tentative)


@dataclass
class OrderingService:
    """A fully wired deployment."""

    sim: Simulator
    network: Network
    config: OrderingServiceConfig
    registry: KeyRegistry
    view: View
    replicas: List[ServiceReplica]
    nodes: List[BFTOrderingNode]
    frontends: List[Frontend]
    stats: StatsRegistry
    cpus: List[Optional[CPU]]
    #: optional repro.obs.Observability hub wired through every component
    observability: Optional[Any] = None

    @property
    def leader_node(self) -> BFTOrderingNode:
        """Ordering node 0 -- where the paper measures throughput."""
        return self.nodes[0]

    def submit(self, envelope: Envelope, frontend_index: int = 0) -> None:
        self.frontends[frontend_index].submit(envelope)

    def admin_proxy(self, admin_index: int = 0, site: Optional[str] = None) -> ServiceProxy:
        """A proxy for administrative (reconfiguration) commands."""
        proxy = ServiceProxy(
            self.sim,
            self.network,
            ADMIN_ID_BASE + admin_index,
            self.view,
            invoke_timeout=self.config.request_timeout * 2,
            register=False,
        )
        admin_site = site or (self.config.node_sites or ["lan"])[0]
        self.network.register(ADMIN_ID_BASE + admin_index, proxy, site=admin_site)
        return proxy

    def crash_node(self, index: int, amnesia: bool = False) -> None:
        self.replicas[index].crash(amnesia=amnesia)

    def recover_node(self, index: int) -> None:
        self.replicas[index].recover()

    # ------------------------------------------------------------------
    # invariant probes (repro.faults)
    # ------------------------------------------------------------------
    def ledger_digests(self) -> Dict[int, bytes]:
        """Per-frontend chain digest over the blocks each delivered."""
        return {
            frontend.name: frontend.ledger_digest() for frontend in self.frontends
        }

    def replica_log_digests(self) -> Dict[int, Dict[int, bytes]]:
        """Per-replica map of decided cid -> batch hash (durability log)."""
        from repro.smart.consensus import batch_hash

        return {
            replica.replica_id: {
                cid: batch_hash(cid, batch) for cid, batch in replica.log.entries
            }
            for replica in self.replicas
        }

    def total_submitted(self) -> int:
        return sum(frontend.envelopes_submitted for frontend in self.frontends)

    def total_delivered(self) -> int:
        """Envelopes delivered through frontend 0's meter (all frontends
        deliver the same blocks, so one meter suffices for liveness)."""
        return int(self.stats.meter(f"{FRONTEND_ID_BASE}.envelopes").total)

    def run(self, duration: float) -> None:
        self.sim.run(until=self.sim.now + duration)

    # ------------------------------------------------------------------
    # runtime reconfiguration (paper §5.2)
    # ------------------------------------------------------------------
    def add_node(self, site: str = "lan"):
        """Add a new ordering node to the running cluster.

        Builds the machine (CPU, identity, app, replica), wires it to
        the network and frontends, orders the membership change through
        consensus, and -- once decided -- brings the node up to date by
        state transfer and points every frontend proxy at the new view.

        Returns ``(future, node)``; drive the simulator until the
        future resolves (e.g. ``service.sim.drain([future], ...)``).
        """
        from repro.smart.reconfiguration import ReconfigurationClient

        index = len(self.replicas)
        cpu: Optional[CPU] = None
        if self.config.physical_cores is not None:
            cpu = CPU(
                self.sim,
                physical_cores=self.config.physical_cores,
                hardware_threads=self.config.hardware_threads,
            )
            if self.config.smart_cpu_fraction > 0:
                cpu.set_background_load(self.config.smart_cpu_fraction)
        self.cpus.append(cpu)
        identity = self.registry.enroll(f"orderer{index}", org=f"ordererorg{index}")
        channels = {
            self.config.channel.channel_id: self.config.channel,
            **{c.channel_id: c for c in self.config.extra_channels},
        }
        node = BFTOrderingNode(
            sim=self.sim,
            network=self.network,
            name=identity.name,
            identity=identity,
            channels=channels,
            cpu=cpu,
            signing_workers=self.config.signing_workers,
            sign_cost=self.config.sign_cost,
            stats=self.stats,
            double_sign=self.config.double_sign,
            net_id=index,
        )
        current_view = self.replicas[0].view
        replica = ServiceReplica(
            sim=self.sim,
            network=self.network,
            replica_id=index,
            view=current_view,
            app=node,
            config=self.replicas[0].config,
            log=make_ordering_wal(self.config) if self.config.durable_wal else None,
            replier=ordering_replier,
        )
        self.network.register(index, replica, site=site)
        for frontend in self.frontends:
            node.register_frontend(frontend.name)
        self.nodes.append(node)
        self.replicas.append(replica)

        admin = self.admin_proxy(admin_index=index, site=site)
        future = ReconfigurationClient(admin).add_replica(index)

        def _activate(fut):
            try:
                fut.value
            except Exception:
                return
            new_view = self.replicas[0].view
            replica.view = new_view
            replica.state_transfer.start()
            for frontend in self.frontends:
                frontend.proxy.update_view(new_view)
                frontend.f = new_view.f

        future.add_callback(_activate)
        return future, node


def build_ordering_service(
    config: Optional[OrderingServiceConfig] = None,
    sim: Optional[Simulator] = None,
    observability: Optional[Any] = None,
) -> OrderingService:
    """Stand up a complete ordering service on a fresh simulator.

    ``observability`` optionally receives a
    :class:`repro.obs.Observability` hub; it is attached to every
    component (network, replicas, nodes, frontends, proxies) so the
    deployment emits metrics and consensus spans as it runs.
    """
    config = config or OrderingServiceConfig()
    if config.orderer == "smartbft":
        from repro.smart2.deployment import build_smartbft_service

        return build_smartbft_service(config, sim=sim, observability=observability)
    if config.orderer != "bftsmart":
        raise ValueError(
            f"unknown orderer {config.orderer!r}; expected 'bftsmart' or 'smartbft'"
        )
    sim = sim or Simulator()
    streams = RandomStreams(config.seed)
    latency = config.latency or ConstantLatency(0.0001)
    network = Network(
        sim, latency, default_bandwidth_bps=config.bandwidth_bps, streams=streams
    )
    stats = StatsRegistry()
    scheme = SimulatedECDSA()
    if config.sign_cost is not None:
        scheme.sign_cost = config.sign_cost
    registry = KeyRegistry(scheme=scheme, rng=streams.stream("keys"))

    n = config.n
    processes = tuple(range(n))
    weights = binary_weights(processes, config.f, config.delta, config.vmax_holders)
    view = View(
        view_id=0, processes=processes, f=config.f, delta=config.delta, weights=weights
    )
    node_sites = list(config.node_sites or ["lan"] * n)
    frontend_sites = list(config.frontend_sites or ["lan"] * config.num_frontends)
    if len(node_sites) != n:
        raise ValueError(f"need {n} node sites, got {len(node_sites)}")
    if len(frontend_sites) != config.num_frontends:
        raise ValueError(
            f"need {config.num_frontends} frontend sites, got {len(frontend_sites)}"
        )

    replica_config = ReplicaConfig(
        max_batch=config.max_batch,
        request_timeout=config.request_timeout,
        checkpoint_period=config.checkpoint_period,
        tentative_execution=config.tentative_execution,
    )

    # ordering nodes: CPU + identity + app + replica, one per machine
    nodes: List[BFTOrderingNode] = []
    replicas: List[ServiceReplica] = []
    cpus: List[Optional[CPU]] = []
    channels = {config.channel.channel_id: config.channel}
    for extra in config.extra_channels:
        if extra.channel_id in channels:
            raise ValueError(f"duplicate channel id {extra.channel_id!r}")
        channels[extra.channel_id] = extra
    for i in range(n):
        cpu: Optional[CPU] = None
        if config.physical_cores is not None:
            cpu = CPU(
                sim,
                physical_cores=config.physical_cores,
                hardware_threads=config.hardware_threads,
            )
            if config.smart_cpu_fraction > 0:
                cpu.set_background_load(config.smart_cpu_fraction)
        cpus.append(cpu)
        identity = registry.enroll(f"orderer{i}", org=f"ordererorg{i}")
        node = BFTOrderingNode(
            sim=sim,
            network=network,
            name=identity.name,
            identity=identity,
            channels=channels,
            cpu=cpu,
            signing_workers=config.signing_workers,
            sign_cost=config.sign_cost,
            stats=stats,
            double_sign=config.double_sign,
            net_id=i,
        )
        replica = ServiceReplica(
            sim=sim,
            network=network,
            replica_id=i,
            view=view,
            app=node,
            config=replica_config,
            log=make_ordering_wal(config) if config.durable_wal else None,
            replier=ordering_replier,
        )
        network.register(i, replica, site=node_sites[i])
        nodes.append(node)
        replicas.append(replica)

    # deterministic batch timeouts: each node submits TTCs through a
    # lightweight internal proxy (only when enabled)
    if config.enable_batch_timeout:
        for i, node in enumerate(nodes):
            ttc_proxy = ServiceProxy(
                sim, network, TTC_ID_BASE + i, view, register=False
            )
            # the TTC proxy lives on the node's machine
            network.register(TTC_ID_BASE + i, ttc_proxy, site=node_sites[i])
            node.ttc_submitter = (
                lambda ttc, proxy=ttc_proxy: proxy.invoke_async(ttc, size_bytes=24)
            )

    # frontends
    frontends: List[Frontend] = []
    orderer_names = {node.name for node in nodes}
    for j in range(config.num_frontends):
        client_id = FRONTEND_ID_BASE + j
        proxy = ServiceProxy(
            sim,
            network,
            client_id,
            view,
            accept_tentative=config.tentative_execution,
            register=False,
            # retry backoff jitter comes from the deployment's seeded
            # streams -- never ambient randomness (DET002)
            rng=streams.stream(f"proxy-backoff/{client_id}"),
        )
        frontend = Frontend(
            sim=sim,
            network=network,
            name=client_id,
            proxy=proxy,
            f=config.f,
            registry=registry,
            orderer_names=orderer_names,
            verify_signatures=config.verify_block_signatures,
            stats=stats,
            max_envelope_bytes={
                channel_id: cfg.absolute_max_bytes
                for channel_id, cfg in channels.items()
            },
            admission=(
                AdmissionController(config.admission)
                if config.admission is not None
                else None
            ),
        )
        network.register(client_id, frontend, site=frontend_sites[j])
        for node in nodes:
            node.register_frontend(client_id)
        frontends.append(frontend)

    service = OrderingService(
        sim=sim,
        network=network,
        config=config,
        registry=registry,
        view=view,
        replicas=replicas,
        nodes=nodes,
        frontends=frontends,
        stats=stats,
        cpus=cpus,
        observability=observability,
    )
    if observability is not None:
        observability.attach(service)
    return service
