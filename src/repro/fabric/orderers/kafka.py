"""The Kafka-based crash-fault-tolerant ordering service (paper §3).

HLF 1.0's production orderer: orderer nodes are stateless consumers of
a single Kafka partition; Kafka brokers replicate the partition with a
primary/ISR scheme coordinated by ZooKeeper.  We implement the same
structure:

- :class:`KafkaBroker` -- holds a copy of the partition log; the
  leader assigns offsets and replicates to followers, committing an
  offset once a majority of brokers acknowledged it;
- :class:`KafkaCluster` -- the ZooKeeper/controller stand-in: detects
  a crashed leader and promotes the most up-to-date surviving broker;
- :class:`KafkaOrderer` -- a Fabric orderer node: produces envelopes
  to the leader broker, consumes the committed stream, cuts blocks
  (same :class:`~repro.ordering.blockcutter.BlockCutter` as the BFT
  service), signs and delivers them.

This service tolerates *crash* faults only -- a Byzantine leader
broker can fork the log and make orderers cut conflicting blocks, a
behaviour exercised in the test suite to motivate the paper's BFT
service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

from repro.crypto.keys import Identity
from repro.fabric.api import BlockDelivery, SubmitEnvelope
from repro.fabric.block import GENESIS_PREVIOUS_HASH, Block, BlockHeader, compute_data_hash
from repro.fabric.channel import ChannelConfig
from repro.fabric.envelope import Envelope
from repro.ordering.blockcutter import BlockCutter
from repro.ordering.node import TimeToCut
from repro.sim.core import Simulator
from repro.sim.cpu import CPU, ThreadPool
from repro.sim.monitor import StatsRegistry
from repro.sim.network import Network

KAFKA_RECORD_OVERHEAD = 61


@dataclass
class Produce:
    """Producer -> leader broker."""

    record: Any
    size: int

    def wire_size(self) -> int:
        return KAFKA_RECORD_OVERHEAD + self.size


@dataclass
class Replicate:
    """Leader broker -> follower."""

    offset: int
    record: Any
    size: int

    def wire_size(self) -> int:
        return KAFKA_RECORD_OVERHEAD + self.size


@dataclass
class ReplicaAck:
    """Follower -> leader."""

    offset: int
    follower: str

    def wire_size(self) -> int:
        return KAFKA_RECORD_OVERHEAD


@dataclass
class Consume:
    """Leader broker -> consumer (push-based delivery)."""

    offset: int
    record: Any
    size: int

    def wire_size(self) -> int:
        return KAFKA_RECORD_OVERHEAD + self.size


class KafkaBroker:
    """One broker holding a copy of the ordering partition."""

    def __init__(self, cluster: "KafkaCluster", name: str):
        self.cluster = cluster
        self.name = name
        self.log: List[Any] = []
        self.sizes: List[int] = []
        self.is_leader = False
        self.crashed = False
        self.committed = -1  # highest committed offset
        self._acks: Dict[int, Set[str]] = {}

    @property
    def network(self) -> Network:
        return self.cluster.network

    def crash(self) -> None:
        self.crashed = True
        self.network.crash(self.name)
        self.cluster.on_broker_crash(self.name)

    # ------------------------------------------------------------------
    def deliver(self, src, message) -> None:
        if self.crashed:
            return
        if isinstance(message, Produce):
            self._on_produce(message)
        elif isinstance(message, Replicate):
            self._on_replicate(src, message)
        elif isinstance(message, ReplicaAck):
            self._on_ack(message)

    def _on_produce(self, message: Produce) -> None:
        if not self.is_leader:
            return  # stale producer; it will retry against the new leader
        offset = len(self.log)
        # Kafka is the paper's CFT baseline: brokers trust the ordering
        # channel by design, so records land unsigned and unverified.
        self.log.append(message.record)  # repro: allow[FLOW001] CFT by design
        self.sizes.append(message.size)
        self._acks[offset] = {self.name}
        for follower in self.cluster.follower_names(self.name):
            replicate = Replicate(offset, message.record, message.size)
            self.network.send(self.name, follower, replicate, replicate.wire_size())
        self._maybe_commit(offset)

    def _on_replicate(self, src: str, message: Replicate) -> None:
        if message.offset == len(self.log):
            # CFT replication: a follower trusts its leader's channel
            self.log.append(message.record)  # repro: allow[FLOW001] CFT by design
            self.sizes.append(message.size)
        elif message.offset < len(self.log):
            pass  # duplicate
        else:
            return  # out of order: wait for retransmission (leader resends in order)
        ack = ReplicaAck(message.offset, self.name)
        self.network.send(self.name, src, ack, ack.wire_size())

    def _on_ack(self, message: ReplicaAck) -> None:
        if not self.is_leader:
            return
        acks = self._acks.setdefault(message.offset, set())
        acks.add(message.follower)
        self._maybe_commit(message.offset)

    def _maybe_commit(self, offset: int) -> None:
        majority = self.cluster.majority
        while self.committed + 1 < len(self.log):
            next_offset = self.committed + 1
            if len(self._acks.get(next_offset, ())) < majority:
                break
            self.committed = next_offset
            record = self.log[next_offset]
            size = self.sizes[next_offset]
            for consumer in self.cluster.consumer_names():
                consume = Consume(next_offset, record, size)
                self.network.send(self.name, consumer, consume, consume.wire_size())


class KafkaCluster:
    """The broker ensemble + its ZooKeeper-like controller."""

    def __init__(self, sim: Simulator, network: Network, num_brokers: int = 3):
        if num_brokers < 1:
            raise ValueError("need at least one broker")
        self.sim = sim
        self.network = network
        self.brokers: Dict[str, KafkaBroker] = {}
        for i in range(num_brokers):
            name = f"kafka{i}"
            broker = KafkaBroker(self, name)
            self.brokers[name] = broker
            network.register(name, broker)
        self.leader_name = "kafka0"
        self.brokers[self.leader_name].is_leader = True
        self._consumers: List[str] = []
        self.leader_elections = 0

    @property
    def majority(self) -> int:
        alive = sum(1 for b in self.brokers.values() if not b.crashed)
        return alive // 2 + 1

    @property
    def leader(self) -> KafkaBroker:
        return self.brokers[self.leader_name]

    def follower_names(self, leader: str) -> List[str]:
        return [
            name
            for name, broker in sorted(self.brokers.items())
            if name != leader and not broker.crashed
        ]

    def consumer_names(self) -> List[str]:
        return list(self._consumers)

    def subscribe(self, consumer_name: str) -> None:
        if consumer_name not in self._consumers:
            self._consumers.append(consumer_name)

    def on_broker_crash(self, name: str) -> None:
        """Controller logic: elect the most up-to-date surviving broker."""
        if name != self.leader_name:
            return
        # sorted by name so the max() tie-break (first occurrence wins)
        # elects the lowest-named of the equally caught-up brokers
        candidates = [
            b for _, b in sorted(self.brokers.items()) if not b.crashed
        ]
        if not candidates:
            return
        new_leader = max(candidates, key=lambda b: len(b.log))
        self.leader_elections += 1
        self.leader_name = new_leader.name
        new_leader.is_leader = True
        new_leader.committed = min(new_leader.committed, len(new_leader.log) - 1)
        # re-drive commits for anything replicated but not yet committed
        for offset in range(new_leader.committed + 1, len(new_leader.log)):
            new_leader._acks.setdefault(offset, {new_leader.name})
            for follower in self.follower_names(new_leader.name):
                follower_broker = self.brokers[follower]
                if offset < len(follower_broker.log):
                    new_leader._acks[offset].add(follower)
            new_leader._maybe_commit(offset)


class KafkaOrderer:
    """A Fabric orderer node consuming the Kafka partition."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        identity: Identity,
        cluster: KafkaCluster,
        channel: ChannelConfig,
        cpu: Optional[CPU] = None,
        signing_workers: int = 16,
        stats: Optional[StatsRegistry] = None,
    ):
        self.sim = sim
        self.network = network
        self.name = name
        self.identity = identity
        self.cluster = cluster
        self.channel = channel
        self.cutter = BlockCutter(channel)
        self.signing_pool = ThreadPool(cpu, signing_workers) if cpu else None
        self.stats = stats or StatsRegistry()
        self.receivers: List[object] = []
        self.next_number = 0
        self.previous_hash = GENESIS_PREVIOUS_HASH
        self.next_offset = 0
        self._buffered: Dict[int, Any] = {}
        self.blocks_created = 0
        self._ttc_pending = False
        network.register(name, self)
        cluster.subscribe(name)

    def attach_receiver(self, receiver_id: object) -> None:
        if receiver_id not in self.receivers:
            self.receivers.append(receiver_id)

    # ------------------------------------------------------------------
    def deliver(self, src, message) -> None:
        if isinstance(message, SubmitEnvelope):
            self.submit(message.envelope)
        elif isinstance(message, Consume):
            self._on_consume(message)

    def submit(self, envelope: Envelope) -> None:
        """Produce an envelope into the Kafka partition."""
        if envelope.create_time is None:
            envelope.create_time = self.sim.now
        produce = Produce(envelope, envelope.payload_size)
        self.network.send(
            self.name, self.cluster.leader_name, produce, produce.wire_size()
        )

    # ------------------------------------------------------------------
    def _on_consume(self, message: Consume) -> None:
        self._buffered[message.offset] = message.record
        while self.next_offset in self._buffered:
            record = self._buffered.pop(self.next_offset)
            self.next_offset += 1
            self._process(record)

    def _process(self, record: Any) -> None:
        if isinstance(record, TimeToCut):
            self._ttc_pending = False
            if record.target_height == self.next_number and len(self.cutter) > 0:
                self._create_block(self.cutter.cut())
            elif len(self.cutter) > 0:
                # stale TTC (a block was cut after it was produced); the
                # still-pending partial batch needs a fresh timer
                self._ttc_pending = True
                self.sim.schedule(
                    self.channel.batch_timeout, self._submit_ttc, self.next_number
                )
            return
        batches = self.cutter.ordered(record)
        for batch in batches:
            self._create_block(batch)
        if not batches and len(self.cutter) > 0 and not self._ttc_pending:
            self._ttc_pending = True
            self.sim.schedule(
                self.channel.batch_timeout, self._submit_ttc, self.next_number
            )

    def _submit_ttc(self, target: int) -> None:
        if not self._ttc_pending:
            return
        if self.next_number != target:
            # blocks were cut since this timer was armed; if a partial
            # batch remains, restart the countdown at the current height
            # (returning here with _ttc_pending still set used to wedge
            # the tail of the stream forever)
            if len(self.cutter) > 0:
                self.sim.schedule(
                    self.channel.batch_timeout, self._submit_ttc, self.next_number
                )
            else:
                self._ttc_pending = False
            return
        ttc = TimeToCut(self.channel.channel_id, target)
        produce = Produce(ttc, 24)
        self.network.send(
            self.name, self.cluster.leader_name, produce, produce.wire_size()
        )

    def _create_block(self, batch: List[Envelope]) -> None:
        if not batch:
            return
        header = BlockHeader(
            number=self.next_number,
            previous_hash=self.previous_hash,
            data_hash=compute_data_hash(batch),
        )
        self.next_number += 1
        self.previous_hash = header.digest()
        block = Block(
            header=header, envelopes=batch, channel_id=self.channel.channel_id
        )
        self.blocks_created += 1
        if self.signing_pool is not None:
            self.signing_pool.submit(
                self.identity.signer.sign_cost, self._sign_and_send, block
            )
        else:
            self._sign_and_send(block)

    def _sign_and_send(self, block: Block) -> None:
        block.signatures[self.name] = self.identity.sign(
            block.header.signing_payload()
        )
        delivery = BlockDelivery(block=block, source=self.name)
        self.network.broadcast(
            self.name, self.receivers, delivery, delivery.wire_size()
        )
        now = self.sim.now
        self.stats.meter(f"{self.name}.envelopes").record(
            now, float(len(block.envelopes))
        )
        latency = self.stats.latency(f"{self.name}.latency")
        for envelope in block.envelopes:
            if isinstance(envelope, Envelope) and envelope.create_time is not None:
                latency.record(now - envelope.create_time)
