"""Message types of the BFT-SMaRt replication protocol.

Sizes: every message reports a ``wire_size()`` used by the network
model.  The constants approximate BFT-SMaRt's Java serialization plus
the per-link MAC (paper section 4 / [4]).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

#: Serialized message header: type, sender, consensus id, regency, MAC.
MESSAGE_HEADER_BYTES = 84

#: Per-request overhead inside a batch: client id, sequence, length,
#: client signature.
REQUEST_OVERHEAD_BYTES = 100

HASH_BYTES = 32

RequestId = Tuple[int, int]  # (client_id, client_sequence)

_request_uid = itertools.count()


@dataclass
class ClientRequest:
    """An operation submitted by a client for total ordering.

    ``operation`` is opaque to the replication layer (for the ordering
    service it is a Fabric envelope).  ``size_bytes`` is the payload
    size used for network accounting.  ``reconfig`` marks view-change
    commands handled by the replication layer itself.
    """

    client_id: int
    sequence: int
    operation: Any
    size_bytes: int = 0
    reconfig: bool = False
    submit_time: float = 0.0
    uid: int = field(default_factory=lambda: next(_request_uid))

    @property
    def request_id(self) -> RequestId:
        return (self.client_id, self.sequence)

    def wire_size(self) -> int:
        return MESSAGE_HEADER_BYTES + REQUEST_OVERHEAD_BYTES + self.size_bytes


@dataclass
class Propose:
    """Leader's proposal of a batch for consensus instance ``cid``."""

    sender: int
    cid: int
    regency: int
    batch: List[ClientRequest]
    value_hash: bytes

    def wire_size(self) -> int:
        payload = sum(REQUEST_OVERHEAD_BYTES + r.size_bytes for r in self.batch)
        return MESSAGE_HEADER_BYTES + HASH_BYTES + payload


@dataclass
class Write:
    """Second phase: echo of the proposed value's hash."""

    sender: int
    cid: int
    regency: int
    value_hash: bytes

    def wire_size(self) -> int:
        return MESSAGE_HEADER_BYTES + HASH_BYTES


@dataclass
class Accept:
    """Third phase: commit vote for the value's hash."""

    sender: int
    cid: int
    regency: int
    value_hash: bytes

    def wire_size(self) -> int:
        return MESSAGE_HEADER_BYTES + HASH_BYTES


@dataclass
class Reply:
    """Reply to a client (suppressed when a custom replier is set)."""

    sender: int
    client_id: int
    sequence: int
    result: Any
    regency: int
    tentative: bool = False
    result_size: int = 0

    def wire_size(self) -> int:
        return MESSAGE_HEADER_BYTES + self.result_size


@dataclass
class ForwardedRequest:
    """A request a replica forwards to the leader after a first timeout."""

    sender: int
    request: ClientRequest

    def wire_size(self) -> int:
        return MESSAGE_HEADER_BYTES + self.request.wire_size()


@dataclass
class Stop:
    """Vote to abandon the current regency (synchronization phase)."""

    sender: int
    next_regency: int

    def wire_size(self) -> int:
        return MESSAGE_HEADER_BYTES


@dataclass
class WriteCertificate:
    """Proof that a write quorum existed for (cid, regency, hash)."""

    cid: int
    regency: int
    value_hash: bytes
    writers: Tuple[int, ...]
    batch: Optional[List[ClientRequest]] = None

    def wire_size(self) -> int:
        payload = 0
        if self.batch is not None:
            payload = sum(REQUEST_OVERHEAD_BYTES + r.size_bytes for r in self.batch)
        return HASH_BYTES + 8 * len(self.writers) + payload


@dataclass
class StopData:
    """A replica's state report sent to the new regency's leader."""

    sender: int
    regency: int
    last_executed_cid: int
    write_certificate: Optional[WriteCertificate]
    pending: List[ClientRequest] = field(default_factory=list)

    def wire_size(self) -> int:
        size = MESSAGE_HEADER_BYTES + 16
        if self.write_certificate is not None:
            size += self.write_certificate.wire_size()
        size += sum(r.wire_size() for r in self.pending)
        return size


@dataclass
class Sync:
    """New leader's installation message: the safe value to adopt."""

    sender: int
    regency: int
    cid: int
    batch: List[ClientRequest]
    value_hash: bytes
    proofs: List[StopData]

    def wire_size(self) -> int:
        payload = sum(REQUEST_OVERHEAD_BYTES + r.size_bytes for r in self.batch)
        proofs = sum(p.wire_size() for p in self.proofs)
        return MESSAGE_HEADER_BYTES + HASH_BYTES + payload + proofs


@dataclass
class ValueRequest:
    """Ask peers for the batch behind a hash we voted on but never saw."""

    sender: int
    cid: int
    value_hash: bytes

    def wire_size(self) -> int:
        return MESSAGE_HEADER_BYTES + HASH_BYTES


@dataclass
class ValueResponse:
    sender: int
    cid: int
    value_hash: bytes
    batch: List[ClientRequest]

    def wire_size(self) -> int:
        payload = sum(REQUEST_OVERHEAD_BYTES + r.size_bytes for r in self.batch)
        return MESSAGE_HEADER_BYTES + HASH_BYTES + payload


@dataclass
class StateRequest:
    """State-transfer request from a recovering or joining replica."""

    sender: int
    from_cid: int

    def wire_size(self) -> int:
        return MESSAGE_HEADER_BYTES + 8


@dataclass
class StateReply:
    """Checkpoint + log suffix from an up-to-date replica."""

    sender: int
    checkpoint_cid: int
    state: Any
    state_hash: bytes
    log: List[Tuple[int, List[ClientRequest]]]
    last_cid: int
    view_snapshot: Any = None
    state_size: int = 1024

    def wire_size(self) -> int:
        log_bytes = sum(
            sum(REQUEST_OVERHEAD_BYTES + r.size_bytes for r in batch)
            for _cid, batch in self.log
        )
        return MESSAGE_HEADER_BYTES + HASH_BYTES + self.state_size + log_bytes
