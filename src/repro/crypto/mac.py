"""Pairwise HMAC authentication for replica-to-replica channels.

BFT-SMaRt authenticates its replica links with MAC vectors rather than
signatures (cheaper by orders of magnitude).  This module provides the
same primitive: every ordered pair of nodes shares a symmetric key
derived from a deployment secret, and messages carry an HMAC-SHA256
tag over their canonical encoding.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict, Hashable, Tuple

from repro.crypto.hashing import canonical_encode

#: Modeled core-seconds per MAC (HMAC-SHA256 of a small message); three
#: orders of magnitude cheaper than an ECDSA signature.
MAC_COST = 1.5e-6

MAC_SIZE = 32


class MacAuthenticator:
    """Creates and checks per-link MACs for one node.

    All authenticators of one deployment must be built from the same
    ``deployment_secret`` -- this mimics the pairwise session keys
    BFT-SMaRt establishes at connection time.
    """

    def __init__(self, node_id: Hashable, deployment_secret: bytes = b"repro"):
        self.node_id = node_id
        self._secret = deployment_secret
        self._keys: Dict[Tuple[Hashable, Hashable], bytes] = {}

    def _key(self, a: Hashable, b: Hashable) -> bytes:
        """Symmetric key for the unordered pair {a, b}."""
        pair = (a, b) if repr(a) <= repr(b) else (b, a)
        key = self._keys.get(pair)
        if key is None:
            material = self._secret + canonical_encode([repr(pair[0]), repr(pair[1])])
            key = hashlib.sha256(material).digest()
            self._keys[pair] = key
        return key

    def tag(self, dst: Hashable, message_bytes: bytes) -> bytes:
        """MAC for a message this node sends to ``dst``."""
        return hmac.new(self._key(self.node_id, dst), message_bytes, hashlib.sha256).digest()

    def check(self, src: Hashable, message_bytes: bytes, tag: bytes) -> bool:
        """Validate the MAC on a message received from ``src``."""
        expected = hmac.new(
            self._key(src, self.node_id), message_bytes, hashlib.sha256
        ).digest()
        return hmac.compare_digest(expected, tag)
