"""Benchmark harness: one entry point per table/figure of the paper.

- :mod:`repro.bench.model` -- the analytic capacity model (Equation 1
  generalized to every resource bound) with the calibration constants
  for the paper's Dell R410 / Gigabit testbed;
- :mod:`repro.bench.topology` -- LAN and AWS WAN latency models;
- :mod:`repro.bench.workload` -- envelope load generators;
- :mod:`repro.bench.figures` -- the experiments: ``figure6`` through
  ``figure9`` plus the conclusion table and our ablations;
- :mod:`repro.bench.tables` -- ASCII rendering of results;
- :mod:`repro.bench.harness` -- the declarative benchmark registry,
  runner, and versioned JSON result schema (``BENCH_<name>.json``);
- :mod:`repro.bench.suite` -- the registered benchmarks (importing it
  populates the registry);
- :mod:`repro.bench.compare` -- statistical baseline comparison and
  the regression gate behind ``make bench-check``.

See ``docs/BENCHMARKS.md`` for the workflow.
"""

from repro.bench.harness import (
    REGISTRY,
    BenchContext,
    Benchmark,
    BenchmarkRegistry,
    BenchmarkResult,
    SuiteResult,
    load_result,
    render_result,
    render_suite,
    run_benchmark,
    run_suite,
    validate_result,
    write_result,
)
from repro.bench.model import (
    OrderingCapacityModel,
    SignatureThroughputModel,
    eq1_bound,
)
from repro.bench.topology import (
    AWS_REGIONS,
    aws_latency_model,
    aws_oneway_seconds,
    lan_latency_model,
)
from repro.bench.workload import OpenLoopGenerator, envelope_stream

__all__ = [
    "AWS_REGIONS",
    "Benchmark",
    "BenchmarkRegistry",
    "BenchmarkResult",
    "BenchContext",
    "OpenLoopGenerator",
    "OrderingCapacityModel",
    "REGISTRY",
    "SignatureThroughputModel",
    "SuiteResult",
    "aws_latency_model",
    "aws_oneway_seconds",
    "envelope_stream",
    "eq1_bound",
    "lan_latency_model",
    "load_result",
    "render_result",
    "render_suite",
    "run_benchmark",
    "run_suite",
    "validate_result",
    "write_result",
]
