"""Command-line figure regeneration: ``python -m repro.bench``.

Examples::

    python -m repro.bench --figure 6
    python -m repro.bench --figure 7 --orderers 4 --block-size 10
    python -m repro.bench --figure 8 --duration 6
    python -m repro.bench --figure eq1
    python -m repro.bench --figure ablation
    python -m repro.bench --figure all
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.figures import (
    BLOCK_SIZES,
    CLUSTER_SIZES,
    conclusion_comparison,
    figure6,
    figure7_panel,
    figure8,
    figure9,
    wheat_ablation,
)
from repro.bench.model import OrderingCapacityModel, eq1_bound
from repro.bench.tables import (
    render_ablation,
    render_conclusion,
    render_figure6,
    render_figure7_panel,
    render_geo_results,
)


def run_figure6(_args) -> None:
    print(render_figure6(figure6()))


def run_figure7(args) -> None:
    clusters = [args.orderers] if args.orderers else CLUSTER_SIZES
    blocks = [args.block_size] if args.block_size else BLOCK_SIZES
    for n in clusters:
        for bs in blocks:
            print(render_figure7_panel(n, bs, figure7_panel(n, bs)))
            print()


def run_figure8(args) -> None:
    results = figure8(duration=args.duration, rate=args.rate)
    print(render_geo_results("Figure 8: geo latency, blocks of 10 envelopes", results))


def run_figure9(args) -> None:
    results = figure9(duration=args.duration, rate=args.rate)
    print(render_geo_results("Figure 9: geo latency, blocks of 100 envelopes", results))


def run_eq1(_args) -> None:
    print("Equation 1: TP_os <= min(TP_sign*bs, TP_bftsmart)")
    print(f"{'n':>3} {'es':>6} {'bs':>4} {'r':>3} | {'predicted':>10} | {'bound':>10}")
    for n in CLUSTER_SIZES:
        model = OrderingCapacityModel(n=n)
        for es in (40, 1024, 4096):
            for bs in BLOCK_SIZES:
                for r in (1, 32):
                    predicted = model.throughput(es, bs, r)
                    bound = eq1_bound(bs, es, r, n=n)
                    print(
                        f"{n:>3} {es:>6} {bs:>4} {r:>3} | {predicted:>10.0f} | {bound:>10.0f}"
                    )
    print()
    print(render_conclusion(conclusion_comparison()))


def run_ablation(args) -> None:
    print(render_ablation(wheat_ablation(duration=args.duration)))


RUNNERS = {
    "6": run_figure6,
    "7": run_figure7,
    "8": run_figure8,
    "9": run_figure9,
    "eq1": run_eq1,
    "ablation": run_ablation,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "--figure",
        required=True,
        choices=sorted(RUNNERS) + ["all"],
        help="which figure/table to regenerate",
    )
    parser.add_argument("--orderers", type=int, choices=CLUSTER_SIZES, default=None)
    parser.add_argument("--block-size", type=int, choices=BLOCK_SIZES, default=None)
    parser.add_argument("--duration", type=float, default=6.0,
                        help="simulated measurement seconds (figures 8/9)")
    parser.add_argument("--rate", type=float, default=1100.0,
                        help="offered load, tx/s (figures 8/9)")
    args = parser.parse_args(argv)

    targets = sorted(RUNNERS) if args.figure == "all" else [args.figure]
    for target in targets:
        RUNNERS[target](args)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
