"""The fault injector: lifecycle manager and trace recorder.

A :class:`FaultInjector` binds fault actions to a concrete deployment
(a :class:`~repro.sim.network.Network` plus, optionally, the
:class:`~repro.smart.replica.ServiceReplica` objects for replica-level
faults), hands them seeded random streams, and records every start and
stop into a deterministic, reproducible *fault trace*.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

from repro.faults.actions import FaultAction
from repro.sim.network import Network
from repro.sim.randomness import RandomStreams


class FaultInjector:
    """Installs and removes fault actions on one deployment."""

    def __init__(
        self,
        network: Network,
        replicas: Iterable = (),
        seed: int = 0,
    ):
        self.network = network
        self.replicas: Dict[Any, Any] = {r.replica_id: r for r in replicas}
        self.streams = RandomStreams(seed)
        self.trace: List[str] = []
        self._active: List[FaultAction] = []

    @property
    def sim(self):
        return self.network.sim

    def replica(self, replica_id):
        return self.replicas.get(replica_id)

    def rng(self, name: str):
        """A named random stream reserved for fault decisions, derived
        from the injector seed (never perturbs workload randomness)."""
        return self.streams.stream(f"faults/{name}")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, action: FaultAction) -> FaultAction:
        if action in self._active:
            return action
        action.start(self)
        self._active.append(action)
        self.record(f"start {action.describe()}")
        return action

    def stop(self, action: FaultAction) -> None:
        if action not in self._active:
            return
        self._active.remove(action)
        action.stop(self)
        self.record(f"stop {action.describe()}")

    def active(self) -> List[FaultAction]:
        return list(self._active)

    def heal(self) -> None:
        """Stop every active fault and scrub residual network state.

        After ``heal`` the deployment is fault-free: blocked links and
        drop rules removed, crashed replicas recovered, Byzantine
        control switches reset.
        """
        for action in list(self._active):
            self.stop(action)
        self.network.heal()
        for replica in self.replicas.values():
            replica.faults.reset()
            if replica.crashed and replica.replica_id in replica.view.processes:
                replica.recover()
        self.record("heal")

    # ------------------------------------------------------------------
    # trace
    # ------------------------------------------------------------------
    def record(self, line: str) -> None:
        self.trace.append(f"t={self.sim.now:.6f} {line}")

    def trace_text(self) -> str:
        return "\n".join(self.trace)
