"""Network message types of the HLF protocol (client/peer/orderer API).

These are the messages that flow *around* the ordering service:
proposal round-trips between clients and endorsing peers, envelope
submission to an ordering service, block delivery to peers, and commit
events back to clients (paper Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fabric.block import Block
from repro.fabric.envelope import ChaincodeProposal, Envelope, ProposalResponse

#: Fixed protobuf/gRPC-ish framing overhead per HLF message.
FABRIC_MESSAGE_OVERHEAD = 128


@dataclass
class ProposalMessage:
    """Client -> endorsing peer: please simulate and endorse."""

    proposal: ChaincodeProposal
    reply_to: object  # network id of the client

    def wire_size(self) -> int:
        args_size = sum(len(repr(a)) for a in self.proposal.args)
        return FABRIC_MESSAGE_OVERHEAD + 64 + args_size


@dataclass
class ProposalResponseMessage:
    """Endorsing peer -> client: rw-sets + endorsement signature."""

    response: ProposalResponse

    def wire_size(self) -> int:
        rwset = 48 * (len(self.response.read_set) + len(self.response.write_set))
        return FABRIC_MESSAGE_OVERHEAD + 64 + rwset


@dataclass
class SubmitEnvelope:
    """Client -> ordering service: broadcast(envelope)."""

    envelope: Envelope

    def wire_size(self) -> int:
        return FABRIC_MESSAGE_OVERHEAD + self.envelope.payload_size


@dataclass
class BlockDelivery:
    """Ordering service -> peer (or frontend -> peer): deliver(block)."""

    block: Block
    source: str = ""

    def wire_size(self) -> int:
        return FABRIC_MESSAGE_OVERHEAD + self.block.wire_size()


@dataclass
class BlockRequest:
    """Peer -> peer: I am missing blocks [from_number, to_number]."""

    channel_id: str
    from_number: int
    to_number: int
    reply_to: object

    def wire_size(self) -> int:
        return FABRIC_MESSAGE_OVERHEAD + 24


@dataclass
class BlockResponse:
    """Peer -> peer: the blocks you asked for (gossip catch-up)."""

    channel_id: str
    blocks: list

    def wire_size(self) -> int:
        return FABRIC_MESSAGE_OVERHEAD + sum(b.wire_size() for b in self.blocks)


@dataclass
class CommitEvent:
    """Committing peer -> client: your transaction is in the chain."""

    tx_id: int
    envelope_id: int
    block_number: int
    validation_code: str
    peer: str
    commit_time: float = 0.0

    def wire_size(self) -> int:
        return FABRIC_MESSAGE_OVERHEAD
