"""State transfer against dishonest or stale peers."""


from repro.crypto.hashing import sha256
from repro.smart.durability import state_digest
from repro.smart.messages import StateReply
from tests.conftest import Cluster


class TestStateTransferRobustness:
    def advance(self, cluster, proxy, count):
        for _ in range(count):
            assert cluster.drain([proxy.invoke(1)], deadline=10.0)

    def test_single_lying_reply_cannot_install(self, cluster):
        """One fabricated state reply never reaches the f+1 threshold."""
        replica = cluster.replicas[3]
        replica.state_transfer.in_progress = True
        fake_state = {"total": 666, "history": [666]}
        lie = StateReply(
            sender=2,
            checkpoint_cid=5,
            state=fake_state,
            state_hash=state_digest(fake_state),
            log=[],
            last_cid=5,
        )
        replica.state_transfer.on_state_reply(2, lie)
        assert replica.last_executed == -1
        assert cluster.apps[3].total == 0

    def test_matching_lies_from_f_plus_1_needed(self, cluster):
        """Only f+1 = 2 *matching* replies install state; a single
        Byzantine peer cannot reach that alone, two colluding ones
        exceed f and are outside the fault model (and do succeed --
        demonstrating exactly why f matters)."""
        replica = cluster.replicas[3]
        replica.state_transfer.in_progress = True
        fake_state = {"total": 666, "history": [666]}
        lie = StateReply(
            sender=1,
            checkpoint_cid=5,
            state=fake_state,
            state_hash=state_digest(fake_state),
            log=[],
            last_cid=5,
        )
        replica.state_transfer.on_state_reply(1, lie)
        assert replica.last_executed == -1
        lie2 = StateReply(
            sender=2,
            checkpoint_cid=5,
            state=fake_state,
            state_hash=state_digest(fake_state),
            log=[],
            last_cid=5,
        )
        replica.state_transfer.on_state_reply(2, lie2)
        assert replica.last_executed == 5  # two faults > f: game over

    def test_mismatched_digest_rejected(self, cluster):
        """A reply whose shipped state does not match its own claimed
        digest is discarded even with agreement on the key."""
        replica = cluster.replicas[3]
        replica.state_transfer.in_progress = True
        fake_state = {"total": 666, "history": [666]}
        wrong_digest = sha256("not-the-state")
        for sender in (1, 2):
            replica.state_transfer.on_state_reply(
                sender,
                StateReply(
                    sender=sender,
                    checkpoint_cid=5,
                    state=fake_state,
                    state_hash=wrong_digest,
                    log=[],
                    last_cid=5,
                ),
            )
        assert replica.last_executed == -1

    def test_honest_majority_wins_during_recovery(self):
        """Full-system: one Byzantine peer feeds garbage state replies
        while a replica recovers; the honest majority's state is the
        one installed."""
        cluster = Cluster()
        proxy = cluster.proxy()
        self.advance(cluster, proxy, 3)
        cluster.replicas[3].crash()
        self.advance(cluster, proxy, 25)

        from repro.smart.messages import StateReply as SR

        def corrupt_state(src, dst, payload):
            if isinstance(payload, SR) and src == 2:
                fake = {"total": -1, "history": [-1]}
                return SR(
                    sender=2,
                    checkpoint_cid=payload.checkpoint_cid,
                    state=fake,
                    state_hash=state_digest(fake),
                    log=[],
                    last_cid=payload.last_cid,
                )
            return payload

        cluster.network.add_filter(corrupt_state)
        cluster.replicas[3].recover()
        cluster.run(6.0)
        assert cluster.apps[3].total == 28
        assert cluster.apps[3].history == cluster.apps[0].history
