PYTHON ?= python
PYTHONPATH_PREFIX = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH),)

# full exploration knobs (see docs/FAULTS.md)
SEEDS ?= 100
START_SEED ?= 0

.PHONY: test faults-smoke faults-explore

## tier-1: the whole test suite (includes the 25-seed explorer run)
test:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -x -q

## quick confidence check: 5 explorer seeds (runs in seconds)
faults-smoke:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m repro.faults --seeds 5

## opt-in deep exploration: make faults-explore SEEDS=500
faults-explore:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m repro.faults \
		--seeds $(SEEDS) --start-seed $(START_SEED) --shrink
