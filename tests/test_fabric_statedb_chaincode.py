"""Tests for the versioned state DB and chaincode execution."""

import pytest

from repro.fabric.chaincode import (
    AssetTransferChaincode,
    ChaincodeError,
    ChaincodeStub,
    KVChaincode,
    SmallBankChaincode,
)
from repro.fabric.statedb import VersionedKVStore


@pytest.fixture
def store():
    return VersionedKVStore()


class TestVersionedKVStore:
    def test_get_missing_returns_none(self, store):
        assert store.get("nope") is None
        assert store.get_value("nope") is None
        assert store.version_of("nope") is None

    def test_apply_write_sets_version(self, store):
        store.apply_write("k", "v", (3, 7))
        assert store.get_value("k") == "v"
        assert store.version_of("k") == (3, 7)

    def test_none_value_deletes(self, store):
        store.apply_write("k", "v", (0, 0))
        store.apply_write("k", None, (1, 0))
        assert "k" not in store

    def test_apply_write_set(self, store):
        store.apply_write_set({"a": 1, "b": 2}, (0, 0))
        assert store.get_value("a") == 1
        assert store.get_value("b") == 2

    def test_height_tracks_max_version(self, store):
        store.apply_write("a", 1, (2, 5))
        store.apply_write("b", 1, (1, 9))
        assert store.height == (2, 5)

    def test_range_query(self, store):
        for key in ("a/1", "a/2", "b/1"):
            store.apply_write(key, key, (0, 0))
        result = store.range("a/", "a/￿")
        assert [k for k, _v in result] == ["a/1", "a/2"]

    def test_snapshot_restore(self, store):
        store.apply_write("k", {"x": 1}, (4, 2))
        snapshot = store.snapshot()
        other = VersionedKVStore()
        other.restore(snapshot)
        assert other.get_value("k") == {"x": 1}
        assert other.version_of("k") == (4, 2)
        assert other.height == (4, 2)


class TestChaincodeStub:
    def test_read_records_version(self, store):
        store.apply_write("k", "v", (1, 2))
        stub = ChaincodeStub(store)
        assert stub.get_state("k") == "v"
        assert stub.read_set.reads == {"k": (1, 2)}

    def test_read_missing_records_none(self, store):
        stub = ChaincodeStub(store)
        assert stub.get_state("nope") is None
        assert stub.read_set.reads == {"nope": None}

    def test_writes_buffered_not_applied(self, store):
        stub = ChaincodeStub(store)
        stub.put_state("k", "v")
        assert store.get("k") is None
        assert stub.write_set.writes == {"k": "v"}

    def test_read_your_own_writes(self, store):
        stub = ChaincodeStub(store)
        stub.put_state("k", "mine")
        assert stub.get_state("k") == "mine"
        # a write-then-read does not add a version to the read set
        assert "k" not in stub.read_set.reads

    def test_delete_buffers_none(self, store):
        store.apply_write("k", "v", (0, 0))
        stub = ChaincodeStub(store)
        stub.del_state("k")
        assert stub.write_set.writes == {"k": None}

    def test_range_includes_pending_writes(self, store):
        store.apply_write("a/1", "committed", (0, 0))
        stub = ChaincodeStub(store)
        stub.put_state("a/2", "pending")
        result = stub.get_range("a/", "a/￿")
        assert result == {"a/1": "committed", "a/2": "pending"}

    def test_first_read_version_sticks(self, store):
        store.apply_write("k", "v", (1, 1))
        stub = ChaincodeStub(store)
        stub.get_state("k")
        stub.get_state("k")
        assert stub.read_set.reads == {"k": (1, 1)}


class TestKVChaincode:
    def test_put_get(self, store):
        chaincode = KVChaincode()
        stub = ChaincodeStub(store)
        assert chaincode.invoke(stub, "put", ("k", "v")) == "OK"
        assert stub.get_state("k") == "v"

    def test_increment(self, store):
        chaincode = KVChaincode()
        stub = ChaincodeStub(store)
        assert chaincode.invoke(stub, "increment", ("c",)) == 1
        assert chaincode.invoke(stub, "increment", ("c", 5)) == 6

    def test_delete_missing_raises(self, store):
        chaincode = KVChaincode()
        with pytest.raises(ChaincodeError):
            chaincode.invoke(ChaincodeStub(store), "delete", ("ghost",))

    def test_unknown_function_raises(self, store):
        with pytest.raises(ChaincodeError):
            KVChaincode().invoke(ChaincodeStub(store), "explode", ())


class TestAssetTransfer:
    @pytest.fixture
    def chaincode(self):
        return AssetTransferChaincode()

    def _commit(self, store, stub):
        store.apply_write_set(stub.write_set.writes, (0, 0))

    def test_create_and_read(self, store, chaincode):
        stub = ChaincodeStub(store)
        asset = chaincode.invoke(stub, "create", ("car1", "alice", 100))
        assert asset == {"id": "car1", "owner": "alice", "value": 100}
        self._commit(store, stub)
        stub2 = ChaincodeStub(store)
        assert chaincode.invoke(stub2, "read", ("car1",))["owner"] == "alice"

    def test_create_duplicate_rejected(self, store, chaincode):
        stub = ChaincodeStub(store)
        chaincode.invoke(stub, "create", ("car1", "alice", 100))
        self._commit(store, stub)
        with pytest.raises(ChaincodeError):
            chaincode.invoke(ChaincodeStub(store), "create", ("car1", "bob", 1))

    def test_transfer_checks_owner(self, store, chaincode):
        stub = ChaincodeStub(store)
        chaincode.invoke(stub, "create", ("car1", "alice", 100))
        self._commit(store, stub)
        with pytest.raises(ChaincodeError):
            chaincode.invoke(
                ChaincodeStub(store), "transfer", ("car1", "mallory", "bob")
            )

    def test_transfer_updates_owner(self, store, chaincode):
        stub = ChaincodeStub(store)
        chaincode.invoke(stub, "create", ("car1", "alice", 100))
        self._commit(store, stub)
        stub2 = ChaincodeStub(store)
        updated = chaincode.invoke(stub2, "transfer", ("car1", "alice", "bob"))
        assert updated["owner"] == "bob"

    def test_read_missing_raises(self, store, chaincode):
        with pytest.raises(ChaincodeError):
            chaincode.invoke(ChaincodeStub(store), "read", ("ghost",))

    def test_list_assets(self, store, chaincode):
        stub = ChaincodeStub(store)
        chaincode.invoke(stub, "create", ("a", "x", 1))
        chaincode.invoke(stub, "create", ("b", "y", 2))
        listing = chaincode.invoke(stub, "list", ())
        assert len(listing) == 2


class TestSmallBank:
    @pytest.fixture
    def chaincode(self):
        return SmallBankChaincode()

    def _open(self, store, chaincode, account, balance):
        stub = ChaincodeStub(store)
        chaincode.invoke(stub, "open", (account, balance))
        store.apply_write_set(stub.write_set.writes, (0, 0))

    def test_open_and_balance(self, store, chaincode):
        self._open(store, chaincode, "alice", 100)
        assert chaincode.invoke(ChaincodeStub(store), "balance", ("alice",)) == 100

    def test_transfer_moves_funds(self, store, chaincode):
        self._open(store, chaincode, "alice", 100)
        self._open(store, chaincode, "bob", 50)
        stub = ChaincodeStub(store)
        result = chaincode.invoke(stub, "transfer", ("alice", "bob", 30))
        assert result == {"alice": 70, "bob": 80}

    def test_overdraft_rejected(self, store, chaincode):
        self._open(store, chaincode, "alice", 10)
        self._open(store, chaincode, "bob", 0)
        with pytest.raises(ChaincodeError):
            chaincode.invoke(ChaincodeStub(store), "transfer", ("alice", "bob", 30))

    def test_deposit(self, store, chaincode):
        self._open(store, chaincode, "alice", 10)
        assert chaincode.invoke(ChaincodeStub(store), "deposit", ("alice", 5)) == 15

    def test_double_open_rejected(self, store, chaincode):
        self._open(store, chaincode, "alice", 10)
        with pytest.raises(ChaincodeError):
            chaincode.invoke(ChaincodeStub(store), "open", ("alice", 1))
