"""Regression-gate self-tests for :mod:`repro.bench.compare`.

Feeds the comparator synthetic baseline/candidate documents: an
injected +30% latency regression must fail the gate with a structured
report, within-tolerance noise must pass, and the Mann-Whitney layer
must keep indistinguishable repeat noise from tripping the gate.
"""

import json

import pytest

from repro.bench.compare import compare_results, gate, mann_whitney_u
from repro.bench.harness import SCHEMA, validate_result
from repro.sim.monitor import summarize


def make_document(run_name, metric_values, direction="lower", metric="latency_s",
                  benchmark="synthetic", params=None):
    """A minimal schema-valid result document with one metric."""
    values = list(metric_values)
    stats = summarize(values)
    summary = {
        "direction": direction,
        "values": values,
        **{k: (None if v != v else v) for k, v in stats.items()},
    }
    document = {
        "schema": SCHEMA,
        "run_name": run_name,
        "mode": "full",
        "created_unix": 0.0,
        "environment": {},
        "benchmarks": [
            {
                "benchmark": benchmark,
                "description": "",
                "mode": "full",
                "seed_policy": "per-repeat",
                "points": [
                    {
                        "params": params or {"x": 1},
                        "seeds": list(range(len(values))),
                        "repeats": len(values),
                        "metrics": {metric: summary},
                    }
                ],
            }
        ],
    }
    validate_result(document)
    return document


BASE_LATENCIES = [0.100, 0.102, 0.098, 0.101, 0.099, 0.100]


class TestMannWhitney:
    def test_matches_scipy_reference_values(self):
        # expected values computed with scipy.stats.mannwhitneyu
        # (two-sided, asymptotic, continuity correction)
        cases = [
            ([1.0, 2.0, 3.0, 4.0, 5.0], [1.2, 2.1, 2.9, 4.2, 5.1],
             11.0, 0.8345316227109287),
            ([1.0, 2.0, 3.0, 4.0, 5.0], [10.0, 11.0, 12.0, 13.0, 14.0],
             0.0, 0.012185780355344813),
            ([1.0, 1.0, 2.0, 2.0, 3.0], [1.0, 2.0, 2.0, 3.0, 3.0],
             9.0, 0.5067287122720537),
            ([0.10, 0.11, 0.09, 0.10, 0.12, 0.11],
             [0.13, 0.14, 0.12, 0.15, 0.13, 0.14],
             0.5, 0.006027336750585726),
        ]
        for a, b, expected_u, expected_p in cases:
            u, p = mann_whitney_u(a, b)
            assert u == pytest.approx(expected_u)
            assert p == pytest.approx(expected_p, rel=1e-9)

    def test_identical_samples_p_one(self):
        _, p = mann_whitney_u([1.0] * 5, [1.0] * 5)
        assert p == 1.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])


class TestComparator:
    def test_injected_regression_fails_gate(self):
        baseline = make_document("base", BASE_LATENCIES)
        regressed = make_document("cand", [v * 1.30 for v in BASE_LATENCIES])
        report = compare_results(baseline, regressed, tolerance=0.05)
        assert len(report.regressions) == 1
        finding = report.regressions[0]
        assert finding.benchmark == "synthetic"
        assert finding.metric == "latency_s"
        assert finding.delta_relative == pytest.approx(0.30, abs=0.02)
        assert finding.p_value is not None and finding.p_value < 0.05
        # candidate is uniformly 30% slower: candidate samples dominate
        assert finding.effect_a12 == pytest.approx(1.0)
        assert "A12=" in finding.describe()
        serialized = report.to_json_dict()["comparisons"]
        (regressed_row,) = [
            row for row in serialized if row["status"] == finding.status
        ]
        assert regressed_row["effect_a12"] == pytest.approx(1.0)
        assert gate(report) == 1

    def test_within_tolerance_noise_passes(self):
        baseline = make_document("base", BASE_LATENCIES)
        noisy = make_document("cand", [v * 1.02 for v in BASE_LATENCIES])
        report = compare_results(baseline, noisy, tolerance=0.05)
        assert report.regressions == []
        assert report.summary_counts()["ok"] == 1
        assert gate(report) == 0

    def test_identical_runs_pass(self):
        baseline = make_document("base", BASE_LATENCIES)
        report = compare_results(baseline, make_document("cand", BASE_LATENCIES))
        assert gate(report) == 0
        assert report.comparisons[0].status == "ok"

    def test_throughput_direction(self):
        baseline = make_document(
            "base", [1000.0, 1010.0, 990.0, 1005.0, 995.0],
            direction="higher", metric="tx_per_sec",
        )
        slower = make_document(
            "cand", [700.0, 707.0, 693.0, 703.5, 696.5],
            direction="higher", metric="tx_per_sec",
        )
        faster = make_document(
            "cand", [1300.0, 1313.0, 1287.0, 1306.5, 1293.5],
            direction="higher", metric="tx_per_sec",
        )
        assert gate(compare_results(baseline, slower)) == 1
        report = compare_results(baseline, faster)
        assert gate(report) == 0
        assert report.comparisons[0].status == "improved"

    def test_overlapping_noise_not_significant(self):
        """Median moves beyond tolerance but the distributions overlap:
        Mann-Whitney must veto the regression."""
        baseline = make_document("base", [0.10, 0.20, 0.10, 0.20, 0.10, 0.20])
        wobble = make_document("cand", [0.20, 0.10, 0.20, 0.10, 0.20, 0.20])
        report = compare_results(baseline, wobble, tolerance=0.05)
        assert report.regressions == []
        comparison = report.comparisons[0]
        assert comparison.p_value is not None and comparison.p_value >= 0.05
        assert "p >= alpha" in comparison.detail

    def test_few_repeats_median_only(self):
        """Below MIN_SAMPLES_FOR_TEST the median delta alone decides."""
        baseline = make_document("base", [0.100])
        regressed = make_document("cand", [0.130])
        report = compare_results(baseline, regressed, tolerance=0.05)
        assert len(report.regressions) == 1
        assert report.regressions[0].p_value is None
        ok = compare_results(baseline, make_document("cand", [0.102]))
        assert gate(ok) == 0

    def test_missing_coverage_reported_not_fatal(self):
        baseline = make_document("base", BASE_LATENCIES)
        other = make_document("cand", BASE_LATENCIES, benchmark="different")
        report = compare_results(baseline, other)
        assert len(report.missing) == 1
        assert gate(report) == 0
        assert gate(report, strict_missing=True) == 1

    def test_report_json_and_render(self):
        baseline = make_document("base", BASE_LATENCIES)
        regressed = make_document("cand", [v * 1.3 for v in BASE_LATENCIES])
        report = compare_results(baseline, regressed)
        document = report.to_json_dict()
        assert document["counts"]["regression"] == 1
        text = report.render()
        assert "REGRESSION" in text and "latency_s" in text


class TestCompareCli:
    def _write(self, tmp_path, name, document):
        path = tmp_path / name
        path.write_text(json.dumps(document))
        return str(path)

    def test_cli_clean_exit_zero(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        base = self._write(tmp_path, "base.json", make_document("base", BASE_LATENCIES))
        cand = self._write(tmp_path, "cand.json", make_document("cand", BASE_LATENCIES))
        assert main(["compare", base, cand]) == 0
        assert "0 regressions" in capsys.readouterr().out

    def test_cli_regression_exit_nonzero(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        base = self._write(tmp_path, "base.json", make_document("base", BASE_LATENCIES))
        cand = self._write(
            tmp_path, "cand.json",
            make_document("cand", [v * 1.3 for v in BASE_LATENCIES]),
        )
        assert main(["compare", base, cand]) == 1
        captured = capsys.readouterr()
        assert "1 regressions" in captured.out
        assert "FAIL" in captured.err

    def test_cli_schema_error_exit_two(self, tmp_path):
        from repro.bench.__main__ import main

        base = self._write(tmp_path, "base.json", make_document("base", BASE_LATENCIES))
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other"}')
        assert main(["compare", base, str(bad)]) == 2
        assert main(["compare", base, str(tmp_path / "missing.json")]) == 2
