"""Integration tests for the complete BFT ordering service."""


from repro.fabric.api import BlockDelivery
from repro.fabric.channel import ChannelConfig
from repro.fabric.envelope import Envelope
from repro.ordering import OrderingServiceConfig, build_ordering_service


def build(max_count=10, num_frontends=1, enable_ttc=False, cores=None, **kwargs):
    config = OrderingServiceConfig(
        f=1,
        channel=ChannelConfig("ch0", max_message_count=max_count, batch_timeout=0.5),
        num_frontends=num_frontends,
        physical_cores=cores,
        enable_batch_timeout=enable_ttc,
        **kwargs,
    )
    return build_ordering_service(config)


class TestBlockFlow:
    def test_full_blocks_delivered(self):
        service = build()
        for _ in range(30):
            service.submit(Envelope.raw("ch0", 512))
        service.run(3.0)
        assert service.frontends[0].blocks_delivered == 3
        assert all(node.blocks_created == 3 for node in service.nodes)

    def test_blocks_identical_across_nodes(self):
        service = build()
        for _ in range(20):
            service.submit(Envelope.raw("ch0", 512))
        service.run(3.0)
        # every node produced the same header chain
        states = [node.get_state()["ch0"] for node in service.nodes]
        assert len({s["previous_hash"] for s in states}) == 1
        assert len({s["next_number"] for s in states}) == 1

    def test_multiple_frontends_see_same_blocks(self):
        service = build(num_frontends=3)
        for i in range(20):
            service.submit(Envelope.raw("ch0", 256), frontend_index=i % 3)
        service.run(3.0)
        assert [f.blocks_delivered for f in service.frontends] == [2, 2, 2]

    def test_partial_block_cut_by_timeout(self):
        service = build(enable_ttc=True)
        for _ in range(3):
            service.submit(Envelope.raw("ch0", 128))
        service.run(5.0)
        assert service.frontends[0].blocks_delivered == 1
        front = service.frontends[0]
        meter = service.stats.meter(f"{front.name}.envelopes")
        assert meter.total == 3

    def test_blocks_signed_by_all_nodes_after_merge(self):
        service = build()
        collected = []
        service.frontends[0].on_block.append(collected.append)
        for _ in range(10):
            service.submit(Envelope.raw("ch0", 64))
        service.run(3.0)
        assert len(collected) == 1
        # 2f+1 matching copies merged: at least 3 signatures
        assert len(collected[0].signatures) >= 3
        payload = collected[0].header.signing_payload()
        for name, signature in collected[0].signatures.items():
            assert service.registry.verifier_of(name).verify(payload, signature)

    def test_latency_recorded(self):
        service = build()
        for _ in range(10):
            service.submit(Envelope.raw("ch0", 64))
        service.run(3.0)
        recorder = service.stats.latency(f"{service.frontends[0].name}.latency")
        assert recorder.count == 10
        assert recorder.median > 0

    def test_envelopes_preserved_in_order_per_frontend_stream(self):
        service = build(max_count=5)
        submitted = [Envelope.raw("ch0", 64) for _ in range(15)]
        delivered = []
        service.frontends[0].on_block.append(
            lambda block: delivered.extend(e.envelope_id for e in block.envelopes)
        )
        for envelope in submitted:
            service.submit(envelope)
        service.run(3.0)
        assert delivered == [e.envelope_id for e in submitted]


class TestFaultTolerance:
    def test_one_crashed_node_does_not_stop_service(self):
        service = build()
        service.crash_node(3)  # non-leader
        for _ in range(20):
            service.submit(Envelope.raw("ch0", 128))
        service.run(3.0)
        assert service.frontends[0].blocks_delivered == 2

    def test_crashed_leader_recovered_by_regency_change(self):
        service = build(request_timeout=0.5)
        for _ in range(10):
            service.submit(Envelope.raw("ch0", 128))
        service.run(2.0)
        service.crash_node(0)
        for _ in range(10):
            service.submit(Envelope.raw("ch0", 128))
        service.run(20.0)
        assert service.frontends[0].blocks_delivered == 2

    def test_byzantine_node_sending_wrong_blocks_outvoted(self):
        """One ordering node disseminates corrupted blocks; frontends
        still only accept the 2f+1-matching correct ones."""
        service = build()

        def corrupt(src, dst, payload):
            if isinstance(payload, BlockDelivery) and payload.source == "orderer3":
                bogus = Envelope.raw("ch0", 6666)
                from repro.fabric.block import make_block

                fake = make_block(
                    payload.block.number, b"\x66" * 32, [bogus], "ch0"
                )
                fake.signatures["orderer3"] = b"\x00" * 64
                return BlockDelivery(block=fake, source="orderer3")
            return payload

        service.network.add_filter(corrupt)
        submitted = [Envelope.raw("ch0", 64) for _ in range(10)]
        for envelope in submitted:
            service.submit(envelope)
        service.run(3.0)
        assert service.frontends[0].blocks_delivered == 1
        meter = service.stats.meter(f"{service.frontends[0].name}.envelopes")
        assert meter.total == 10  # the real envelopes, not the bogus one

    def test_frontend_with_signature_verification_needs_f_plus_1(self):
        service = build(verify_block_signatures=True)
        assert service.frontends[0].matching_copies_needed == 2
        for _ in range(10):
            service.submit(Envelope.raw("ch0", 64))
        service.run(3.0)
        assert service.frontends[0].blocks_delivered == 1

    def test_forged_signature_rejected_in_verify_mode(self):
        service = build(verify_block_signatures=True)

        def forge(src, dst, payload):
            if isinstance(payload, BlockDelivery):
                payload.block.signatures[payload.source] = b"\x11" * 64
            return payload

        service.network.add_filter(forge)
        for _ in range(10):
            service.submit(Envelope.raw("ch0", 64))
        service.run(3.0)
        assert service.frontends[0].blocks_delivered == 0


class TestSigningPipeline:
    def test_cpu_model_limits_block_rate(self):
        """With the CPU model on, signing consumes modeled core time."""
        service = build(cores=8, max_count=1, sign_cost=0.05)
        for _ in range(50):
            service.submit(Envelope.raw("ch0", 64))
        # 50 blocks x 50ms each = 2.5 core-seconds, ~240ms on 10.4
        # effective cores: far from finished after 100ms
        service.run(0.1)
        delivered_early = service.frontends[0].blocks_delivered
        service.run(5.0)
        assert delivered_early < 50
        assert service.frontends[0].blocks_delivered == 50

    def test_double_sign_halves_throughput(self):
        slow = build(cores=8, max_count=1, sign_cost=0.05, double_sign=True)
        fast = build(cores=8, max_count=1, sign_cost=0.05, double_sign=False)
        for service in (slow, fast):
            for _ in range(50):
                service.submit(Envelope.raw("ch0", 64))
            service.run(0.15)
        assert slow.frontends[0].blocks_delivered < fast.frontends[0].blocks_delivered


class TestWheatService:
    def test_wheat_deployment_orders(self):
        config = OrderingServiceConfig(
            f=1,
            delta=1,
            vmax_holders=(0, 1),
            tentative_execution=True,
            channel=ChannelConfig("ch0", max_message_count=10),
            physical_cores=None,
        )
        service = build_ordering_service(config)
        assert service.view.n == 5
        for _ in range(20):
            service.submit(Envelope.raw("ch0", 128))
        service.run(3.0)
        assert service.frontends[0].blocks_delivered == 2
        assert any(
            replica.counters.tentative_executions > 0
            for replica in service.replicas
        )
