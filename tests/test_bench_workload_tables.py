"""Tests for workload generators, table rendering and the CLI."""

import pytest

from repro.bench.tables import (
    render_ablation,
    render_conclusion,
    render_figure6,
    render_figure7_panel,
    render_lan_sim,
)
from repro.bench.figures import AblationResult, LanSimResult
from repro.bench.workload import ClosedLoopClients, OpenLoopGenerator, envelope_stream
from repro.fabric.channel import ChannelConfig
from repro.ordering import OrderingServiceConfig, build_ordering_service


def small_service(block_size=5, num_frontends=2):
    config = OrderingServiceConfig(
        f=1,
        channel=ChannelConfig("ch0", max_message_count=block_size, batch_timeout=0.5),
        num_frontends=num_frontends,
        physical_cores=None,
        enable_batch_timeout=True,
    )
    return build_ordering_service(config)


class TestEnvelopeStream:
    def test_count_and_size(self):
        envelopes = list(envelope_stream("ch0", 256, 5))
        assert len(envelopes) == 5
        assert all(e.payload_size == 256 for e in envelopes)
        assert len({e.envelope_id for e in envelopes}) == 5


class TestOpenLoopGenerator:
    def test_rate_and_duration(self):
        service = small_service()
        generator = OpenLoopGenerator(
            sim=service.sim,
            frontends=service.frontends,
            channel_id="ch0",
            envelope_size=100,
            rate_per_second=100.0,
            duration=2.0,
        )
        generator.start()
        service.run(5.0)
        assert generator.submitted == pytest.approx(200, abs=3)
        meter = service.stats.meter("orderer0.envelopes")
        assert meter.total == generator.submitted

    def test_round_robin_across_frontends(self):
        service = small_service()
        generator = OpenLoopGenerator(
            sim=service.sim,
            frontends=service.frontends,
            channel_id="ch0",
            envelope_size=100,
            rate_per_second=100.0,
            duration=1.0,
        )
        generator.start()
        service.run(3.0)
        submitted = [f.envelopes_submitted for f in service.frontends]
        assert abs(submitted[0] - submitted[1]) <= 1

    def test_stop(self):
        service = small_service()
        generator = OpenLoopGenerator(
            sim=service.sim,
            frontends=service.frontends,
            channel_id="ch0",
            envelope_size=100,
            rate_per_second=1000.0,
            duration=10.0,
        )
        generator.start()
        service.run(0.1)
        generator.stop()
        count = generator.submitted
        service.run(1.0)
        assert generator.submitted == count

    def test_invalid_rate(self):
        service = small_service()
        generator = OpenLoopGenerator(
            sim=service.sim,
            frontends=service.frontends,
            channel_id="ch0",
            envelope_size=100,
            rate_per_second=0.0,
            duration=1.0,
        )
        with pytest.raises(ValueError):
            generator.start()


class TestClosedLoopClients:
    def test_completes_all_envelopes(self):
        service = small_service(block_size=2, num_frontends=1)
        clients = ClosedLoopClients(
            sim=service.sim,
            frontend=service.frontends[0],
            channel_id="ch0",
            envelope_size=64,
            clients=4,
            max_envelopes=20,
        )
        clients.start()
        service.run(20.0)
        assert clients.done
        assert clients.completed == 20

    def test_bounded_concurrency(self):
        service = small_service(block_size=2, num_frontends=1)
        clients = ClosedLoopClients(
            sim=service.sim,
            frontend=service.frontends[0],
            channel_id="ch0",
            envelope_size=64,
            clients=3,
            max_envelopes=30,
        )
        clients.start()
        assert len(clients._outstanding) == 3
        service.run(30.0)
        assert clients.completed == 30


class TestRendering:
    def test_render_figure6(self):
        text = render_figure6({1: {"measured": 800.0, "model": 808.0}})
        assert "807" in text or "800" in text
        assert "Figure 6" in text

    def test_render_figure7_panel(self):
        panel = {40: {1: 50000.0, 32: 15000.0}}
        text = render_figure7_panel(4, 10, panel)
        assert "4 orderers" in text
        assert "50.0" in text and "15.0" in text

    def test_render_lan_sim(self):
        result = LanSimResult(4, 10, 1024, 2, 25000.0, 22800.0, 22700.0, 22242.0)
        text = render_lan_sim([result])
        assert "22800" in text

    def test_render_conclusion(self):
        text = render_conclusion(
            {
                "bft_ordering_worst_case": 1986.0,
                "ethereum_theoretical_peak": 1000.0,
                "bitcoin_peak": 7.0,
                "speedup_vs_ethereum": 1.986,
                "speedup_vs_bitcoin": 283.7,
            }
        )
        assert "1986" in text and "Ethereum" in text

    def test_render_ablation(self):
        rows = [AblationResult(True, True, 0.278, 0.345)]
        text = render_ablation(rows)
        assert "278" in text


class TestCli:
    def test_figure6_via_cli(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--figure", "6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "8400" in out

    def test_figure7_via_cli(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--figure", "7", "--orderers", "4", "--block-size", "10"]) == 0
        out = capsys.readouterr().out
        assert "4 orderers, 10 envelopes/block" in out

    def test_eq1_via_cli(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--figure", "eq1"]) == 0
        out = capsys.readouterr().out
        assert "Equation 1" in out and "Ethereum" in out

    def test_bad_figure_rejected(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["--figure", "99"])


class TestServiceConfigValidation:
    def test_site_count_mismatch(self):
        config = OrderingServiceConfig(f=1, node_sites=["a", "b"])
        with pytest.raises(ValueError):
            build_ordering_service(config)

    def test_frontend_site_count_mismatch(self):
        config = OrderingServiceConfig(
            f=1, num_frontends=2, frontend_sites=["lan"]
        )
        with pytest.raises(ValueError):
            build_ordering_service(config)

    def test_n_derived_from_f_and_delta(self):
        assert OrderingServiceConfig(f=2).n == 7
        assert OrderingServiceConfig(f=1, delta=1).n == 5

    def test_leader_node_is_node_zero(self):
        service = build_ordering_service(
            OrderingServiceConfig(f=1, physical_cores=None)
        )
        assert service.leader_node is service.nodes[0]
