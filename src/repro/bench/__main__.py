"""Benchmark runner CLI: ``python -m repro.bench``.

Subcommands::

    python -m repro.bench list
    python -m repro.bench run --smoke                 # -> BENCH_smoke.json
    python -m repro.bench run --only fig8 --only eq1  # subset, full matrices
    python -m repro.bench run --smoke --out path.json --repeats 3
    python -m repro.bench compare baseline.json candidate.json
    python -m repro.bench compare baseline.json candidate.json --tolerance 0.1

``compare`` exits 0 when the candidate is clean, 1 on a regression
(see :mod:`repro.bench.compare`), 2 on usage/schema errors.

The legacy figure-regeneration interface is kept verbatim::

    python -m repro.bench --figure 6
    python -m repro.bench --figure 7 --orderers 4 --block-size 10
    python -m repro.bench --figure all
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.figures import (
    BLOCK_SIZES,
    CLUSTER_SIZES,
    conclusion_comparison,
    figure6,
    figure7_panel,
    figure8,
    figure9,
    wheat_ablation,
)
from repro.bench.model import OrderingCapacityModel, eq1_bound
from repro.bench.tables import (
    render_ablation,
    render_conclusion,
    render_figure6,
    render_figure7_panel,
    render_geo_results,
)


# ----------------------------------------------------------------------
# Legacy figure regeneration (--figure N)
# ----------------------------------------------------------------------
def run_figure6(_args) -> None:
    print(render_figure6(figure6()))


def run_figure7(args) -> None:
    clusters = [args.orderers] if args.orderers else CLUSTER_SIZES
    blocks = [args.block_size] if args.block_size else BLOCK_SIZES
    for n in clusters:
        for bs in blocks:
            print(render_figure7_panel(n, bs, figure7_panel(n, bs)))
            print()


def run_figure8(args) -> None:
    results = figure8(duration=args.duration, rate=args.rate)
    print(render_geo_results("Figure 8: geo latency, blocks of 10 envelopes", results))


def run_figure9(args) -> None:
    results = figure9(duration=args.duration, rate=args.rate)
    print(render_geo_results("Figure 9: geo latency, blocks of 100 envelopes", results))


def run_eq1(_args) -> None:
    print("Equation 1: TP_os <= min(TP_sign*bs, TP_bftsmart)")
    print(f"{'n':>3} {'es':>6} {'bs':>4} {'r':>3} | {'predicted':>10} | {'bound':>10}")
    for n in CLUSTER_SIZES:
        model = OrderingCapacityModel(n=n)
        for es in (40, 1024, 4096):
            for bs in BLOCK_SIZES:
                for r in (1, 32):
                    predicted = model.throughput(es, bs, r)
                    bound = eq1_bound(bs, es, r, n=n)
                    print(
                        f"{n:>3} {es:>6} {bs:>4} {r:>3} | {predicted:>10.0f} | {bound:>10.0f}"
                    )
    print()
    print(render_conclusion(conclusion_comparison()))


def run_ablation(args) -> None:
    print(render_ablation(wheat_ablation(duration=args.duration)))


RUNNERS = {
    "6": run_figure6,
    "7": run_figure7,
    "8": run_figure8,
    "9": run_figure9,
    "eq1": run_eq1,
    "ablation": run_ablation,
}


def legacy_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "--figure",
        required=True,
        choices=sorted(RUNNERS) + ["all"],
        help="which figure/table to regenerate",
    )
    parser.add_argument("--orderers", type=int, choices=CLUSTER_SIZES, default=None)
    parser.add_argument("--block-size", type=int, choices=BLOCK_SIZES, default=None)
    parser.add_argument("--duration", type=float, default=6.0,
                        help="simulated measurement seconds (figures 8/9)")
    parser.add_argument("--rate", type=float, default=1100.0,
                        help="offered load, tx/s (figures 8/9)")
    args = parser.parse_args(argv)

    targets = sorted(RUNNERS) if args.figure == "all" else [args.figure]
    for target in targets:
        RUNNERS[target](args)
        print()
    return 0


# ----------------------------------------------------------------------
# Harness subcommands (list / run / compare)
# ----------------------------------------------------------------------
def cmd_list(_args) -> int:
    from repro.bench import suite  # noqa: F401 - populates the registry
    from repro.bench.harness import REGISTRY

    for benchmark in REGISTRY:
        full = sum(1 for _ in benchmark.points("full"))
        smoke = sum(1 for _ in benchmark.points("smoke"))
        print(
            f"{benchmark.name:<20} {full:>4} points "
            f"({smoke} smoke)  {benchmark.description.splitlines()[0]}"
        )
    return 0


def cmd_run(args) -> int:
    from repro.bench import suite  # noqa: F401 - populates the registry
    from repro.bench.harness import (
        REGISTRY,
        render_suite,
        run_suite,
        write_result,
    )

    mode = "smoke" if args.smoke else "full"
    run_name = args.name or mode
    try:
        benchmarks = REGISTRY.select(args.only)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    progress = None if args.quiet else lambda line: print(f"  {line}", flush=True)
    result = run_suite(
        benchmarks,
        run_name=run_name,
        mode=mode,
        repeats=args.repeats,
        base_seed=args.seed,
        progress=progress,
        phases=args.phases,
    )
    path = args.out or f"BENCH_{run_name}.json"
    write_result(result, path)
    if not args.quiet:
        print()
        print(render_suite(result))
    print(f"\n[written to {path}]")
    return 0


def cmd_compare(args) -> int:
    from repro.bench.compare import compare_results, gate
    from repro.bench.harness import SchemaError, load_result

    try:
        baseline = load_result(args.baseline)
        candidate = load_result(args.candidate)
    except (OSError, ValueError, SchemaError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = compare_results(
        baseline, candidate, tolerance=args.tolerance, alpha=args.alpha
    )
    print(report.render())
    code = gate(report, strict_missing=args.strict_missing)
    if code != 0:
        print("bench-compare: FAIL", file=sys.stderr)
    return code


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if any(arg.startswith("--figure") for arg in argv):
        return legacy_main(argv)

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Declarative benchmark harness (see docs/BENCHMARKS.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered benchmarks")

    run_parser = sub.add_parser("run", help="run registered benchmarks")
    run_parser.add_argument(
        "--smoke", action="store_true",
        help="run the seconds-fast smoke matrices instead of the full ones",
    )
    run_parser.add_argument(
        "--only", action="append", default=None, metavar="PATTERN",
        help="run only benchmarks whose name contains PATTERN (repeatable)",
    )
    run_parser.add_argument(
        "--repeats", type=int, default=None,
        help="override each benchmark's repeat count",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None, help="override the base seed"
    )
    run_parser.add_argument(
        "--name", default=None,
        help="run name recorded in the result (default: smoke/full)",
    )
    run_parser.add_argument(
        "--out", default=None,
        help="output path (default: BENCH_<name>.json in the cwd)",
    )
    run_parser.add_argument(
        "--phases", action="store_true",
        help="attach a repro.obs hub per repeat and embed per-phase "
        "latency breakdowns in the result (benchmarks that build an "
        "ordering service only)",
    )
    run_parser.add_argument("--quiet", action="store_true")

    compare_parser = sub.add_parser(
        "compare", help="gate a candidate result against a baseline"
    )
    compare_parser.add_argument("baseline")
    compare_parser.add_argument("candidate")
    compare_parser.add_argument(
        "--tolerance", type=float, default=0.05,
        help="relative median tolerance before a move counts (default 0.05)",
    )
    compare_parser.add_argument(
        "--alpha", type=float, default=0.05,
        help="Mann-Whitney significance level (default 0.05)",
    )
    compare_parser.add_argument(
        "--strict-missing", action="store_true",
        help="fail when baseline coverage is missing from the candidate",
    )

    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list(args)
    if args.command == "run":
        return cmd_run(args)
    return cmd_compare(args)


if __name__ == "__main__":
    sys.exit(main())
