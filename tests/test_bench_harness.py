"""Unit tests for the declarative benchmark harness.

The fast paths (registry semantics, matrix expansion, summary
statistics, JSON schema, seed reproducibility on a cheap registered
benchmark) run in tier-1; the full smoke-suite execution is marked
``bench``.
"""

import json
import math
import random

import pytest

from repro.bench import suite  # noqa: F401 - populates REGISTRY
from repro.bench.harness import (
    REGISTRY,
    BenchContext,
    Benchmark,
    BenchmarkRegistry,
    DuplicateBenchmarkError,
    SCHEMA,
    SchemaError,
    default_direction,
    environment_fingerprint,
    load_result,
    render_suite,
    run_benchmark,
    run_suite,
    validate_result,
    write_result,
)


def _toy(ctx: BenchContext):
    return {"value": float(ctx["x"] * 10 + ctx["y"]), "latency_s": 0.1}


class TestBenchmarkDeclaration:
    def test_matrix_expansion_order(self):
        bench = Benchmark(name="t", run=_toy, matrix={"x": (1, 2), "y": (3, 4)})
        points = list(bench.points())
        assert points == [
            {"x": 1, "y": 3},
            {"x": 1, "y": 4},
            {"x": 2, "y": 3},
            {"x": 2, "y": 4},
        ]

    def test_empty_matrix_is_single_point(self):
        bench = Benchmark(name="t", run=_toy)
        assert list(bench.points()) == [{}]

    def test_smoke_matrix_fallback(self):
        bench = Benchmark(name="t", run=_toy, matrix={"x": (1, 2)})
        assert list(bench.points("smoke")) == [{"x": 1}, {"x": 2}]
        bench = Benchmark(
            name="t", run=_toy, matrix={"x": (1, 2)}, smoke_matrix={"x": (1,)}
        )
        assert list(bench.points("smoke")) == [{"x": 1}]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            Benchmark(name="t", run=_toy, matrix={"x": ()})

    def test_bad_seed_policy_rejected(self):
        with pytest.raises(ValueError):
            Benchmark(name="t", run=_toy, seed_policy="random")

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            Benchmark(name="t", run=_toy, directions={"m": "sideways"})

    def test_seed_policy(self):
        per_repeat = Benchmark(name="t", run=_toy, base_seed=7)
        assert [per_repeat.seed_for(i) for i in range(3)] == [7, 8, 9]
        fixed = Benchmark(name="t", run=_toy, base_seed=7, seed_policy="fixed")
        assert [fixed.seed_for(i) for i in range(3)] == [7, 7, 7]

    def test_direction_heuristic(self):
        assert default_direction("tx_per_sec") == "higher"
        assert default_direction("canada_median_s") == "lower"
        assert default_direction("p90_ms") == "lower"
        assert default_direction("end_to_end_latency") == "lower"
        assert default_direction("samples") == "higher"
        explicit = Benchmark(name="t", run=_toy, directions={"tx_per_sec": "lower"})
        assert explicit.direction_of("tx_per_sec") == "lower"


class TestRegistry:
    def test_duplicate_rejected(self):
        registry = BenchmarkRegistry()
        registry.add(Benchmark(name="a", run=_toy))
        with pytest.raises(DuplicateBenchmarkError):
            registry.add(Benchmark(name="a", run=_toy))

    def test_select_by_substring(self):
        registry = BenchmarkRegistry()
        registry.add(Benchmark(name="fig6_signing", run=_toy))
        registry.add(Benchmark(name="fig7_capacity", run=_toy))
        assert [b.name for b in registry.select(["fig6"])] == ["fig6_signing"]
        assert len(registry.select(["fig"])) == 2
        assert len(registry.select(None)) == 2
        with pytest.raises(KeyError):
            registry.select(["nope"])

    def test_global_registry_contents(self):
        expected = {
            "fig6_signing",
            "fig6_invariance",
            "fig7_capacity",
            "fig7_lan_sim",
            "fig8_geo",
            "fig9_geo",
            "eq1_bounds",
            "conclusion",
            "ablation_wheat",
            "ablation_batching",
            "baseline_orderers",
        }
        assert expected <= set(REGISTRY.names())

    def test_every_registered_benchmark_has_a_fast_smoke(self):
        for benchmark in REGISTRY:
            smoke_points = list(benchmark.points("smoke"))
            assert 1 <= len(smoke_points) <= 8, benchmark.name


class TestRunner:
    def test_metrics_summarized_per_point(self):
        bench = Benchmark(
            name="t", run=_toy, matrix={"x": (1, 2), "y": (0,)}, repeats=3
        )
        result = run_benchmark(bench)
        assert [p.params for p in result.points] == [
            {"x": 1, "y": 0},
            {"x": 2, "y": 0},
        ]
        point = result.point(x=2)
        assert point.seeds == [0, 1, 2]
        summary = point.metrics["value"]
        assert summary.values == [20.0, 20.0, 20.0]
        assert summary.stats["median"] == 20.0
        assert summary.stats["stdev"] == 0.0
        assert summary.direction == "higher"
        assert point.metrics["latency_s"].direction == "lower"

    def test_value_and_series_accessors(self):
        bench = Benchmark(name="t", run=_toy, matrix={"x": (1, 2, 3), "y": (5,)})
        result = run_benchmark(bench)
        assert result.value("value", x=3) == 35.0
        assert result.series("value", over="x", y=5) == [
            (1, 15.0),
            (2, 25.0),
            (3, 35.0),
        ]
        with pytest.raises(KeyError):
            result.point(x=99)
        with pytest.raises(KeyError):
            result.point(y=5)  # ambiguous

    def test_repeat_statistics(self):
        def noisy(ctx):
            return {"m": float(ctx.repeat)}  # 0, 1, 2, 3

        result = run_benchmark(Benchmark(name="t", run=noisy, repeats=4))
        stats = result.points[0].metrics["m"].stats
        assert stats["count"] == 4.0
        assert stats["median"] == 1.5
        assert stats["mean"] == 1.5
        assert stats["min"] == 0.0 and stats["max"] == 3.0
        assert stats["stdev"] == pytest.approx(
            math.sqrt(sum((x - 1.5) ** 2 for x in (0, 1, 2, 3)) / 3)
        )

    def test_setup_teardown_called(self):
        calls = []
        bench = Benchmark(
            name="t",
            run=lambda ctx: (calls.append("run"), {"m": 1.0})[1],
            setup=lambda ctx: calls.append("setup"),
            teardown=lambda ctx: calls.append("teardown"),
            repeats=2,
        )
        run_benchmark(bench)
        assert calls == ["setup", "run", "teardown"] * 2

    def test_inconsistent_metrics_rejected(self):
        def flaky(ctx):
            return {"m": 1.0} if ctx.repeat == 0 else {"other": 1.0}

        with pytest.raises(ValueError):
            run_benchmark(Benchmark(name="t", run=flaky, repeats=2))

    def test_empty_metrics_rejected(self):
        with pytest.raises(ValueError):
            run_benchmark(Benchmark(name="t", run=lambda ctx: {}))


class TestResultSchema:
    def _document(self, tmp_path):
        bench = Benchmark(name="t", run=_toy, matrix={"x": (1,), "y": (2,)})
        result = run_suite([bench], run_name="unit", mode="full")
        path = str(tmp_path / "BENCH_unit.json")
        write_result(result, path)
        return path

    def test_roundtrip_and_validate(self, tmp_path):
        path = self._document(tmp_path)
        document = load_result(path)
        assert document["schema"] == SCHEMA
        assert document["run_name"] == "unit"
        point = document["benchmarks"][0]["points"][0]
        assert point["params"] == {"x": 1, "y": 2}
        assert point["metrics"]["value"]["median"] == 12.0
        assert point["metrics"]["value"]["direction"] == "higher"

    def test_validate_rejects_bad_documents(self, tmp_path):
        path = self._document(tmp_path)
        document = json.load(open(path))
        with pytest.raises(SchemaError):
            validate_result({**document, "schema": "other/9"})
        broken = json.loads(json.dumps(document))
        del broken["benchmarks"][0]["points"][0]["metrics"]["value"]["median"]
        with pytest.raises(SchemaError):
            validate_result(broken)
        broken = json.loads(json.dumps(document))
        broken["benchmarks"][0]["points"][0]["metrics"]["value"]["values"] = []
        with pytest.raises(SchemaError):
            validate_result(broken)

    def test_non_finite_metrics_serialize_as_null(self, tmp_path):
        bench = Benchmark(name="t", run=lambda ctx: {"m": math.nan})
        result = run_suite([bench], run_name="nan", mode="full")
        path = str(tmp_path / "BENCH_nan.json")
        write_result(result, path)
        document = load_result(path)
        summary = document["benchmarks"][0]["points"][0]["metrics"]["m"]
        assert summary["values"] == [None]
        assert summary["median"] is None

    def test_environment_fingerprint_fields(self):
        env = environment_fingerprint()
        assert {"repro_version", "python", "platform", "machine"} <= set(env)

    def test_render_suite_mentions_every_benchmark(self):
        bench = Benchmark(name="toy_render", run=_toy, matrix={"x": (1,), "y": (2,)})
        result = run_suite([bench], run_name="r", mode="full")
        text = render_suite(result)
        assert "toy_render" in text and "value" in text


class TestSeedReproducibility:
    """Same seed -> identical metric values in the result JSON
    (timestamps/environment excluded); different seeds -> different."""

    @staticmethod
    def _strip(document):
        document = json.loads(json.dumps(document))
        document.pop("created_unix")
        document.pop("environment")
        return document

    def test_synthetic_benchmark_reproducible(self):
        def seeded(ctx):
            rng = random.Random(ctx.seed)
            return {"m": rng.random(), "n": rng.gauss(0, 1)}

        bench = Benchmark(name="t", run=seeded, matrix={"x": (1, 2)}, repeats=3)
        first = self._strip(run_suite([bench], run_name="r", mode="full").to_json_dict())
        second = self._strip(run_suite([bench], run_name="r", mode="full").to_json_dict())
        assert first == second
        shifted = self._strip(
            run_suite([bench], run_name="r", mode="full", base_seed=99).to_json_dict()
        )
        assert shifted != first

    def test_registered_geo_benchmark_reproducible(self):
        """Harness-path mirror of test_reproducibility.py: the real
        simulated stack through a registered benchmark."""
        bench = REGISTRY.get("fig8_geo")
        first = self._strip(
            run_suite([bench], run_name="r", mode="smoke").to_json_dict()
        )
        second = self._strip(
            run_suite([bench], run_name="r", mode="smoke").to_json_dict()
        )
        assert first == second
        shifted = self._strip(
            run_suite([bench], run_name="r", mode="smoke", base_seed=5).to_json_dict()
        )
        assert shifted != first


class TestCliSubcommands:
    def test_list(self, capsys):
        from repro.bench.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6_signing" in out and "fig8_geo" in out

    def test_run_subset_writes_valid_json(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        path = str(tmp_path / "BENCH_unit.json")
        code = main(
            ["run", "--smoke", "--only", "fig6_invariance", "--only",
             "eq1_bounds", "--name", "unit", "--out", path, "--quiet"]
        )
        assert code == 0
        document = load_result(path)
        names = [b["benchmark"] for b in document["benchmarks"]]
        assert names == ["fig6_invariance", "eq1_bounds"]
        assert document["mode"] == "smoke"

    def test_run_unknown_pattern_is_usage_error(self, tmp_path):
        from repro.bench.__main__ import main

        assert main(["run", "--only", "zzz", "--out", str(tmp_path / "x.json")]) == 2


@pytest.mark.bench
class TestSmokeSuite:
    """The `make bench-smoke` path: every registered benchmark's smoke
    matrix, one schema-valid document."""

    def test_full_smoke_suite(self, tmp_path):
        result = run_suite(list(REGISTRY), run_name="smoke", mode="smoke")
        path = str(tmp_path / "BENCH_smoke.json")
        write_result(result, path)
        document = load_result(path)
        assert {b["benchmark"] for b in document["benchmarks"]} == set(
            REGISTRY.names()
        )
        # a couple of paper-shape sanity checks survive even at smoke scale
        fig6 = result.benchmark("fig6_signing")
        assert fig6.value("sig_per_sec", workers=16) == pytest.approx(8400, rel=0.05)
        fig8 = result.benchmark("fig8_geo")
        wheat = fig8.value("virginia_median_s", protocol="wheat")
        bft = fig8.value("virginia_median_s", protocol="bftsmart")
        assert wheat < bft
