"""Tests for workload generators, table rendering and the CLI."""

import pytest

from repro.bench.tables import (
    render_ablation,
    render_conclusion,
    render_figure6,
    render_figure7_panel,
    render_lan_sim,
)
from repro.bench.figures import AblationResult, LanSimResult
from repro.bench.workload import ClosedLoopClients, OpenLoopGenerator, envelope_stream
from repro.fabric.channel import ChannelConfig
from repro.ordering import OrderingServiceConfig, build_ordering_service


def small_service(block_size=5, num_frontends=2):
    config = OrderingServiceConfig(
        f=1,
        channel=ChannelConfig("ch0", max_message_count=block_size, batch_timeout=0.5),
        num_frontends=num_frontends,
        physical_cores=None,
        enable_batch_timeout=True,
    )
    return build_ordering_service(config)


class TestEnvelopeStream:
    def test_count_and_size(self):
        envelopes = list(envelope_stream("ch0", 256, 5))
        assert len(envelopes) == 5
        assert all(e.payload_size == 256 for e in envelopes)
        assert len({e.envelope_id for e in envelopes}) == 5


class TestOpenLoopGenerator:
    def test_rate_and_duration(self):
        service = small_service()
        generator = OpenLoopGenerator(
            sim=service.sim,
            frontends=service.frontends,
            channel_id="ch0",
            envelope_size=100,
            rate_per_second=100.0,
            duration=2.0,
        )
        generator.start()
        service.run(5.0)
        assert generator.submitted == pytest.approx(200, abs=3)
        meter = service.stats.meter("orderer0.envelopes")
        assert meter.total == generator.submitted

    def test_round_robin_across_frontends(self):
        service = small_service()
        generator = OpenLoopGenerator(
            sim=service.sim,
            frontends=service.frontends,
            channel_id="ch0",
            envelope_size=100,
            rate_per_second=100.0,
            duration=1.0,
        )
        generator.start()
        service.run(3.0)
        submitted = [f.envelopes_submitted for f in service.frontends]
        assert abs(submitted[0] - submitted[1]) <= 1

    def test_stop(self):
        service = small_service()
        generator = OpenLoopGenerator(
            sim=service.sim,
            frontends=service.frontends,
            channel_id="ch0",
            envelope_size=100,
            rate_per_second=1000.0,
            duration=10.0,
        )
        generator.start()
        service.run(0.1)
        generator.stop()
        count = generator.submitted
        service.run(1.0)
        assert generator.submitted == count

    def test_invalid_rate(self):
        service = small_service()
        generator = OpenLoopGenerator(
            sim=service.sim,
            frontends=service.frontends,
            channel_id="ch0",
            envelope_size=100,
            rate_per_second=0.0,
            duration=1.0,
        )
        with pytest.raises(ValueError):
            generator.start()

    def test_stop_is_idempotent_and_sticky(self):
        service = small_service()
        generator = OpenLoopGenerator(
            sim=service.sim,
            frontends=service.frontends,
            channel_id="ch0",
            envelope_size=100,
            rate_per_second=500.0,
            duration=10.0,
        )
        generator.start()
        service.run(0.05)
        generator.stop()
        generator.stop()  # double stop is harmless
        count = generator.submitted
        service.run(1.0)
        assert generator.submitted == count

    def test_deterministic_arrival_sequence(self):
        """Same seed => byte-identical submission times and counts."""
        from repro.sim.randomness import RandomStreams

        def arrivals(seed):
            service = small_service()
            times = []
            original = service.frontends[0].submit

            def probe(envelope, _original=original, _times=times):
                _times.append(service.sim.now)
                return _original(envelope)

            service.frontends[0].submit = probe
            generator = OpenLoopGenerator(
                sim=service.sim,
                frontends=[service.frontends[0]],
                channel_id="ch0",
                envelope_size=100,
                rate_per_second=200.0,
                duration=0.5,
                jitter_fraction=0.3,
                streams=RandomStreams(seed),
            )
            generator.start()
            service.run(2.0)
            return times

        first = arrivals(7)
        assert len(first) > 50
        assert arrivals(7) == first
        assert arrivals(8) != first

    def test_unjittered_arrivals_are_evenly_spaced(self):
        service = small_service()
        times = []
        for frontend in service.frontends:
            original = frontend.submit

            def probe(envelope, _original=original):
                times.append(service.sim.now)
                return _original(envelope)

            frontend.submit = probe
        generator = OpenLoopGenerator(
            sim=service.sim,
            frontends=service.frontends,
            channel_id="ch0",
            envelope_size=100,
            rate_per_second=100.0,
            duration=0.5,
        )
        generator.start()
        service.run(2.0)
        gaps = {round(b - a, 9) for a, b in zip(times, times[1:])}
        assert gaps == {0.01}


class TestClosedLoopClients:
    def test_completes_all_envelopes(self):
        service = small_service(block_size=2, num_frontends=1)
        clients = ClosedLoopClients(
            sim=service.sim,
            frontend=service.frontends[0],
            channel_id="ch0",
            envelope_size=64,
            clients=4,
            max_envelopes=20,
        )
        clients.start()
        service.run(20.0)
        assert clients.done
        assert clients.completed == 20

    def test_bounded_concurrency(self):
        service = small_service(block_size=2, num_frontends=1)
        clients = ClosedLoopClients(
            sim=service.sim,
            frontend=service.frontends[0],
            channel_id="ch0",
            envelope_size=64,
            clients=3,
            max_envelopes=30,
        )
        clients.start()
        assert len(clients._outstanding) == 3
        service.run(30.0)
        assert clients.completed == 30

    def test_done_semantics(self):
        service = small_service(block_size=2, num_frontends=1)
        clients = ClosedLoopClients(
            sim=service.sim,
            frontend=service.frontends[0],
            channel_id="ch0",
            envelope_size=64,
            clients=2,
            max_envelopes=6,
        )
        assert not clients.done  # nothing completed yet
        clients.start()
        assert not clients.done  # submissions are in flight, not done
        service.run(20.0)
        assert clients.done
        assert clients.submitted == 6
        # done stays true and no extra submissions happen afterwards
        service.run(5.0)
        assert clients.done and clients.submitted == 6

    def test_clients_capped_by_max_envelopes(self):
        service = small_service(block_size=2, num_frontends=1)
        clients = ClosedLoopClients(
            sim=service.sim,
            frontend=service.frontends[0],
            channel_id="ch0",
            envelope_size=64,
            clients=10,
            max_envelopes=3,
        )
        clients.start()
        assert clients.submitted == 3
        assert len(clients._outstanding) == 3


class TestRendering:
    def test_render_figure6(self):
        text = render_figure6({1: {"measured": 800.0, "model": 808.0}})
        assert "807" in text or "800" in text
        assert "Figure 6" in text

    def test_render_figure7_panel(self):
        panel = {40: {1: 50000.0, 32: 15000.0}}
        text = render_figure7_panel(4, 10, panel)
        assert "4 orderers" in text
        assert "50.0" in text and "15.0" in text

    def test_render_lan_sim(self):
        result = LanSimResult(4, 10, 1024, 2, 25000.0, 22800.0, 22700.0, 22242.0)
        text = render_lan_sim([result])
        assert "22800" in text

    def test_render_conclusion(self):
        text = render_conclusion(
            {
                "bft_ordering_worst_case": 1986.0,
                "ethereum_theoretical_peak": 1000.0,
                "bitcoin_peak": 7.0,
                "speedup_vs_ethereum": 1.986,
                "speedup_vs_bitcoin": 283.7,
            }
        )
        assert "1986" in text and "Ethereum" in text

    def test_render_ablation(self):
        rows = [AblationResult(True, True, 0.278, 0.345)]
        text = render_ablation(rows)
        assert "278" in text


class TestCli:
    def test_figure6_via_cli(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--figure", "6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "8400" in out

    def test_figure7_via_cli(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--figure", "7", "--orderers", "4", "--block-size", "10"]) == 0
        out = capsys.readouterr().out
        assert "4 orderers, 10 envelopes/block" in out

    def test_eq1_via_cli(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--figure", "eq1"]) == 0
        out = capsys.readouterr().out
        assert "Equation 1" in out and "Ethereum" in out

    def test_bad_figure_rejected(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["--figure", "99"])


class TestServiceConfigValidation:
    def test_site_count_mismatch(self):
        config = OrderingServiceConfig(f=1, node_sites=["a", "b"])
        with pytest.raises(ValueError):
            build_ordering_service(config)

    def test_frontend_site_count_mismatch(self):
        config = OrderingServiceConfig(
            f=1, num_frontends=2, frontend_sites=["lan"]
        )
        with pytest.raises(ValueError):
            build_ordering_service(config)

    def test_n_derived_from_f_and_delta(self):
        assert OrderingServiceConfig(f=2).n == 7
        assert OrderingServiceConfig(f=1, delta=1).n == 5

    def test_leader_node_is_node_zero(self):
        service = build_ordering_service(
            OrderingServiceConfig(f=1, physical_cores=None)
        )
        assert service.leader_node is service.nodes[0]
