"""Tests for runtime reconfiguration of the ordering service (§5.2)."""


from repro.fabric.channel import ChannelConfig
from repro.fabric.envelope import Envelope
from repro.ordering import OrderingServiceConfig, build_ordering_service


def build(max_count=5, **kwargs):
    config = OrderingServiceConfig(
        f=1,
        channel=ChannelConfig("ch0", max_message_count=max_count, batch_timeout=0.4),
        physical_cores=None,
        **kwargs,
    )
    return build_ordering_service(config)


class TestAddOrderingNode:
    def test_view_change_ordered_and_installed(self):
        service = build()
        future, _node = service.add_node()
        assert service.sim.drain([future], service.sim.now + 20.0)
        service.run(0.5)  # let the activation callback fire
        assert future.value["view_id"] == 1
        assert all(r.view.n == 5 for r in service.replicas)

    def test_new_node_inherits_chain_state(self):
        service = build()
        for _ in range(15):
            service.submit(Envelope.raw("ch0", 64))
        service.run(2.0)
        future, node = service.add_node()
        service.sim.drain([future], service.sim.now + 20.0)
        service.run(3.0)
        reference = service.nodes[0].get_state()["ch0"]
        joined = node.get_state()["ch0"]
        assert joined["next_number"] == reference["next_number"] == 3
        assert joined["previous_hash"] == reference["previous_hash"]

    def test_new_node_contributes_blocks(self):
        service = build()
        future, node = service.add_node()
        service.sim.drain([future], service.sim.now + 20.0)
        service.run(2.0)
        for _ in range(10):
            service.submit(Envelope.raw("ch0", 64))
        service.run(3.0)
        assert node.blocks_created == 2
        assert service.frontends[0].blocks_delivered == 2

    def test_cluster_survives_crash_after_growth(self):
        """With 5 nodes the (still f=1) service survives one crash
        even while the newest member is load-bearing."""
        service = build()
        future, _node = service.add_node()
        service.sim.drain([future], service.sim.now + 20.0)
        service.run(2.0)
        service.crash_node(2)
        for _ in range(10):
            service.submit(Envelope.raw("ch0", 64))
        service.run(5.0)
        assert service.frontends[0].blocks_delivered == 2

    def test_frontends_track_new_view(self):
        service = build()
        future, _node = service.add_node()
        service.sim.drain([future], service.sim.now + 20.0)
        service.run(0.5)  # let the activation callback fire
        for frontend in service.frontends:
            assert frontend.proxy.view.n == 5
            assert frontend.matching_copies_needed == 3  # 2f+1, f=1

    def test_two_sequential_additions(self):
        service = build()
        first, _ = service.add_node()
        assert service.sim.drain([first], service.sim.now + 20.0)
        service.run(2.0)
        second, _ = service.add_node()
        assert service.sim.drain([second], service.sim.now + 30.0)
        service.run(2.0)
        assert service.replicas[0].view.n == 6
        for _ in range(10):
            service.submit(Envelope.raw("ch0", 64))
        service.run(3.0)
        assert service.frontends[0].blocks_delivered == 2
        assert all(
            node.blocks_created == 2 for node in service.nodes
        )
