"""Tests for envelopes, blocks and the ledger hash chain."""

import pytest

from repro.fabric.block import (
    GENESIS_PREVIOUS_HASH,
    BlockHeader,
    compute_data_hash,
    genesis_block,
    make_block,
)
from repro.fabric.envelope import (
    ChaincodeProposal,
    Envelope,
    OversizedPayloadError,
    PayloadRef,
    ReadSet,
    WriteSet,
    check_payload_size,
    payload_digest,
    payload_length,
)
from repro.fabric.ledger import Ledger, LedgerError


def raw(size=100, channel="ch0"):
    return Envelope.raw(channel, size)


class TestEnvelope:
    def test_raw_envelope_has_no_transaction(self):
        envelope = raw()
        assert envelope.transaction is None
        assert envelope.payload_size == 100

    def test_envelope_ids_unique(self):
        assert raw().envelope_id != raw().envelope_id

    def test_digest_distinct_per_envelope(self):
        assert raw().digest() != raw().digest()

    def test_digest_stable(self):
        envelope = raw()
        assert envelope.digest() == envelope.digest()

    def test_proposal_digest_covers_fields(self):
        base = dict(
            channel_id="ch0", chaincode_id="cc", function="f",
            args=("a",), client="alice", nonce=1,
        )
        p1 = ChaincodeProposal(**base)
        p2 = ChaincodeProposal(**{**base, "nonce": 2})
        p3 = ChaincodeProposal(**{**base, "args": ("b",)})
        assert len({p1.digest(), p2.digest(), p3.digest()}) == 3

    def test_rwset_digests(self):
        r1 = ReadSet({"k": (0, 0)})
        r2 = ReadSet({"k": (0, 1)})
        assert r1.digest() != r2.digest()
        w1 = WriteSet({"k": "v"})
        w2 = WriteSet({"k": "w"})
        assert w1.digest() != w2.digest()


class TestPayloadRef:
    """Zero-copy payload handles must be indistinguishable from real
    bytes for every length/digest/validation path."""

    def test_real_bytes_handle_reports_exact_length_and_digest(self):
        import hashlib

        content = b"endorsed transaction payload"
        ref = PayloadRef.of_bytes(content)
        assert len(ref) == len(content)
        assert ref.digest() == hashlib.sha256(content).digest()

    def test_of_bytes_is_zero_copy(self):
        content = b"x" * 4096
        assert PayloadRef.of_bytes(content)._content is content

    def test_digest_computed_once_then_cached(self):
        ref = PayloadRef(1024)
        assert ref.digest() is ref.digest()

    def test_synthetic_digest_deterministic_per_length(self):
        assert PayloadRef(40).digest() == PayloadRef(40).digest()
        assert PayloadRef(40).digest() != PayloadRef(200).digest()

    def test_invalid_handles_rejected(self):
        with pytest.raises(ValueError):
            PayloadRef(-1)
        with pytest.raises(ValueError):
            PayloadRef(3, b"four")

    def test_helpers_agree_between_bytes_and_handle(self):
        content = b"some payload"
        ref = PayloadRef.of_bytes(content)
        assert payload_length(content) == payload_length(ref)
        assert payload_digest(content) == payload_digest(ref)
        assert payload_digest(bytearray(content)) == payload_digest(ref)

    def test_check_payload_size_accepts_at_ceiling(self):
        assert check_payload_size(PayloadRef(1024), 1024) == 1024
        assert check_payload_size(b"x" * 1024, 1024) == 1024

    def test_check_payload_size_rejects_handles_like_bytes(self):
        with pytest.raises(OversizedPayloadError):
            check_payload_size(PayloadRef(1025), 1024)
        with pytest.raises(OversizedPayloadError):
            check_payload_size(b"x" * 1025, 1024)

    def test_envelope_from_bytes_wraps_zero_copy(self):
        content = b"y" * 512
        envelope = Envelope.from_bytes("ch0", content)
        assert envelope.payload_size == 512
        assert envelope.payload_ref()._content is content
        assert envelope.transaction is None

    def test_raw_envelope_materializes_handle_lazily(self):
        envelope = Envelope.raw("ch0", 4096)
        assert envelope.payload is None
        ref = envelope.payload_ref()
        assert len(ref) == 4096
        assert envelope.payload_ref() is ref  # cached on the envelope


class TestFrontendOversizedRejection:
    """The frontend enforces AbsoluteMaxBytes identically for synthetic
    handles and real payload bytes (the paper's 10 MB Fabric ceiling,
    shrunk here for test speed)."""

    def _service(self, ceiling):
        from repro.fabric.channel import ChannelConfig
        from repro.ordering import OrderingServiceConfig, build_ordering_service

        return build_ordering_service(
            OrderingServiceConfig(
                f=1,
                channel=ChannelConfig("ch0", absolute_max_bytes=ceiling),
                physical_cores=None,
                latency=None,
                seed=0,
            )
        )

    def test_oversized_handle_and_bytes_both_rejected(self):
        service = self._service(ceiling=1024)
        frontend = service.frontends[0]
        with pytest.raises(OversizedPayloadError):
            frontend.submit(Envelope.raw("ch0", 1025))
        with pytest.raises(OversizedPayloadError):
            frontend.submit(Envelope.from_bytes("ch0", b"z" * 1025))
        assert frontend.envelopes_submitted == 0

    def test_at_ceiling_both_accepted(self):
        service = self._service(ceiling=1024)
        frontend = service.frontends[0]
        frontend.submit(Envelope.raw("ch0", 1024))
        frontend.submit(Envelope.from_bytes("ch0", b"z" * 1024))
        assert frontend.envelopes_submitted == 2


class TestBlock:
    def test_make_block_data_hash(self):
        envelopes = [raw(), raw()]
        block = make_block(0, GENESIS_PREVIOUS_HASH, envelopes)
        assert block.header.data_hash == compute_data_hash(envelopes)
        assert block.verify_data()

    def test_tampered_envelopes_detected(self):
        block = make_block(0, GENESIS_PREVIOUS_HASH, [raw(), raw()])
        block.envelopes.append(raw())
        assert not block.verify_data()

    def test_header_digest_changes_with_number(self):
        h1 = BlockHeader(0, GENESIS_PREVIOUS_HASH, b"\x01" * 32)
        h2 = BlockHeader(1, GENESIS_PREVIOUS_HASH, b"\x01" * 32)
        assert h1.digest() != h2.digest()

    def test_wire_size_includes_payload_and_signatures(self):
        block = make_block(0, GENESIS_PREVIOUS_HASH, [raw(1000)])
        empty = block.wire_size()
        block.signatures["orderer0"] = b"\x00" * 64
        assert block.wire_size() > empty
        assert block.wire_size() > 1000

    def test_genesis_block(self):
        block = genesis_block("mychannel")
        assert block.number == 0
        assert block.envelopes[0].is_config
        assert block.header.previous_hash == GENESIS_PREVIOUS_HASH


class TestLedger:
    def _chain(self, count=3):
        ledger = Ledger("ch0")
        for i in range(count):
            ledger.append(make_block(i, ledger.last_hash, [raw()], "ch0"))
        return ledger

    def test_append_and_height(self):
        ledger = self._chain(3)
        assert ledger.height == 3
        assert ledger.total_transactions() == 3

    def test_chain_verifies(self):
        assert self._chain(5).verify_chain()

    def test_wrong_number_rejected(self):
        ledger = self._chain(2)
        with pytest.raises(LedgerError):
            ledger.append(make_block(5, ledger.last_hash, [raw()]))

    def test_broken_hash_chain_rejected(self):
        ledger = self._chain(2)
        with pytest.raises(LedgerError):
            ledger.append(make_block(2, b"\xff" * 32, [raw()]))

    def test_data_hash_mismatch_rejected(self):
        ledger = self._chain(1)
        block = make_block(1, ledger.last_hash, [raw()])
        block.envelopes.append(raw())  # tamper after hashing
        with pytest.raises(LedgerError):
            ledger.append(block)

    def test_forging_middle_block_breaks_verification(self):
        """Figure 1's property: block j cannot be forged without
        forging all subsequent blocks."""
        ledger = self._chain(4)
        ledger._blocks[1] = make_block(1, ledger._blocks[0].header.digest(), [raw()])
        assert not ledger.verify_chain()

    def test_get_and_iterate(self):
        ledger = self._chain(3)
        assert ledger.get(1).number == 1
        assert [b.number for b in ledger] == [0, 1, 2]

    def test_empty_ledger_last_hash_is_genesis(self):
        assert Ledger().last_hash == GENESIS_PREVIOUS_HASH
