"""Cross-backend conformance battery: four orderers, one semantics.

Every ordering backend the repository implements -- solo, Kafka,
BFT-SMaRt and SmartBFT -- replays the same seeded workload through
:func:`repro.ordering.backends.run_backend_workload` and must produce
*byte-identical* committed block chains: same envelope sets, same
cutting decisions (count-, byte- and timeout-driven), same ingress
rejections, no forks, no duplicates.

Differential assertions then check what legitimately differs: SmartBFT
blocks must carry a valid ``2f+1`` signature quorum, and the committer
armed with the quorum policy must reject forged or under-signed blocks
that the crash-fault policies would wave through.
"""

import pytest

from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import SimulatedECDSA
from repro.fabric.block import make_block
from repro.fabric.blockpolicy import (
    AcceptAllBlocks,
    SignatureCountPolicy,
    SignatureQuorumPolicy,
    count_valid_signatures,
)
from repro.fabric.channel import ChannelConfig
from repro.fabric.committer import CommittingPeer
from repro.fabric.envelope import Envelope
from repro.ordering.backends import (
    BACKENDS,
    WorkloadSpec,
    run_backend_workload,
)
from repro.sim.core import Simulator
from repro.sim.network import ConstantLatency, Network
from repro.smart.view import byzantine_majority_size, one_correct_size

#: count-driven cutting + an oversized reject + a timeout-cut tail
STANDARD = WorkloadSpec(num_envelopes=24, block_size=4, oversized_at=(5,), seed=3)

#: byte-driven cutting: PreferredMaxBytes binds before the count does
BYTES_BOUND = WorkloadSpec(
    num_envelopes=12,
    payload_size=300,
    block_size=10,
    preferred_max_bytes=1000,
    seed=4,
)

_RUNS = {}


def get_run(backend: str, spec: WorkloadSpec):
    key = (backend, id(spec))
    if key not in _RUNS:
        _RUNS[key] = run_backend_workload(backend, spec)
    return _RUNS[key]


# ----------------------------------------------------------------------
# identical committed-block semantics
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("spec", [STANDARD, BYTES_BOUND], ids=["standard", "bytes"])
def test_backend_commits_workload(backend, spec):
    run = get_run(backend, spec)
    assert run.finished, f"{backend} did not commit the workload in time"
    expected = spec.num_envelopes - len(set(spec.oversized_at))
    assert len(run.committed_flat_ids) == expected


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("spec", [STANDARD, BYTES_BOUND], ids=["standard", "bytes"])
def test_chain_identical_across_backends(backend, spec):
    """The whole point: byte-identical header chains on every backend."""
    reference = get_run("solo", spec)
    run = get_run(backend, spec)
    assert run.header_digests == reference.header_digests
    assert run.committed_envelope_ids == reference.committed_envelope_ids


@pytest.mark.parametrize("backend", BACKENDS)
def test_no_duplicates_and_fifo_order(backend):
    run = get_run(backend, STANDARD)
    ids = run.committed_flat_ids
    assert len(ids) == len(set(ids)), "an envelope was committed twice"
    assert ids == sorted(ids), "single-client FIFO order was not preserved"


@pytest.mark.parametrize("backend", BACKENDS)
def test_oversized_envelope_rejected_at_ingress(backend):
    """AbsoluteMaxBytes: the oversized envelope never reaches a block."""
    run = get_run(backend, STANDARD)
    assert run.rejected_at_ingress == 1
    assert 5 not in run.committed_flat_ids


@pytest.mark.parametrize("backend", BACKENDS)
def test_count_cutting_and_timeout_tail(backend):
    """Blocks cut at max_message_count; the partial tail cuts on timeout."""
    run = get_run(backend, STANDARD)
    sizes = [len(block) for block in run.committed_envelope_ids]
    assert sizes[:-1] == [STANDARD.block_size] * (len(sizes) - 1)
    # 23 accepted envelopes: 5 full blocks of 4 + a timeout-cut tail of 3
    assert sizes[-1] == 3


@pytest.mark.parametrize("backend", BACKENDS)
def test_preferred_max_bytes_cutting(backend):
    """PreferredMaxBytes: byte-bound cuts happen identically everywhere."""
    run = get_run(backend, BYTES_BOUND)
    sizes = [len(block) for block in run.committed_envelope_ids]
    # 300-byte payloads against a 1000-byte ceiling: 3 envelopes per block
    assert sizes == [3, 3, 3, 3]


def test_no_fork_across_backends():
    """No backend diverges from any other on the same prefix."""
    chains = {b: get_run(b, STANDARD).header_digests for b in BACKENDS}
    lengths = {len(c) for c in chains.values()}
    assert len(lengths) == 1
    first = chains[BACKENDS[0]]
    for backend, chain in chains.items():
        assert chain == first, f"{backend} forked from {BACKENDS[0]}"


# ----------------------------------------------------------------------
# differential: SmartBFT signature quorums
# ----------------------------------------------------------------------
def test_smartbft_blocks_carry_signature_quorum():
    run = get_run("smartbft", STANDARD)
    service = run.extras["service"]
    quorum = byzantine_majority_size(STANDARD.f)
    names = {f"orderer{i}" for i in range(service.config.n)}
    for block in run.committed_blocks:
        valid = count_valid_signatures(block, service.registry, names)
        assert valid >= quorum, (
            f"block {block.header.number} carries {valid} valid signatures, "
            f"needs {quorum}"
        )


def test_bftsmart_blocks_carry_merged_signatures():
    """Copy-matching merges signatures: at least f+1 land on the block."""
    run = get_run("bftsmart", STANDARD)
    service = run.extras["service"]
    names = {f"orderer{i}" for i in range(service.config.n)}
    for block in run.committed_blocks:
        valid = count_valid_signatures(block, service.registry, names)
        assert valid >= one_correct_size(STANDARD.f)


# ----------------------------------------------------------------------
# differential: committer-side quorum enforcement
# ----------------------------------------------------------------------
def _quorum_harness(f=1):
    sim = Simulator()
    network = Network(sim, ConstantLatency(0.0001))
    registry = KeyRegistry(scheme=SimulatedECDSA())
    n = 3 * f + 1
    identities = [
        registry.enroll(f"orderer{i}", org=f"ordererorg{i}") for i in range(n)
    ]
    channel = ChannelConfig(channel_id="ch0")
    peer = CommittingPeer(
        sim,
        network,
        "peer0",
        channel,
        registry=registry,
        orderer_names={i.name for i in identities},
        block_policy=SignatureQuorumPolicy(
            f, registry=registry, orderer_names={i.name for i in identities}
        ),
    )
    network.register("peer0", peer)
    return sim, registry, identities, peer


def _signed_block(identities, signers):
    from repro.fabric.block import GENESIS_PREVIOUS_HASH

    envelope = Envelope.raw("ch0", payload_size=64, submitter="c")
    envelope.envelope_id = 0
    block = make_block(0, GENESIS_PREVIOUS_HASH, [envelope], channel_id="ch0")
    payload = block.header.signing_payload()
    for identity in signers:
        block.signatures[identity.name] = identity.sign(payload)
    return block


def test_committer_accepts_valid_quorum():
    _sim, _registry, identities, peer = _quorum_harness(f=1)
    block = _signed_block(identities, identities[:3])  # 2f+1 = 3
    peer.receive_block(block)
    assert peer.ledger.height == 1
    assert peer.rejected_blocks == 0


def test_committer_rejects_insufficient_quorum():
    _sim, _registry, identities, peer = _quorum_harness(f=1)
    block = _signed_block(identities, identities[:2])  # only 2 < 2f+1
    peer.receive_block(block)
    assert peer.ledger.height == 0
    assert peer.rejected_blocks == 1


def test_committer_rejects_forged_signatures():
    _sim, _registry, identities, peer = _quorum_harness(f=1)
    block = _signed_block(identities, identities[:2])
    # a third "signature" forged by an attacker without orderer2's key
    block.signatures[identities[2].name] = b"\x00" * 64
    peer.receive_block(block)
    assert peer.ledger.height == 0
    assert peer.rejected_blocks == 1


def test_committer_rejects_outsider_signatures():
    _sim, registry, identities, peer = _quorum_harness(f=1)
    outsider = registry.enroll("mallory", org="attackers")
    block = _signed_block(identities, identities[:2])
    payload = block.header.signing_payload()
    block.signatures[outsider.name] = outsider.sign(payload)
    peer.receive_block(block)
    assert peer.ledger.height == 0
    assert peer.rejected_blocks == 1


def test_count_policy_matches_legacy_committer_behaviour():
    """The refactor is behaviour-preserving for existing call sites."""
    _sim, _registry, identities, _peer = _quorum_harness(f=1)
    block = _signed_block(identities, identities[:2])
    registry = _registry
    names = {i.name for i in identities}
    assert AcceptAllBlocks().check(block)
    assert SignatureCountPolicy(0).check(block)  # disabled check
    assert SignatureCountPolicy(2, registry, names).check(block)
    assert not SignatureCountPolicy(3, registry, names).check(block)
    assert not SignatureQuorumPolicy(1, registry, names).check(block)
