"""WHEAT [23]: a BFT-SMaRt variant optimized for geo-replication.

WHEAT differs from baseline BFT-SMaRt in exactly two ways (paper
section 4), both implemented by the shared replica/view machinery and
merely *configured* here:

1. **Weighted quorums**: with ``n = 3f + 1 + delta`` replicas, the
   ``2f`` expected-fastest replicas receive weight ``Vmax = 1 +
   delta/f`` and the rest ``Vmin = 1``; WRITE/ACCEPT quorums need
   ``2 f Vmax + 1`` votes.  A spare fast replica thus lets quorums
   form without waiting for distant ones.
2. **Tentative executions** (from PBFT): deliver after the WRITE
   quorum, run ACCEPT asynchronously, keep undo snapshots, and make
   clients wait for a full quorum of matching replies.

The paper's geo experiment uses five replicas (Oregon, Ireland,
Sydney, São Paulo + Virginia as WHEAT's spare), with Oregon and
Virginia holding ``Vmax = 2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.smart.view import View, binary_weights


@dataclass(frozen=True)
class WheatConfig:
    """How a deployment applies WHEAT's two optimizations."""

    delta: int = 1
    tentative_execution: bool = True


def wheat_view(
    view_id: int,
    processes: Sequence[int],
    f: int,
    delta: int = 1,
    vmax_holders: Optional[Iterable[int]] = None,
) -> View:
    """Build a WHEAT view with binary weights.

    ``vmax_holders`` names the 2f replicas that get Vmax (pass the ones
    closest to clients/leader, as the paper does with Oregon+Virginia).
    """
    weights = binary_weights(tuple(processes), f, delta, vmax_holders)
    return View(
        view_id=view_id, processes=tuple(processes), f=f, delta=delta, weights=weights
    )


def rank_by_latency(
    latency_to_others: Dict[int, float], processes: Sequence[int]
) -> List[int]:
    """Order replicas fastest-first by a latency metric (lower=faster)."""
    return sorted(processes, key=lambda p: latency_to_others.get(p, float("inf")))


def optimal_vmax_assignment(
    rtt_matrix: Dict[Tuple[int, int], float], processes: Sequence[int], f: int
) -> List[int]:
    """Pick the 2f replicas with the lowest median RTT to the rest.

    This follows WHEAT's empirical finding that the best weight
    distribution favours the best-connected replicas.
    """
    def median_rtt(p: int) -> float:
        rtts = sorted(
            rtt_matrix.get((p, q), rtt_matrix.get((q, p), 0.0))
            for q in processes
            if q != p
        )
        mid = len(rtts) // 2
        if len(rtts) % 2:
            return rtts[mid]
        return 0.5 * (rtts[mid - 1] + rtts[mid])

    ranked = sorted(processes, key=median_rtt)
    return ranked[: 2 * f]
