"""Figure 7's central trend, measured on the full simulated stack.

Complements the capacity-model panels in ``bench_fig7_lan_throughput``:
here the *entire* system (clients -> frontends -> BFT-SMaRt consensus
-> block cutter -> signing pool -> dissemination over a shared 1 Gb/s
NIC) runs end to end while the number of receivers sweeps 1 -> 4 -> 16,
and end-to-end delivered throughput must fall monotonically -- the
paper's headline LAN effect.

Asserts on the receiver axis of the registered ``fig7_lan_sim`` matrix.
"""

import pytest

pytestmark = pytest.mark.bench


def test_receiver_sweep_end_to_end(bench_result):
    result = bench_result("fig7_lan_sim")

    delivered = dict(
        result.series("delivered_tx_per_sec", over="receivers", envelope_size=1024)
    )
    # the paper's shape: fewer transactions get through as fan-out grows
    assert delivered[1] >= delivered[4] * 0.99
    assert delivered[4] > delivered[16]
    # and the decline is substantial by 16 receivers (NIC-bound)
    assert delivered[16] < 0.8 * delivered[1]
    # generation at node 0 stays decoupled from fan-out only until the
    # NIC saturates; sanity-check it never exceeds the offered load
    for point in result.points:
        assert (
            point.metrics["generated_tx_per_sec"].median
            <= point.metrics["offered_tx_per_sec"].median * 1.05
        )
