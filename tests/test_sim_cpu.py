"""Unit tests for the CPU / thread-pool model."""

import pytest

from repro.sim import CPU, ThreadPool


@pytest.fixture
def cpu(sim):
    return CPU(sim, physical_cores=8, hardware_threads=16, ht_yield=1.3)


class TestCapacity:
    def test_single_task_full_speed(self, cpu):
        assert cpu.capacity(1) == pytest.approx(1.0)

    def test_linear_up_to_physical_cores(self, cpu):
        assert cpu.capacity(8) == pytest.approx(8.0)

    def test_hyperthreading_yield(self, cpu):
        assert cpu.capacity(16) == pytest.approx(8 * 1.3)

    def test_capacity_caps_at_hardware_threads(self, cpu):
        assert cpu.capacity(100) == cpu.capacity(16)

    def test_background_load_shrinks_capacity(self, sim):
        cpu = CPU(sim)
        cpu.set_background_load(0.5)
        assert cpu.capacity(8) == pytest.approx(4.0)

    def test_invalid_background_load(self, cpu):
        with pytest.raises(ValueError):
            cpu.set_background_load(1.0)

    def test_invalid_parameters(self, sim):
        with pytest.raises(ValueError):
            CPU(sim, physical_cores=0)
        with pytest.raises(ValueError):
            CPU(sim, physical_cores=8, hardware_threads=4)
        with pytest.raises(ValueError):
            CPU(sim, ht_yield=2.5)


class TestExecution:
    def test_single_task_duration(self, sim, cpu):
        future = cpu.submit(2.0)
        sim.run()
        assert future.done
        assert sim.now == pytest.approx(2.0)

    def test_zero_work_completes_immediately(self, sim, cpu):
        future = cpu.submit(0.0)
        sim.run()
        assert future.done
        assert sim.now == 0.0

    def test_negative_work_rejected(self, cpu):
        with pytest.raises(ValueError):
            cpu.submit(-1.0)

    def test_parallel_tasks_share_cores(self, sim, cpu):
        futures = [cpu.submit(1.0) for _ in range(8)]
        sim.run()
        assert all(f.done for f in futures)
        assert sim.now == pytest.approx(1.0)  # 8 tasks, 8 cores

    def test_oversubscription_slows_down(self, sim, cpu):
        futures = [cpu.submit(1.0) for _ in range(16)]
        sim.run()
        assert all(f.done for f in futures)
        # 16 core-seconds of work / 10.4 core capacity
        assert sim.now == pytest.approx(16.0 / 10.4, rel=1e-6)

    def test_queueing_beyond_hardware_threads(self, sim, cpu):
        futures = [cpu.submit(1.0) for _ in range(32)]
        assert cpu.queued_tasks == 16
        sim.run()
        assert all(f.done for f in futures)
        assert sim.now == pytest.approx(2 * 16.0 / 10.4, rel=1e-6)

    def test_throughput_matches_capacity(self, sim, cpu):
        """Figure 6's premise: sustained rate = capacity / cost."""
        cost = 0.001
        done = [0]
        for _ in range(20000):
            cpu.submit(cost).add_callback(lambda _f: done.__setitem__(0, done[0] + 1))
        sim.run(until=1.0)
        assert done[0] == pytest.approx(10.4 / cost, rel=0.05)

    def test_tasks_completed_counter(self, sim, cpu):
        for _ in range(5):
            cpu.submit(0.1)
        sim.run()
        assert cpu.tasks_completed == 5

    def test_utilization(self, sim, cpu):
        cpu.submit(1.0)
        sim.run()
        assert cpu.utilization(1.0) == pytest.approx(1.0 / 8.0)


class TestThreadPool:
    def test_pool_limits_concurrency(self, sim, cpu):
        pool = ThreadPool(cpu, workers=2)
        for _ in range(4):
            pool.submit(1.0)
        assert pool.in_flight == 2
        assert pool.backlog == 2
        sim.run()
        assert pool.tasks_completed == 4
        assert sim.now == pytest.approx(2.0)

    def test_pool_callback(self, sim, cpu):
        pool = ThreadPool(cpu, workers=1)
        seen = []
        pool.submit(0.5, seen.append, "done")
        sim.run()
        assert seen == ["done"]

    def test_single_worker_serializes(self, sim, cpu):
        pool = ThreadPool(cpu, workers=1)
        for _ in range(3):
            pool.submit(1.0)
        sim.run()
        assert sim.now == pytest.approx(3.0)

    def test_sixteen_workers_reach_ht_capacity(self, sim, cpu):
        """The paper's 16 signing threads on 16 hardware threads."""
        pool = ThreadPool(cpu, workers=16)
        count = 2080  # 16 * 130
        for _ in range(count):
            pool.submit(0.01)
        sim.run()
        assert sim.now == pytest.approx(count * 0.01 / 10.4, rel=0.01)

    def test_invalid_worker_count(self, cpu):
        with pytest.raises(ValueError):
            ThreadPool(cpu, workers=0)

    def test_two_pools_compete_for_cpu(self, sim, cpu):
        pool_a = ThreadPool(cpu, workers=8)
        pool_b = ThreadPool(cpu, workers=8)
        for _ in range(8):
            pool_a.submit(1.0)
            pool_b.submit(1.0)
        sim.run()
        assert sim.now == pytest.approx(16.0 / 10.4, rel=1e-6)
