"""Inline suppressions shared by ``repro.analysis`` and ``tools/lint.py``.

One syntax for both checkers::

    open_cid = pick_from(reports)  # repro: allow[DET004] arrival order is the contract

A suppression names the rule(s) it silences (comma-separated inside the
brackets) and applies to findings reported on its own line.  Unlike a
bare ``# noqa``, a suppression must name a *known* rule: a typo'd or
stale rule id is itself reported (``SUP001``) so suppressions cannot
rot silently.  Trailing prose after the closing bracket is encouraged --
it is the justification a reviewer reads.

The known-rule universe is the union of the ``repro.analysis`` rule
catalog, the DetSan runtime rules, and the codes the ``tools/lint.py``
AST fallback implements, so either checker accepts a suppression aimed
at the other without flagging it as unknown.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Set, Tuple

#: ``# repro: allow[DET001, DET004] optional justification``
SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")

#: Rule ids implemented by the ``tools/lint.py`` AST fallback (kept
#: here so both checkers agree on the known-rule universe).
LINT_FALLBACK_RULES = (
    "E711",
    "E712",
    "E722",
    "E999",
    "F401",
    "F541",
    "F811",
    "F841",
)

#: Static-analysis rules (:mod:`repro.analysis.rules`).
STATIC_RULES = (
    "DET001",
    "DET002",
    "DET003",
    "DET004",
    "DET005",
    "PROTO001",
    "PROTO002",
    "PROTO003",
)

#: Runtime-sanitizer rules (:mod:`repro.analysis.detsan`).
DETSAN_RULES = (
    "DETSAN001",
    "DETSAN002",
    "DETSAN003",
    "DETSAN004",
)

#: Message-flow taint rules (:mod:`repro.analysis.flow`).
FLOW_RULES = (
    "FLOW001",
    "FLOW002",
    "FLOW003",
)

#: Schedule-race sanitizer rules (:mod:`repro.analysis.racesan`).
RACESAN_RULES = ("RACESAN001",)

#: The meta-rule for malformed/unknown suppressions.
UNKNOWN_SUPPRESSION = "SUP001"

KNOWN_RULE_IDS: Set[str] = {
    *LINT_FALLBACK_RULES,
    *STATIC_RULES,
    *DETSAN_RULES,
    *FLOW_RULES,
    *RACESAN_RULES,
    UNKNOWN_SUPPRESSION,
}


def parse_suppressions(
    source: str,
    known_rules: Iterable[str] = (),
) -> Tuple[Dict[int, Set[str]], List[Tuple[int, str]]]:
    """Extract inline ``repro: allow`` markers from ``source``.

    Returns ``(suppressions, unknown)`` where ``suppressions`` maps a
    1-based line number to the set of rule ids allowed on that line,
    and ``unknown`` lists ``(line, rule_id)`` pairs naming rules outside
    ``known_rules`` (defaults to the full :data:`KNOWN_RULE_IDS`
    universe).  Unknown rules are *not* added to the suppression set:
    a typo never silences anything.
    """
    universe = set(known_rules) or KNOWN_RULE_IDS
    suppressions: Dict[int, Set[str]] = {}
    unknown: List[Tuple[int, str]] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        for match in SUPPRESS_RE.finditer(line):
            names = [name.strip() for name in match.group(1).split(",")]
            for name in names:
                if not name:
                    unknown.append((lineno, "<empty>"))
                    continue
                if name not in universe:
                    unknown.append((lineno, name))
                    continue
                suppressions.setdefault(lineno, set()).add(name)
    return suppressions, unknown


def is_suppressed(
    suppressions: Dict[int, Set[str]], lineno: int, rule: str
) -> bool:
    """Is ``rule`` allowed on ``lineno`` by an inline suppression?"""
    return rule in suppressions.get(lineno, ())
