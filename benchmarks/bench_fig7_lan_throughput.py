"""Figure 7 (a-f): ordering throughput in the Gigabit LAN.

Paper results reproduced as shapes:

- with 10-envelope blocks the peak is ~50 k tx/s (signing-bound,
  shared CPU with the replication protocol -- below the 84 k
  stand-alone bound of Figure 6);
- with 100-envelope blocks small envelopes reach much higher
  throughput (~1,100 blocks/s of 100 envelopes);
- throughput falls as receivers grow, but the effect is far smaller
  for 1/4 KB envelopes (replication-protocol-bound);
- larger clusters are slower for large envelopes; the worst case
  (10 nodes, 4 KB, 32 receivers) still clears ~2,200 tx/s;
- at 16-32 receivers, block- and cluster-size variants of the same
  envelope size converge.

The six panels come from the calibrated capacity model; a full-stack
discrete-event simulation cross-validates an operating point per
binding resource.
"""

import pytest

from repro.bench.figures import (
    BLOCK_SIZES,
    CLUSTER_SIZES,
    ENVELOPE_SIZES,
    RECEIVER_COUNTS,
    figure7_all_panels,
    figure7_panel,
    simulate_lan_throughput,
)
from repro.bench.tables import render_figure7_panel, render_lan_sim


@pytest.mark.benchmark(group="figure7")
def test_figure7_all_panels(benchmark, record_result):
    panels = benchmark.pedantic(figure7_all_panels, rounds=1, iterations=1)
    text = []
    for (orderers, block_size), panel in sorted(panels.items()):
        text.append(render_figure7_panel(orderers, block_size, panel))
    record_result("figure7", "\n\n".join(text))

    for (orderers, block_size), panel in panels.items():
        for es in ENVELOPE_SIZES:
            series = [panel[es][r] for r in RECEIVER_COUNTS]
            # shape: monotone non-increasing in receivers
            assert all(a >= b * 0.999 for a, b in zip(series, series[1:]))
        for r in RECEIVER_COUNTS:
            by_size = [panel[es][r] for es in ENVELOPE_SIZES]
            # shape: smaller envelopes never do worse
            assert all(a >= b * 0.999 for a, b in zip(by_size, by_size[1:]))

    # peak ~50k tx/s for 10-envelope blocks (paper: ~50,000)
    peak_10 = panels[(4, 10)][40][1]
    assert 45_000 < peak_10 < 60_000
    # 100-envelope blocks lift small-envelope throughput
    assert panels[(4, 100)][40][1] > panels[(4, 10)][40][1]
    # worst case (10 orderers, 4 KB, 32 receivers) ~2,200 tx/s
    floor = panels[(10, 100)][4096][32]
    assert 1_500 < floor < 3_000
    # receiver impact smaller for big envelopes (relative drop 1->32)
    drop_small = panels[(4, 10)][40][1] / panels[(4, 10)][40][32]
    drop_large = panels[(4, 10)][4096][1] / panels[(4, 10)][4096][32]
    assert drop_large < drop_small
    # convergence: at 32 receivers, the (cluster, block) spread of each
    # envelope size is much tighter than at 1 receiver
    for es in (1024, 4096):
        at_1 = [panels[key][es][1] for key in panels]
        at_32 = [panels[key][es][32] for key in panels]
        assert (max(at_32) / min(at_32)) < (max(at_1) / min(at_1)) * 1.01


@pytest.mark.benchmark(group="figure7")
def test_figure7_block_rate_about_1100(benchmark, record_result):
    """§6.2: ~1,100 blocks/s when cutting 100-envelope blocks."""
    panel = benchmark.pedantic(
        lambda: figure7_panel(4, 100), rounds=1, iterations=1
    )
    block_rate = panel[200][4] / 100.0
    record_result(
        "figure7_blockrate",
        f"block rate at (4 orderers, 100 env/block, 200 B, 4 recv): "
        f"{block_rate:.0f} blocks/s (paper: ~1,100)",
    )
    assert 300 < block_rate < 3_000


@pytest.mark.benchmark(group="figure7-sim")
def test_figure7_simulation_cross_validation(benchmark, record_result):
    """Full-stack DES vs capacity model on three operating points."""

    def run_all():
        return [
            # propose-bandwidth-bound: model and sim should agree well
            simulate_lan_throughput(4, 10, 1024, 2, duration=1.0, warmup=0.3),
            # signing-bound small envelopes
            simulate_lan_throughput(4, 10, 200, 1, duration=0.6, warmup=0.2),
            # dissemination-heavy
            simulate_lan_throughput(4, 10, 4096, 8, duration=1.0, warmup=0.3),
        ]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    record_result("figure7_sim_validation", render_lan_sim(results))
    bw_bound = results[0]
    assert bw_bound.generated_rate == pytest.approx(
        bw_bound.model_prediction, rel=0.25
    )
    for result in results:
        # same order of magnitude in every regime
        assert result.generated_rate > result.model_prediction * 0.3
        assert result.generated_rate < result.model_prediction * 3.0
