"""Durable operation log and checkpoints.

Paper section 5.2: the ordering service's state is tiny (next block
sequence number + previous block hash), so frequent checkpoints are
cheap and the operation log stays short.  This module provides:

- :class:`OperationLog` -- the in-memory decided-batch log with
  checkpoint-based truncation, used by every replica;
- :class:`FileBackedLog` -- the same interface persisted to disk in a
  simple append-only record format, recoverable after a crash (used by
  durability tests and available to deployments that want real
  persistence).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from repro.crypto.hashing import sha256
from repro.smart.messages import ClientRequest


@dataclass
class Checkpoint:
    """A snapshot of application state after executing ``cid``."""

    cid: int
    state: Any
    state_hash: bytes


class OperationLog:
    """Decided batches since the last checkpoint.

    Entries are ``(cid, batch)`` in execution order.  ``truncate`` is
    called when a new checkpoint is stored, discarding all entries the
    checkpoint covers -- exactly BFT-SMaRt's log management.
    """

    def __init__(self):
        self._entries: List[Tuple[int, List[ClientRequest]]] = []
        self.checkpoint: Optional[Checkpoint] = None

    def append(self, cid: int, batch: List[ClientRequest]) -> None:
        if self._entries and cid <= self._entries[-1][0]:
            raise ValueError(f"log must grow monotonically (got cid={cid})")
        self._entries.append((cid, batch))

    def set_checkpoint(self, checkpoint: Checkpoint) -> None:
        """Install a checkpoint and truncate entries it covers."""
        self.checkpoint = checkpoint
        self._entries = [(c, b) for c, b in self._entries if c > checkpoint.cid]

    def entries_after(self, cid: int) -> List[Tuple[int, List[ClientRequest]]]:
        return [(c, b) for c, b in self._entries if c > cid]

    @property
    def entries(self) -> List[Tuple[int, List[ClientRequest]]]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def last_cid(self) -> int:
        if self._entries:
            return self._entries[-1][0]
        if self.checkpoint is not None:
            return self.checkpoint.cid
        return -1


def state_digest(state: Any) -> bytes:
    """Canonical hash of an application-state snapshot."""
    return sha256("state", _jsonable(state))


def _jsonable(value: Any) -> Any:
    """Normalize a snapshot into canonically encodable primitives."""
    if isinstance(value, (bytes, str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


class FileBackedLog(OperationLog):
    """An :class:`OperationLog` that survives process restarts.

    Records are JSON lines: ``{"cid": ..., "ops": [...]}`` for batch
    entries and ``{"checkpoint": cid, "state": ...}`` for checkpoints.
    Operations must be JSON-serializable (or convertible through the
    ``encode_op``/``decode_op`` hooks).
    """

    def __init__(
        self,
        path: str,
        encode_op: Optional[Callable[[Any], Any]] = None,
        decode_op: Optional[Callable[[Any], Any]] = None,
    ):
        super().__init__()
        self.path = path
        self._encode_op = encode_op or (lambda op: op)
        self._decode_op = decode_op or (lambda op: op)
        if os.path.exists(path):
            self._recover()

    def append(self, cid: int, batch: List[ClientRequest]) -> None:
        super().append(cid, batch)
        record = {
            "cid": cid,
            "reqs": [
                {
                    "client": r.client_id,
                    "seq": r.sequence,
                    "op": self._encode_op(r.operation),
                    "size": r.size_bytes,
                }
                for r in batch
            ],
        }
        self._write(record)

    def set_checkpoint(self, checkpoint: Checkpoint) -> None:
        super().set_checkpoint(checkpoint)
        self._write(
            {
                "checkpoint": checkpoint.cid,
                "state": _jsonable(checkpoint.state),
                "hash": checkpoint.state_hash.hex(),
            }
        )

    def _write(self, record: dict) -> None:
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def _recover(self) -> None:
        """Rebuild in-memory state from the on-disk record stream."""
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if "checkpoint" in record:
                    OperationLog.set_checkpoint(
                        self,
                        Checkpoint(
                            cid=record["checkpoint"],
                            state=record["state"],
                            state_hash=bytes.fromhex(record["hash"]),
                        ),
                    )
                else:
                    batch = [
                        ClientRequest(
                            client_id=r["client"],
                            sequence=r["seq"],
                            operation=self._decode_op(r["op"]),
                            size_bytes=r["size"],
                        )
                        for r in record["reqs"]
                    ]
                    OperationLog.append(self, record["cid"], batch)
