"""Property-based tests for blocks, ledgers, cutters and the state DB."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.block import make_block
from repro.fabric.channel import ChannelConfig
from repro.fabric.envelope import Envelope
from repro.fabric.ledger import Ledger
from repro.fabric.statedb import VersionedKVStore
from repro.ordering.blockcutter import BlockCutter
from repro.smart.batching import PendingQueue
from repro.smart.messages import ClientRequest


class TestLedgerChain:
    @given(st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=12))
    @settings(max_examples=40)
    def test_chain_always_verifies(self, block_sizes):
        ledger = Ledger("ch0")
        for size in block_sizes:
            envelopes = [Envelope.raw("ch0", 10) for _ in range(size)]
            ledger.append(make_block(ledger.height, ledger.last_hash, envelopes, "ch0"))
        assert ledger.verify_chain()
        assert ledger.total_transactions() == sum(block_sizes)

    @given(
        st.lists(st.integers(min_value=1, max_value=3), min_size=2, max_size=8),
        st.data(),
    )
    @settings(max_examples=40)
    def test_any_tamper_breaks_verification(self, block_sizes, data):
        ledger = Ledger("ch0")
        for size in block_sizes:
            envelopes = [Envelope.raw("ch0", 10) for _ in range(size)]
            ledger.append(make_block(ledger.height, ledger.last_hash, envelopes, "ch0"))
        victim = data.draw(st.integers(0, ledger.height - 2))
        # replace a middle block with a forged one of the same number
        forged = make_block(
            victim,
            ledger.get(victim).header.previous_hash,
            [Envelope.raw("ch0", 11)],
            "ch0",
        )
        ledger._blocks[victim] = forged
        assert not ledger.verify_chain()


class TestBlockCutterProperties:
    @given(
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=50, max_value=400),
        st.lists(st.integers(min_value=1, max_value=200), min_size=0, max_size=60),
    )
    @settings(max_examples=60)
    def test_no_envelope_lost_duplicated_or_reordered(
        self, max_count, max_bytes, sizes
    ):
        config = ChannelConfig(
            "ch0", max_message_count=max_count, preferred_max_bytes=max_bytes
        )
        cutter = BlockCutter(config)
        envelopes = [Envelope.raw("ch0", size) for size in sizes]
        out = []
        for envelope in envelopes:
            for batch in cutter.ordered(envelope):
                out.extend(batch)
        out.extend(cutter.cut())
        assert [e.envelope_id for e in out] == [e.envelope_id for e in envelopes]

    @given(
        st.integers(min_value=1, max_value=7),
        st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=60),
    )
    @settings(max_examples=60)
    def test_batches_respect_count_limit(self, max_count, sizes):
        config = ChannelConfig("ch0", max_message_count=max_count)
        cutter = BlockCutter(config)
        for size in sizes:
            for batch in cutter.ordered(Envelope.raw("ch0", size)):
                assert 0 < len(batch) <= max_count


class TestPendingQueueProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 20)),
            min_size=0,
            max_size=40,
        )
    )
    @settings(max_examples=60)
    def test_drain_everything_preserves_fifo_of_first_occurrence(self, id_pairs):
        queue = PendingQueue(max_batch=7)
        seen = set()
        expected = []
        for client, seq in id_pairs:
            request = ClientRequest(client_id=client, sequence=seq, operation=None)
            queue.add(request, 0.0)
            if (client, seq) not in seen:
                seen.add((client, seq))
                expected.append((client, seq))
        drained = []
        while len(queue):
            batch = queue.next_batch()
            assert 0 < len(batch) <= 7
            drained.extend(r.request_id for r in batch)
        assert drained == expected


class TestStateDB:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c", "d"]),
                st.one_of(st.none(), st.integers(0, 100)),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=60)
    def test_matches_plain_dict_semantics(self, writes):
        store = VersionedKVStore()
        reference = {}
        for index, (key, value) in enumerate(writes):
            store.apply_write(key, value, (0, index))
            if value is None:
                reference.pop(key, None)
            else:
                reference[key] = value
        assert {k: store.get_value(k) for k in store.keys()} == reference

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]), st.integers(0, 9), max_size=3
        )
    )
    @settings(max_examples=40)
    def test_snapshot_restore_identity(self, mapping):
        store = VersionedKVStore()
        for index, (key, value) in enumerate(sorted(mapping.items())):
            store.apply_write(key, value, (1, index))
        clone = VersionedKVStore()
        clone.restore(store.snapshot())
        assert clone.snapshot() == store.snapshot()
        assert clone.height == store.height
