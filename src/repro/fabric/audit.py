"""Ledger auditing: chain verification across peers.

Downstream tooling for operators of a deployment: verify a single
ledger's integrity end to end (hash chain, data hashes, ordering-node
signature coverage) and compare ledgers across peers to detect forks
-- the failure the Kafka-based orderer exhibits under a Byzantine
broker and the BFT service prevents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.crypto.keys import KeyRegistry
from repro.fabric.block import GENESIS_PREVIOUS_HASH, Block
from repro.fabric.ledger import Ledger


@dataclass
class BlockAuditRecord:
    """Findings for one block."""

    number: int
    chain_ok: bool
    data_ok: bool
    valid_signatures: int
    invalid_signatures: int
    unknown_signers: int

    @property
    def ok(self) -> bool:
        return self.chain_ok and self.data_ok and self.invalid_signatures == 0


@dataclass
class AuditReport:
    """Full single-ledger audit."""

    channel_id: str
    height: int
    records: List[BlockAuditRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(record.ok for record in self.records)

    @property
    def min_signatures(self) -> int:
        if not self.records:
            return 0
        return min(record.valid_signatures for record in self.records)

    def problems(self) -> List[BlockAuditRecord]:
        return [record for record in self.records if not record.ok]


def audit_ledger(
    ledger: Ledger,
    registry: Optional[KeyRegistry] = None,
    orderer_names: Optional[Set[str]] = None,
) -> AuditReport:
    """Verify a ledger block by block.

    Checks the number sequence, the previous-header hash links, the
    data hashes, and -- when a ``registry`` is given -- every
    ordering-node signature on every block (restricted to
    ``orderer_names`` when provided).
    """
    report = AuditReport(channel_id=ledger.channel_id, height=ledger.height)
    previous = GENESIS_PREVIOUS_HASH
    for number, block in enumerate(ledger):
        chain_ok = block.header.number == number and block.header.previous_hash == previous
        data_ok = block.verify_data()
        valid = invalid = unknown = 0
        if registry is not None:
            payload = block.header.signing_payload()
            for signer, signature in sorted(block.signatures.items()):
                if orderer_names is not None and signer not in orderer_names:
                    unknown += 1
                    continue
                if signer not in registry:
                    unknown += 1
                    continue
                if registry.verifier_of(signer).verify(payload, signature):
                    valid += 1
                else:
                    invalid += 1
        else:
            valid = len(block.signatures)
        report.records.append(
            BlockAuditRecord(
                number=number,
                chain_ok=chain_ok,
                data_ok=data_ok,
                valid_signatures=valid,
                invalid_signatures=invalid,
                unknown_signers=unknown,
            )
        )
        previous = block.header.digest()
    return report


@dataclass
class ForkReport:
    """Result of comparing ledgers across peers."""

    common_height: int
    fork_at: Optional[int]
    diverging_peers: Dict[str, bytes] = field(default_factory=dict)

    @property
    def forked(self) -> bool:
        return self.fork_at is not None


def compare_ledgers(ledgers: Dict[str, Ledger]) -> ForkReport:
    """Find the first height at which any two peers' chains diverge.

    Peers may be at different heights (that is lag, not a fork); a
    *fork* is two blocks with the same number but different header
    digests.
    """
    if not ledgers:
        return ForkReport(common_height=0, fork_at=None)
    common_height = min(ledger.height for ledger in ledgers.values())
    for number in range(common_height):
        digests = {
            peer: ledger.get(number).header.digest()
            for peer, ledger in ledgers.items()
        }
        if len(set(digests.values())) > 1:
            return ForkReport(
                common_height=common_height,
                fork_at=number,
                diverging_peers=digests,
            )
    return ForkReport(common_height=common_height, fork_at=None)


def signature_coverage(block: Block, registry: KeyRegistry) -> int:
    """Count the valid ordering-node signatures on one block."""
    payload = block.header.signing_payload()
    return sum(
        1
        for signer, signature in block.signatures.items()
        if signer in registry
        and registry.verifier_of(signer).verify(payload, signature)
    )
