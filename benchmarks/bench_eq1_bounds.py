"""Equation 1 and the §8 conclusion comparison.

Eq. 1:  TP_os <= min(TP_sign * bs, TP_bftsmart(bs, es, r))

The benchmark checks the bound against both the capacity model
(registered ``eq1_bounds`` matrix) and a full-stack simulated
measurement (``fig7_lan_sim``), and regenerates the paper's closing
comparison against Ethereum (1,000 tx/s theoretical) and Bitcoin
(7 tx/s) via the registered ``conclusion`` benchmark.
"""

import pytest

from repro.bench.model import eq1_bound

pytestmark = pytest.mark.bench


def test_eq1_bounds_hold_everywhere(bench_result):
    result = bench_result("eq1_bounds")
    for point in result.points:
        predicted = point.metrics["predicted_tx_per_sec"].median
        bound = point.metrics["eq1_bound_tx_per_sec"].median
        assert predicted <= bound * 1.0001, point.params
        assert point.metrics["headroom_tx_per_sec"].median >= -1e-6 * bound


def test_eq1_holds_for_simulated_measurement(bench_result):
    """A real (simulated) measurement must stay below the bound, like
    the paper's measured 50k < 84k for 10-envelope blocks.

    The bound is exact in the signing-bound regime (small envelopes);
    at bandwidth-bound points the short measurement window lets the
    node-0 signing meter burst briefly above the sustained bound, so
    those points get a transient tolerance.
    """
    result = bench_result("fig7_lan_sim")
    for point in result.points:
        bound = eq1_bound(
            point.params["block_size"],
            point.params["envelope_size"],
            point.params["receivers"],
            n=point.params["orderers"],
        )
        generated = point.metrics["generated_tx_per_sec"].median
        if point.params["envelope_size"] <= 200:
            assert generated <= bound, point.params
        else:
            assert generated <= bound * 1.25, point.params


def test_conclusion_comparison(bench_result):
    result = bench_result("conclusion")
    # §8: >= 2x Ethereum's theoretical peak, vastly above Bitcoin
    assert result.value("speedup_vs_ethereum") >= 1.5
    assert result.value("speedup_vs_bitcoin") > 200
