"""Discrete-event simulation kernel.

A :class:`Simulator` owns a virtual clock and a priority queue of
scheduled callbacks.  Protocol components are written in an
event-driven style (``schedule`` + message handlers); sequential logic
such as load generators can instead be written as generator-based
:class:`Process` coroutines that ``yield`` delays or :class:`Future`
objects.

The kernel is fully deterministic: ties in time are broken by a
monotonically increasing sequence number, and all randomness must come
from :class:`repro.sim.randomness.RandomStreams`.

Tie-break permutation (RaceSan)
-------------------------------

The default tie-break -- same-timestamp events fire in scheduling
order -- is *one* legal serialization of simulated concurrency, not a
guarantee protocol code may lean on.  Constructing a simulator with
``tie_seed=N`` (or calling :func:`set_default_tie_seed` before the
deployment is built) replaces the heap's ``seq`` key component with a
seeded bijective mix of it, so every same-timestamp group pops in a
per-seed shuffled order while distinct timestamps are untouched.  Each
seed is still fully deterministic; ``None`` (the default) is byte-for-
byte the historical order.  ``python -m repro.analysis racesan`` uses
this to prove protocol outcomes are schedule-independent (see
docs/ANALYSIS.md).

Fast path
---------

The heap stores ``(time, seq, handle)`` tuples so ordering is decided
by C-level tuple comparison (``seq`` is unique, so the handle itself is
never compared).  Hot senders that do not need cancellation use
:meth:`Simulator.post` / :meth:`Simulator.post_at` /
:meth:`Simulator.post_many`, which recycle :class:`EventHandle` objects
through a free list (the *event pool*).  Pooled handles never escape
the kernel, so a recycled handle can never alias an event some caller
still holds a reference to; cancellable timers keep going through
:meth:`Simulator.schedule`, whose handles are never recycled.
"""

from __future__ import annotations

import gc
import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional, Tuple

#: Upper bound on the event free list; beyond this, fired pooled events
#: are simply dropped for the garbage collector (keeps pathological
#: bursts from pinning memory forever).
EVENT_POOL_MAX = 4096

_heappush = heapq.heappush

_MASK64 = (1 << 64) - 1

#: Process-wide default tie seed; ``Simulator()`` picks it up so the
#: RaceSan capture subprocess can enable permutation before scenario
#: builders construct their own simulators.  ``None`` = historical
#: scheduling order.
_DEFAULT_TIE_SEED: Optional[int] = None


def set_default_tie_seed(seed: Optional[int]) -> None:
    """Set the tie seed newly constructed simulators default to."""
    global _DEFAULT_TIE_SEED
    _DEFAULT_TIE_SEED = seed


def _tie_mixer(seed: int) -> Callable[[int], int]:
    """A keyed bijection on 64-bit ints (SplitMix64 finalizer).

    Bijectivity is what keeps the permuted order total and
    deterministic: distinct sequence numbers always map to distinct
    keys, so the handle itself is still never compared.
    """
    offset = ((seed * 0x9E3779B97F4A7C15) + 0x6A09E667F3BCC909) & _MASK64

    def mix(seq: int, _offset: int = offset) -> int:
        z = (seq + _offset) & _MASK64
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    return mix


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation kernel."""


class EventHandle:
    """A scheduled callback that can be cancelled before it fires.

    ``pooled`` marks handles owned by the kernel's event pool: they are
    created only by the ``post*`` fast paths, are never returned to
    callers, and are recycled after firing.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "pooled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.pooled = False

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self.cancelled = True
        self.fn = None
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        # kept for compatibility: heap entries are tuples, so the kernel
        # itself never compares handles (seq ties are impossible)
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state}>"


class Future:
    """A one-shot value that :class:`Process` coroutines can wait on."""

    __slots__ = ("sim", "_value", "_done", "_failed", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._value: Any = None
        self._done = False
        self._failed: Optional[BaseException] = None
        self._callbacks: list[Callable[["Future"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError("future not resolved yet")
        if self._failed is not None:
            raise self._failed
        return self._value

    def resolve(self, value: Any = None) -> None:
        """Complete the future; wakes every waiter at the current time."""
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._value = value
        self._fire()

    def fail(self, exc: BaseException) -> None:
        """Complete the future with an exception raised into waiters."""
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._failed = exc
        self._fire()

    def add_callback(self, fn: Callable[["Future"], None]) -> None:
        if self._done:
            self.sim.post(0.0, fn, self)
        else:
            self._callbacks.append(fn)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        if callbacks:
            self.sim.post_many(0.0, callbacks, self)


class Process:
    """A generator-based coroutine driven by the simulator.

    The generator may ``yield``:

    - a ``float``/``int`` -- sleep for that many simulated seconds;
    - a :class:`Future` -- resume (with its value) when it resolves;
    - ``None`` -- yield control and resume immediately.

    The process itself exposes a :attr:`result` future resolved with
    the generator's return value.
    """

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "process"):
        self.sim = sim
        self.gen = gen
        self.name = name
        self.result = Future(sim)
        sim.post(0.0, self._step, None)

    def _step(self, send_value: Any) -> None:
        if self.result.done:
            return
        try:
            yielded = self.gen.send(send_value)
        except StopIteration as stop:
            self.result.resolve(stop.value)
            return
        if yielded is None:
            self.sim.post(0.0, self._step, None)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(f"process {self.name} slept for {yielded!r} < 0")
            self.sim.post(float(yielded), self._step, None)
        elif isinstance(yielded, Future):
            yielded.add_callback(self._step_future)
        else:
            raise SimulationError(
                f"process {self.name} yielded unsupported value {yielded!r}"
            )

    def _step_future(self, fut: Future) -> None:
        if self.result.done:
            return
        try:
            value = fut.value
        except BaseException as exc:  # propagate failure into the generator
            try:
                self.gen.throw(exc)
            except StopIteration as stop:
                self.result.resolve(stop.value)
            return
        self._step(value)

    def interrupt(self) -> None:
        """Stop the process; its result future resolves to ``None``."""
        if not self.result.done:
            self.gen.close()
            self.result.resolve(None)


class Simulator:
    """Deterministic discrete-event simulator."""

    def __init__(self, tie_seed: Optional[int] = None):
        self.now: float = 0.0
        self._heap: list[Tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._pool: list[EventHandle] = []
        self._processed = 0
        self._running = False
        #: seeded same-timestamp permutation (RaceSan); None = the
        #: historical scheduling-order tie-break
        self.tie_seed: Optional[int] = None
        self._tie_key: Optional[Callable[[int], int]] = None
        if tie_seed is None:
            tie_seed = _DEFAULT_TIE_SEED
        if tie_seed is not None:
            self.set_tie_seed(tie_seed)

    def set_tie_seed(self, seed: Optional[int]) -> None:
        """Install (or clear) the seeded same-timestamp permutation.

        Must be called before events are scheduled: mixing keys for
        only part of the heap would still be a total order, but not a
        pure permutation of each tie group.
        """
        if self._heap:
            raise SimulationError("cannot change tie_seed with events pending")
        self.tie_seed = seed
        self._tie_key = None if seed is None else _tie_mixer(seed)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` simulated seconds.

        Returns a cancellable handle; such handles are owned by the
        caller and never recycled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay!r})")
        time = self.now + delay
        handle = EventHandle(time, seq := next(self._seq), fn, args)
        tie_key = self._tie_key
        if tie_key is not None:
            seq = tie_key(seq)
        _heappush(self._heap, (time, seq, handle))
        return handle

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        return self.schedule(max(0.0, time - self.now), fn, *args)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at the current time, after pending events."""
        return self.schedule(0.0, fn, *args)

    # -- pooled fast path ----------------------------------------------
    def post(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no handle, pooled event."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay!r})")
        pool = self._pool
        time = self.now + delay
        if pool:
            handle = pool.pop()
            handle.time = time
            handle.fn = fn
            handle.args = args
            handle.cancelled = False
        else:
            handle = EventHandle(time, 0, fn, args)
            handle.pooled = True
        handle.seq = seq = next(self._seq)
        tie_key = self._tie_key
        if tie_key is not None:
            seq = tie_key(seq)
        _heappush(self._heap, (time, seq, handle))

    def post_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at`: no handle, pooled event."""
        now = self.now
        if time < now:
            time = now
        pool = self._pool
        if pool:
            handle = pool.pop()
            handle.time = time
            handle.fn = fn
            handle.args = args
            handle.cancelled = False
        else:
            handle = EventHandle(time, 0, fn, args)
            handle.pooled = True
        handle.seq = seq = next(self._seq)
        tie_key = self._tie_key
        if tie_key is not None:
            seq = tie_key(seq)
        _heappush(self._heap, (time, seq, handle))

    def post_many(
        self, delay: float, fns: Iterable[Callable[..., Any]], *args: Any
    ) -> None:
        """Batch-schedule ``fn(*args)`` for every ``fn`` at ``now + delay``.

        One pooled push per callback without per-call dispatch overhead;
        callbacks fire in iteration order (consecutive sequence numbers;
        under a ``tie_seed`` the batch is subject to the same seeded
        permutation as every other same-timestamp group).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay!r})")
        time = self.now + delay
        pool = self._pool
        heap = self._heap
        push = _heappush
        nextseq = self._seq.__next__
        tie_key = self._tie_key
        for fn in fns:
            if pool:
                handle = pool.pop()
                handle.time = time
                handle.fn = fn
                handle.args = args
                handle.cancelled = False
            else:
                handle = EventHandle(time, 0, fn, args)
                handle.pooled = True
            handle.seq = seq = nextseq()
            if tie_key is not None:
                seq = tie_key(seq)
            push(heap, (time, seq, handle))

    def spawn(self, gen: Generator, name: str = "process") -> Process:
        """Start a generator-based :class:`Process`."""
        return Process(self, gen, name=name)

    def future(self) -> Future:
        return Future(self)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        return sum(1 for _, _, handle in self._heap if not handle.cancelled)

    @property
    def processed_events(self) -> int:
        return self._processed

    def step(self) -> bool:
        """Process the next event; returns ``False`` when idle."""
        heap = self._heap
        pool = self._pool
        while heap:
            time, _seq, handle = heapq.heappop(heap)
            if handle.cancelled:
                continue
            self.now = time
            fn, args = handle.fn, handle.args
            if handle.pooled:
                handle.fn = None
                handle.args = ()
                if len(pool) < EVENT_POOL_MAX:
                    pool.append(handle)
            else:
                handle.cancel()  # release references
            self._processed += 1
            fn(*args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events until the queue is empty, ``until`` is reached,
        or ``max_events`` events have run.

        When ``until`` is given the clock always advances to exactly
        ``until`` even if the queue drains earlier.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        processed = 0
        heap = self._heap
        pool = self._pool
        pop = heapq.heappop
        # Pause cyclic GC for the duration of the loop: per-event garbage
        # is acyclic (tuples, messages) and freed by refcounting, while
        # the rare reference cycles live as long as the deployment anyway.
        # This removes periodic gen-0 scans from the hot loop (~15-20%
        # of wall time at high event rates) and cannot affect semantics.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if until is not None and max_events is None:
                # the benchmark/deployment shape -- run(until=...): the
                # per-event max_events and until-is-None tests are
                # hoisted out of the loop
                while heap:
                    entry = heap[0]
                    handle = entry[2]
                    if handle.cancelled:
                        pop(heap)
                        continue
                    if entry[0] > until:
                        break
                    pop(heap)
                    self.now = entry[0]
                    fn, args = handle.fn, handle.args
                    if handle.pooled:
                        handle.fn = None
                        handle.args = ()
                        if len(pool) < EVENT_POOL_MAX:
                            pool.append(handle)
                    else:
                        handle.cancelled = True
                        handle.fn = None
                        handle.args = ()
                    self._processed += 1
                    fn(*args)
            else:
                while heap:
                    entry = heap[0]
                    handle = entry[2]
                    if handle.cancelled:
                        pop(heap)
                        continue
                    if until is not None and entry[0] > until:
                        break
                    if max_events is not None and processed >= max_events:
                        break
                    # inlined step() hot loop
                    pop(heap)
                    self.now = entry[0]
                    fn, args = handle.fn, handle.args
                    if handle.pooled:
                        handle.fn = None
                        handle.args = ()
                        if len(pool) < EVENT_POOL_MAX:
                            pool.append(handle)
                    else:
                        handle.cancelled = True
                        handle.fn = None
                        handle.args = ()
                    self._processed += 1
                    fn(*args)
                    processed += 1
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False
            if gc_was_enabled:
                gc.enable()

    def run_until(self, predicate: Callable[[], bool], deadline: float) -> bool:
        """Run until ``predicate()`` is true or ``deadline`` passes.

        Returns ``True`` if the predicate became true.  The predicate is
        evaluated after every processed event.
        """
        if predicate():
            return True
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2].cancelled:
                heapq.heappop(heap)
                continue
            if entry[0] > deadline:
                break
            self.step()
            if predicate():
                return True
        if self.now < deadline:
            self.now = deadline
        return predicate()

    def drain(self, futures: Iterable[Future], deadline: float) -> bool:
        """Run until every future in ``futures`` resolves (or deadline)."""
        futures = list(futures)
        return self.run_until(lambda: all(f.done for f in futures), deadline)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self.now:.6f} pending={self.pending_events}>"
