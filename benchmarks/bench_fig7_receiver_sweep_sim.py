"""Figure 7's central trend, measured on the full simulated stack.

Complements the capacity-model panels in ``bench_fig7_lan_throughput``:
here the *entire* system (clients -> frontends -> BFT-SMaRt consensus
-> block cutter -> signing pool -> dissemination over a shared 1 Gb/s
NIC) runs end to end while the number of receivers sweeps 1 -> 4 -> 16,
and end-to-end delivered throughput must fall monotonically -- the
paper's headline LAN effect.
"""

import pytest

from repro.bench.figures import simulate_lan_throughput
from repro.bench.tables import render_lan_sim


@pytest.mark.benchmark(group="figure7-sim")
def test_receiver_sweep_end_to_end(benchmark, record_result):
    def sweep():
        return [
            simulate_lan_throughput(
                orderers=4,
                block_size=10,
                envelope_size=1024,
                receivers=receivers,
                duration=1.0,
                warmup=0.3,
            )
            for receivers in (1, 4, 16)
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_result("figure7_receiver_sweep_sim", render_lan_sim(results))

    delivered = [r.delivered_rate for r in results]
    # the paper's shape: fewer transactions get through as fan-out grows
    assert delivered[0] >= delivered[1] * 0.99
    assert delivered[1] > delivered[2]
    # and the decline is substantial by 16 receivers (NIC-bound)
    assert delivered[2] < 0.8 * delivered[0]
    # generation at node 0 stays decoupled from fan-out only until the
    # NIC saturates; sanity-check it never exceeds the offered load
    for result in results:
        assert result.generated_rate <= result.offered_rate * 1.05
