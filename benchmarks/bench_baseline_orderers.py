"""Baselines: the stock HLF orderers vs the BFT ordering service.

Not a paper figure, but the comparison §3 sets up: solo (no fault
tolerance), Kafka-like (crash-fault-tolerant) and the paper's BFT
service on the same LAN workload.  The point is qualitative: the BFT
service pays a modest latency premium over the weaker designs while
being the only one to survive Byzantine ordering nodes.
"""

import pytest

from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import SimulatedECDSA
from repro.fabric.channel import ChannelConfig
from repro.fabric.envelope import Envelope
from repro.fabric.orderers import KafkaCluster, KafkaOrderer, SoloOrderer
from repro.ordering import OrderingServiceConfig, build_ordering_service
from repro.sim import ConstantLatency, Network, Simulator
from repro.sim.monitor import StatsRegistry

ENVELOPES = 2000
SIZE = 1024
BLOCK = 10


def _run_solo():
    sim = Simulator()
    network = Network(sim, ConstantLatency(0.0001))
    registry = KeyRegistry(scheme=SimulatedECDSA())
    channel = ChannelConfig("ch0", max_message_count=BLOCK, batch_timeout=0.5)
    stats = StatsRegistry()
    orderer = SoloOrderer(
        sim, network, "solo", registry.enroll("solo"), channel, stats=stats
    )
    network.register("solo", orderer)
    for _ in range(ENVELOPES):
        orderer.submit(Envelope.raw("ch0", SIZE))
    sim.run(until=5.0)
    recorder = stats.latency("solo.latency")
    return recorder.median, orderer.blocks_created


def _run_kafka():
    sim = Simulator()
    network = Network(sim, ConstantLatency(0.0001))
    registry = KeyRegistry(scheme=SimulatedECDSA())
    channel = ChannelConfig("ch0", max_message_count=BLOCK, batch_timeout=0.5)
    stats = StatsRegistry()
    cluster = KafkaCluster(sim, network, num_brokers=3)
    orderer = KafkaOrderer(
        sim, network, "korderer0", registry.enroll("korderer0"), cluster, channel,
        stats=stats,
    )
    for _ in range(ENVELOPES):
        orderer.submit(Envelope.raw("ch0", SIZE))
    sim.run(until=5.0)
    recorder = stats.latency("korderer0.latency")
    return recorder.median, orderer.blocks_created


def _run_bft():
    config = OrderingServiceConfig(
        f=1,
        channel=ChannelConfig("ch0", max_message_count=BLOCK, batch_timeout=0.5),
        physical_cores=None,
        latency=ConstantLatency(0.0001),
    )
    service = build_ordering_service(config)
    for _ in range(ENVELOPES):
        service.submit(Envelope.raw("ch0", SIZE))
    service.run(5.0)
    recorder = service.stats.latency(f"{service.frontends[0].name}.latency")
    return recorder.median, service.nodes[0].blocks_created


@pytest.mark.benchmark(group="baselines")
def test_baseline_orderer_comparison(benchmark, record_result):
    def run_all():
        return {"solo": _run_solo(), "kafka": _run_kafka(), "bft": _run_bft()}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        "Ordering-service baselines (LAN, 1 KB envelopes, blocks of 10)",
        f"{'service':>8} | {'median latency (ms)':>20} | {'blocks':>7} | fault model",
    ]
    fault_models = {
        "solo": "none (single point of failure)",
        "kafka": "crash faults only",
        "bft": "f Byzantine nodes",
    }
    for name, (median, blocks) in results.items():
        lines.append(
            f"{name:>8} | {median * 1000:>20.2f} | {blocks:>7} | {fault_models[name]}"
        )
    record_result("baselines", "\n".join(lines))

    # all three order everything
    expected_blocks = ENVELOPES // BLOCK
    for name, (_median, blocks) in results.items():
        assert blocks == expected_blocks, name
    # solo is fastest (no replication), BFT costs more than Kafka-CFT,
    # but all stay in the same order of magnitude on a LAN
    assert results["solo"][0] <= results["kafka"][0]
    assert results["kafka"][0] <= results["bft"][0] * 1.5
    assert results["bft"][0] < 0.05
