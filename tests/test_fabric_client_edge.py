"""Edge cases of the Fabric client SDK and CPU-model timing."""

import pytest

from repro.sim import CPU, Simulator


class TestClientEdgeCases:
    def _pipeline(self):
        from tests.integration.test_end_to_end import Pipeline

        return Pipeline()

    def test_mismatched_endorsements_fail_policy(self):
        """If the two endorsers return *different* rw-sets (state
        divergence or a lying endorser), no matching group satisfies
        an AND policy and the client reports failure."""
        from repro.fabric import And, SignedBy
        from repro.fabric.client import EndorsementError
        from tests.integration.test_end_to_end import Pipeline

        pipeline = Pipeline(policy=And(SignedBy("org1"), SignedBy("org2")))
        # desynchronize endorser1's world state: both endorsements
        # succeed but with different read-sets/results, so no matching
        # group can satisfy AND(org1, org2)
        pipeline.committers[1].state.apply_write("k", 100, (9, 9))
        client = pipeline.client("alice")
        future = client.submit_transaction("ch0", "kv", "increment", ("k",))
        pipeline.drain([future], deadline=15.0)
        assert future.done
        with pytest.raises(EndorsementError):
            _ = future.value

    def test_unverifiable_endorser_response_ignored(self):
        """Responses with bad signatures never count toward assembly."""
        pipeline = self._pipeline()
        from repro.fabric.api import ProposalResponseMessage

        def forge(src, dst, payload):
            if isinstance(payload, ProposalResponseMessage) and src == "endorser1":
                payload.response.signature = b"\x00" * 64
            return payload

        pipeline.network.add_filter(forge)
        client = pipeline.client("alice")
        # Or-policy: endorser0 alone still satisfies it
        future = client.submit_transaction("ch0", "kv", "put", ("k", "v"))
        assert pipeline.drain([future])
        assert future.value.validation_code == "VALID"
        tx = (
            pipeline.committers[0]
            .ledger.get(future.value.block_number)
            .envelopes[0]
            .transaction
        )
        assert {e.endorser for e in tx.endorsements} == {"endorser0"}

    def test_envelope_size_override(self):
        pipeline = self._pipeline()
        from repro.fabric import FabricClient, SignedBy

        identity = pipeline.registry.enroll("sizer", org="clients")
        client = FabricClient(
            pipeline.sim,
            pipeline.network,
            identity,
            pipeline.registry,
            endorsers=["endorser0"],
            orderer_endpoint=pipeline.service.frontends[0].name,
            default_policy=SignedBy("org1"),
            envelope_size=4096,
        )
        future = client.submit_transaction("ch0", "kv", "put", ("k", "v"))
        assert pipeline.drain([future])
        block = pipeline.committers[0].ledger.get(future.value.block_number)
        sizes = {e.payload_size for e in block.envelopes}
        assert 4096 in sizes

    def test_estimated_size_scales_with_content(self):
        from repro.fabric.client import FabricClient
        from repro.fabric.envelope import (
            ChaincodeProposal,
            ReadSet,
            Transaction,
            WriteSet,
        )

        def tx_with(keys):
            return Transaction(
                proposal=ChaincodeProposal(
                    channel_id="ch0", chaincode_id="cc", function="f",
                    args=("arg",), client="c", nonce=0,
                ),
                read_set=ReadSet({f"k{i}": (0, 0) for i in range(keys)}),
                write_set=WriteSet({f"k{i}": i for i in range(keys)}),
                result="ok",
                endorsements=[],
            )

        small = FabricClient._estimate_size(tx_with(1))
        large = FabricClient._estimate_size(tx_with(20))
        assert large > small
        # the paper: real transactions gzip to ~1 KB
        assert 300 < small < 2000


class TestCpuStaggeredArrivals:
    def test_rates_rebalance_when_tasks_join(self):
        """A task running alone at speed 1.0 slows to the fair share
        when the machine saturates, and the completion times reflect
        the exact integral of the rate."""
        sim = Simulator()
        cpu = CPU(sim, physical_cores=1, hardware_threads=2, ht_yield=1.3)
        first = cpu.submit(1.0)
        # second task joins at t=0.5; both then run at 0.65 core-speed
        done_times = {}
        sim.schedule(0.5, lambda: cpu.submit(1.0).add_callback(
            lambda _f: done_times.__setitem__("second", sim.now)))
        first.add_callback(lambda _f: done_times.__setitem__("first", sim.now))
        sim.run()
        # first: 0.5 work done by t=0.5, remaining 0.5 at 0.65 speed
        assert done_times["first"] == pytest.approx(0.5 + 0.5 / 0.65, rel=1e-6)
        # second: runs 0.65 until first finishes, then 1.0
        elapsed_shared = done_times["first"] - 0.5
        remaining = 1.0 - 0.65 * elapsed_shared
        assert done_times["second"] == pytest.approx(
            done_times["first"] + remaining, rel=1e-6
        )

    def test_background_load_change_mid_task(self):
        sim = Simulator()
        cpu = CPU(sim, physical_cores=4)
        future = cpu.submit(1.0)
        sim.schedule(0.5, cpu.set_background_load, 0.5)
        sim.run()
        # 0.5 work at speed 1.0, then 0.5 at speed 0.5
        assert sim.now == pytest.approx(0.5 + 1.0, rel=1e-6)
        assert future.done
