"""Declarative TOML experiment specs for the benchmark harness.

A *spec* is a benchalot-style description of a sweep: which registered
benchmarks to run, axis overrides for their parameter matrices, repeat
/ seed / mode knobs, and an optional smoke subset — so a new experiment
(e.g. the four-backend bake-off at different block sizes) is a TOML
file, **zero new Python**.  ``python -m repro.bench run --spec FILE``
expands the spec onto :data:`repro.bench.harness.REGISTRY` and runs it
through the ordinary suite runner.

Format (``repro-bench-spec/1``)::

    schema = "repro-bench-spec/1"
    name = "bakeoff"                      # run name; -> BENCH_<name>.json
    description = "Four-backend bake-off"

    [select]
    benchmarks = ["bakeoff_orderers"]     # registry substrings (like --only)

    [run]                                 # all optional
    mode = "full"                         # or "smoke"
    repeats = 3                           # override every benchmark's repeats
    seed = 0                              # override the base seed
    phases = false                        # attach obs hubs (per-phase tables)

    [matrix]                              # replace axis values on every
    orderer = ["solo", "kafka",           # selected benchmark; every axis
               "bftsmart", "smartbft"]    # must already exist in each
    f = [1, 3]                            # benchmark's full matrix

    [smoke.matrix]                        # optional smoke-subset override;
    f = [1]                               # layered over [matrix]

Validation is strict and loud (:class:`SpecError`): unknown top-level
keys, unknown benchmarks, axes that don't exist on a selected
benchmark, empty axis value lists, and bad scalar types are all
errors — a typo must never silently run the wrong sweep.

TOML parsing uses the stdlib :mod:`tomllib` (Python 3.11+) and falls
back to the ``tomli`` package on 3.10; when neither is importable,
loading raises :class:`SpecError` with that explanation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bench.harness import Benchmark, BenchmarkRegistry, REGISTRY

#: Version tag of the spec documents.
SPEC_SCHEMA = "repro-bench-spec/1"

_TOP_LEVEL_KEYS = {"schema", "name", "description", "select", "run", "matrix", "smoke"}
_RUN_KEYS = {"mode", "repeats", "seed", "phases"}


class SpecError(ValueError):
    """An experiment spec is malformed or does not fit the registry."""


def _load_toml(path: str) -> Dict[str, Any]:
    try:
        import tomllib  # Python 3.11+
    except ImportError:  # pragma: no cover - 3.10 fallback
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ImportError:
            raise SpecError(
                "TOML specs need Python 3.11+ (stdlib tomllib) or the "
                "tomli package"
            ) from None
    try:
        with open(path, "rb") as fh:
            return tomllib.load(fh)
    except tomllib.TOMLDecodeError as exc:
        raise SpecError(f"{path}: invalid TOML: {exc}") from None


def _check_axis_values(axis: str, values: Any, where: str) -> Tuple[Any, ...]:
    if not isinstance(values, list) or not values:
        raise SpecError(
            f"{where}: axis {axis!r} must be a non-empty list of values, "
            f"got {values!r}"
        )
    for value in values:
        if not isinstance(value, (str, int, float, bool)):
            raise SpecError(
                f"{where}: axis {axis!r} has non-scalar value {value!r}"
            )
    return tuple(values)


@dataclass(frozen=True)
class ExperimentSpec:
    """A parsed, structurally valid experiment spec."""

    name: str
    description: str
    benchmarks: Tuple[str, ...]
    mode: str = "full"
    repeats: Optional[int] = None
    seed: Optional[int] = None
    phases: bool = False
    matrix: Mapping[str, Tuple[Any, ...]] = field(default_factory=dict)
    smoke_matrix: Mapping[str, Tuple[Any, ...]] = field(default_factory=dict)

    @property
    def default_out(self) -> str:
        return f"BENCH_{self.name}.json"


def parse_spec(document: Mapping[str, Any], where: str = "spec") -> ExperimentSpec:
    """Validate a decoded TOML document into an :class:`ExperimentSpec`."""
    if not isinstance(document, Mapping):
        raise SpecError(f"{where}: spec must be a table")
    if document.get("schema") != SPEC_SCHEMA:
        raise SpecError(
            f"{where}: unsupported schema {document.get('schema')!r}; "
            f"expected {SPEC_SCHEMA!r}"
        )
    unknown = sorted(set(document) - _TOP_LEVEL_KEYS)
    if unknown:
        raise SpecError(f"{where}: unknown top-level key(s) {unknown}")

    name = document.get("name")
    if not isinstance(name, str) or not name:
        raise SpecError(f"{where}: 'name' must be a non-empty string")
    safe = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")
    if set(name) - safe:
        raise SpecError(
            f"{where}: 'name' may only contain [A-Za-z0-9._-], got {name!r}"
        )
    description = document.get("description", "")
    if not isinstance(description, str):
        raise SpecError(f"{where}: 'description' must be a string")

    select = document.get("select")
    if not isinstance(select, Mapping) or "benchmarks" not in select:
        raise SpecError(f"{where}: missing [select] table with 'benchmarks'")
    unknown = sorted(set(select) - {"benchmarks"})
    if unknown:
        raise SpecError(f"{where}: unknown [select] key(s) {unknown}")
    benchmarks = select["benchmarks"]
    if (
        not isinstance(benchmarks, list)
        or not benchmarks
        or not all(isinstance(b, str) and b for b in benchmarks)
    ):
        raise SpecError(
            f"{where}: select.benchmarks must be a non-empty list of "
            f"name patterns"
        )

    run = document.get("run", {})
    if not isinstance(run, Mapping):
        raise SpecError(f"{where}: [run] must be a table")
    unknown = sorted(set(run) - _RUN_KEYS)
    if unknown:
        raise SpecError(f"{where}: unknown [run] key(s) {unknown}")
    mode = run.get("mode", "full")
    if mode not in ("full", "smoke"):
        raise SpecError(f"{where}: run.mode must be 'full' or 'smoke', got {mode!r}")
    repeats = run.get("repeats")
    if repeats is not None and (not isinstance(repeats, int) or repeats < 1):
        raise SpecError(f"{where}: run.repeats must be an integer >= 1")
    seed = run.get("seed")
    if seed is not None and not isinstance(seed, int):
        raise SpecError(f"{where}: run.seed must be an integer")
    phases = run.get("phases", False)
    if not isinstance(phases, bool):
        raise SpecError(f"{where}: run.phases must be a boolean")

    matrix_doc = document.get("matrix", {})
    if not isinstance(matrix_doc, Mapping):
        raise SpecError(f"{where}: [matrix] must be a table")
    matrix = {
        axis: _check_axis_values(axis, values, f"{where} [matrix]")
        for axis, values in matrix_doc.items()
    }

    smoke_doc = document.get("smoke", {})
    if not isinstance(smoke_doc, Mapping):
        raise SpecError(f"{where}: [smoke] must be a table")
    unknown = sorted(set(smoke_doc) - {"matrix"})
    if unknown:
        raise SpecError(f"{where}: unknown [smoke] key(s) {unknown}")
    smoke_matrix_doc = smoke_doc.get("matrix", {})
    if not isinstance(smoke_matrix_doc, Mapping):
        raise SpecError(f"{where}: [smoke.matrix] must be a table")
    smoke_matrix = {
        axis: _check_axis_values(axis, values, f"{where} [smoke.matrix]")
        for axis, values in smoke_matrix_doc.items()
    }

    return ExperimentSpec(
        name=name,
        description=description,
        benchmarks=tuple(benchmarks),
        mode=mode,
        repeats=repeats,
        seed=seed,
        phases=phases,
        matrix=matrix,
        smoke_matrix=smoke_matrix,
    )


def load_spec(path: str) -> ExperimentSpec:
    """Read + validate a TOML spec file."""
    return parse_spec(_load_toml(path), where=path)


def expand_spec(
    spec: ExperimentSpec, registry: Optional[BenchmarkRegistry] = None
) -> List[Benchmark]:
    """Expand a spec into derived :class:`Benchmark` objects.

    Selection reuses the registry's substring matching (typos fail
    loudly).  Axis overrides *replace* the benchmark's values for that
    axis; every overridden axis must exist in the benchmark's full
    matrix so a spec cannot invent parameters the run callable would
    ignore.  The derived smoke matrix layers ``[smoke.matrix]`` over
    ``[matrix]`` over the benchmark's own smoke subset.
    """
    if registry is None:
        # populate the default registry with the committed suite
        import repro.bench.suite  # noqa: F401

        registry = REGISTRY
    try:
        selected = registry.select(list(spec.benchmarks))
    except KeyError as exc:
        raise SpecError(str(exc)) from None
    derived: List[Benchmark] = []
    for benchmark in selected:
        for axis in list(spec.matrix) + list(spec.smoke_matrix):
            if axis not in benchmark.matrix:
                raise SpecError(
                    f"axis {axis!r} does not exist on benchmark "
                    f"{benchmark.name!r} (axes: {sorted(benchmark.matrix)})"
                )
        new_matrix = {**benchmark.matrix, **spec.matrix}
        base_smoke = dict(
            benchmark.smoke_matrix
            if benchmark.smoke_matrix is not None
            else benchmark.matrix
        )
        new_smoke = {**base_smoke, **spec.matrix, **spec.smoke_matrix}
        replacements: Dict[str, Any] = {
            "matrix": new_matrix,
            "smoke_matrix": new_smoke,
        }
        if spec.repeats is not None:
            replacements["repeats"] = spec.repeats
            replacements["smoke_repeats"] = spec.repeats
        if spec.seed is not None:
            replacements["base_seed"] = spec.seed
        derived.append(dataclasses.replace(benchmark, **replacements))
    return derived


def describe_spec(spec: ExperimentSpec, benchmarks: Sequence[Benchmark]) -> str:
    """One-paragraph expansion summary for the CLI."""
    lines = [
        f"spec {spec.name!r}: {len(benchmarks)} benchmark(s), "
        f"mode={spec.mode}"
        + (f", repeats={spec.repeats}" if spec.repeats is not None else "")
        + (f", seed={spec.seed}" if spec.seed is not None else "")
        + (", phases on" if spec.phases else "")
    ]
    for benchmark in benchmarks:
        points = sum(1 for _ in benchmark.points(spec.mode))
        lines.append(f"  {benchmark.name}: {points} matrix point(s)")
    return "\n".join(lines)
