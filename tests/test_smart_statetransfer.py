"""Tests for state transfer (recovery and catch-up)."""


from tests.conftest import Cluster


class TestRecovery:
    def test_crashed_replica_catches_up_on_recovery(self):
        cluster = Cluster()
        proxy = cluster.proxy()
        assert cluster.drain([proxy.invoke(1)])
        cluster.replicas[3].crash()
        futures = [proxy.invoke(1) for _ in range(30)]
        assert cluster.drain(futures, deadline=20.0)
        assert cluster.apps[3].total == 1  # missed everything
        cluster.replicas[3].recover()
        cluster.run(5.0)
        assert cluster.apps[3].total == 31
        assert cluster.apps[3].history == cluster.apps[0].history

    def test_recovered_replica_participates_again(self):
        cluster = Cluster()
        proxy = cluster.proxy()
        assert cluster.drain([proxy.invoke(1)])
        cluster.replicas[3].crash()
        assert cluster.drain([proxy.invoke(2)], deadline=10.0)
        cluster.replicas[3].recover()
        cluster.run(5.0)
        # now crash a different replica: the recovered one must help
        # form quorums or the service stalls
        cluster.replicas[2].crash()
        future = proxy.invoke(3)
        assert cluster.drain([future], deadline=30.0)
        assert cluster.apps[3].total == 6

    def test_recovery_with_checkpoint(self):
        cluster = Cluster(checkpoint_period=5)
        proxy = cluster.proxy()
        assert cluster.drain([proxy.invoke(1)])
        cluster.replicas[3].crash()
        for _ in range(12):
            assert cluster.drain([proxy.invoke(1)], deadline=10.0)
        assert cluster.replicas[0].counters.checkpoints >= 1
        cluster.replicas[3].recover()
        cluster.run(5.0)
        assert cluster.apps[3].total == 13
        assert cluster.replicas[3].last_executed == cluster.replicas[0].last_executed

    def test_transfer_counter_increments(self):
        cluster = Cluster()
        proxy = cluster.proxy()
        assert cluster.drain([proxy.invoke(1)])
        cluster.replicas[3].crash()
        assert cluster.drain([proxy.invoke(2)], deadline=10.0)
        cluster.replicas[3].recover()
        cluster.run(5.0)
        assert cluster.replicas[3].state_transfer.transfers_completed >= 1

    def test_gap_detection_triggers_transfer(self):
        """A replica that silently missed traffic (partition, not
        crash) catches up when it sees far-future consensus ids."""
        cluster = Cluster()
        proxy = cluster.proxy()
        assert cluster.drain([proxy.invoke(1)])
        # partition replica 3 away
        cluster.network.block(3, 0)
        cluster.network.block(3, 1)
        cluster.network.block(3, 2)
        for _ in range(30):
            assert cluster.drain([proxy.invoke(1)], deadline=10.0)
        cluster.network.heal()
        futures = [proxy.invoke(1) for _ in range(5)]
        assert cluster.drain(futures, deadline=20.0)
        cluster.run(5.0)
        assert cluster.apps[3].total == cluster.apps[0].total

    def test_up_to_date_replica_transfer_is_noop(self):
        cluster = Cluster()
        proxy = cluster.proxy()
        assert cluster.drain([proxy.invoke(1)])
        cluster.run(1.0)
        replica = cluster.replicas[2]
        before = replica.last_executed
        replica.state_transfer.start()
        cluster.run(3.0)
        assert replica.last_executed == before
        assert not replica.state_transfer.in_progress
