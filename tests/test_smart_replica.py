"""Tests for normal-case replication (no faults)."""


from tests.conftest import Cluster


class TestOrdering:
    def test_single_request_executes_everywhere(self, cluster):
        proxy = cluster.proxy()
        future = proxy.invoke(5)
        assert cluster.drain([future])
        assert future.value == 5
        assert [app.total for app in cluster.apps] == [5, 5, 5, 5]

    def test_sequential_requests_ordered(self, cluster):
        proxy = cluster.proxy()
        futures = [proxy.invoke(i) for i in range(10)]
        assert cluster.drain(futures)
        assert cluster.apps[0].history == list(range(10))
        assert cluster.histories_agree()

    def test_results_reflect_execution_order(self, cluster):
        proxy = cluster.proxy()
        futures = [proxy.invoke(1) for _ in range(5)]
        cluster.drain(futures)
        assert [f.value for f in futures] == [1, 2, 3, 4, 5]

    def test_multiple_clients_agree(self, cluster):
        proxies = [cluster.proxy() for _ in range(3)]
        futures = [p.invoke(i + 1) for i, p in enumerate(proxies) for _ in range(4)]
        assert cluster.drain(futures)
        assert cluster.histories_agree()
        assert cluster.apps[0].total == sum(
            (i + 1) * 4 for i in range(3)
        )

    def test_batching_amortizes_consensus(self, cluster):
        proxy = cluster.proxy()
        futures = [proxy.invoke(1) for _ in range(50)]
        assert cluster.drain(futures)
        # far fewer consensus instances than requests
        assert cluster.replicas[0].counters.consensus_decided < 25

    def test_larger_cluster_n7(self):
        cluster = Cluster(n=7, f=2)
        proxy = cluster.proxy()
        futures = [proxy.invoke(i) for i in range(8)]
        assert cluster.drain(futures)
        assert cluster.histories_agree()

    def test_n10_f3(self):
        cluster = Cluster(n=10, f=3)
        proxy = cluster.proxy()
        futures = [proxy.invoke(i) for i in range(5)]
        assert cluster.drain(futures)
        assert cluster.histories_agree()

    def test_request_payload_sizes_accounted(self, cluster):
        proxy = cluster.proxy()
        future = proxy.invoke(1, size_bytes=4096)
        assert cluster.drain([future])
        assert cluster.network.stats.bytes_sent > 4096 * 4  # sent to 4 replicas


class TestDeduplication:
    def test_duplicate_request_not_reexecuted(self, cluster):
        proxy = cluster.proxy()
        future = proxy.invoke(5)
        assert cluster.drain([future])
        # retransmit the exact same request manually
        from repro.smart.messages import ClientRequest

        duplicate = ClientRequest(
            client_id=proxy.client_id, sequence=0, operation=5, size_bytes=0
        )
        for replica in cluster.replicas:
            cluster.network.send(
                proxy.client_id, replica.replica_id, duplicate, duplicate.wire_size()
            )
        cluster.run(2.0)
        assert cluster.apps[0].total == 5  # not 10
        assert cluster.replicas[0].counters.duplicate_requests > 0

    def test_retransmission_gets_cached_reply(self, cluster):
        proxy = cluster.proxy(invoke_timeout=0.3)
        # slow everything down so the proxy retransmits at least once
        future = proxy.invoke(7)
        assert cluster.drain([future], deadline=10.0)
        assert future.value == 7
        assert cluster.apps[0].total == 7


class TestReplies:
    def test_reply_needs_f_plus_one_matches(self, cluster):
        proxy = cluster.proxy()
        future = proxy.invoke(1)
        cluster.drain([future])
        # at least f+1 = 2 replicas replied identically
        assert proxy.replies_received >= 2

    def test_byzantine_reply_cannot_fool_client(self, cluster):
        """A single lying replica's reply never reaches the quorum."""
        from repro.smart.messages import Reply

        def lie(src, dst, payload):
            if isinstance(payload, Reply) and payload.sender == 3:
                return Reply(
                    sender=3,
                    client_id=payload.client_id,
                    sequence=payload.sequence,
                    result=999999,
                    regency=payload.regency,
                )
            return payload

        cluster.network.add_filter(lie)
        proxy = cluster.proxy()
        future = proxy.invoke(5)
        assert cluster.drain([future])
        assert future.value == 5


class TestCheckpoints:
    def test_checkpoint_truncates_log(self):
        cluster = Cluster(checkpoint_period=5)
        proxy = cluster.proxy()
        futures = [proxy.invoke(1) for _ in range(12)]
        # submit slowly so each lands in its own consensus instance
        for i, _f in enumerate(futures):
            pass
        assert cluster.drain(futures)
        replica = cluster.replicas[0]
        if replica.counters.checkpoints:
            assert len(replica.log) < replica.counters.consensus_decided

    def test_checkpoint_state_matches_app(self):
        cluster = Cluster(checkpoint_period=2)
        proxy = cluster.proxy()
        for i in range(8):
            future = proxy.invoke(1)
            cluster.drain([future])
        replica = cluster.replicas[0]
        assert replica.counters.checkpoints >= 1
        checkpoint = replica.log.checkpoint
        assert checkpoint is not None
        assert checkpoint.state["total"] <= cluster.apps[0].total


class TestTimers:
    def test_idle_cluster_stays_quiet(self, cluster):
        cluster.run(5.0)
        assert all(r.counters.regency_changes == 0 for r in cluster.replicas)
        assert all(r.regency == 0 for r in cluster.replicas)

    def test_steady_load_no_spurious_regency_change(self, cluster):
        proxy = cluster.proxy()
        for _ in range(5):
            futures = [proxy.invoke(1) for _ in range(3)]
            cluster.drain(futures)
            cluster.run(0.4)
        assert all(r.counters.regency_changes == 0 for r in cluster.replicas)
