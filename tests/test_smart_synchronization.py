"""Tests for the synchronization phase (leader changes)."""

import pytest

from tests.conftest import Cluster


class TestLeaderCrash:
    def test_crashed_leader_replaced(self):
        cluster = Cluster(request_timeout=0.4)
        proxy = cluster.proxy(invoke_timeout=5.0)
        first = proxy.invoke(1)
        assert cluster.drain([first])
        cluster.replicas[0].crash()
        second = proxy.invoke(2)
        assert cluster.drain([second], deadline=30.0)
        assert second.value == 3
        survivors = cluster.replicas[1:]
        assert all(r.regency >= 1 for r in survivors)
        assert all(r.view.leader_of(r.regency) != 0 for r in survivors)

    def test_state_consistent_after_leader_change(self):
        cluster = Cluster(request_timeout=0.4)
        proxy = cluster.proxy(invoke_timeout=5.0)
        assert cluster.drain([proxy.invoke(i) for i in range(5)])
        cluster.replicas[0].crash()
        assert cluster.drain([proxy.invoke(10 + i) for i in range(5)], deadline=40.0)
        histories = [app.history for app, r in zip(cluster.apps, cluster.replicas) if not r.crashed]
        assert all(h == histories[0] for h in histories)

    def test_two_consecutive_leader_crashes(self):
        cluster = Cluster(n=7, f=2, request_timeout=0.4)
        proxy = cluster.proxy(invoke_timeout=5.0, max_retries=20)
        assert cluster.drain([proxy.invoke(1)])
        cluster.replicas[0].crash()
        assert cluster.drain([proxy.invoke(2)], deadline=40.0)
        cluster.replicas[1].crash()
        future = proxy.invoke(3)
        assert cluster.drain([future], deadline=60.0)
        assert future.value == 6

    def test_silent_leader_detected_without_crash(self):
        """A leader that stops proposing (but stays online) is evicted."""
        cluster = Cluster(request_timeout=0.4)
        proxy = cluster.proxy(invoke_timeout=5.0)
        assert cluster.drain([proxy.invoke(1)])
        # the leader silently ignores all client requests from now on
        leader = cluster.replicas[0]
        leader._maybe_propose = lambda: None
        future = proxy.invoke(2)
        assert cluster.drain([future], deadline=30.0)
        assert all(r.regency >= 1 for r in cluster.replicas[1:])

    def test_new_leader_crash_escalates_regency(self):
        """If the next leader is also down, the change keeps going."""
        cluster = Cluster(n=7, f=2, request_timeout=0.4)
        proxy = cluster.proxy(invoke_timeout=5.0, max_retries=20)
        assert cluster.drain([proxy.invoke(1)])
        cluster.replicas[0].crash()
        cluster.replicas[1].crash()  # regency 1's leader is dead too
        future = proxy.invoke(2)
        assert cluster.drain([future], deadline=80.0)
        survivors = [r for r in cluster.replicas if not r.crashed]
        assert all(r.regency >= 2 for r in survivors)

    def test_no_requests_lost_across_leader_change(self):
        cluster = Cluster(request_timeout=0.4)
        proxy = cluster.proxy(invoke_timeout=4.0, max_retries=20)
        assert cluster.drain([proxy.invoke(1)])
        # submit a burst, then immediately kill the leader so some of
        # the burst is likely in flight
        futures = [proxy.invoke(1) for _ in range(10)]
        cluster.replicas[0].crash()
        assert cluster.drain(futures, deadline=60.0)
        survivors = [a for a, r in zip(cluster.apps, cluster.replicas) if not r.crashed]
        assert all(a.total == 11 for a in survivors)

    def test_service_survives_f_crashes_only(self):
        """With f+1 crashes the service must NOT decide (but with f it
        must)."""
        cluster = Cluster(request_timeout=0.3)
        proxy = cluster.proxy(invoke_timeout=1.0, max_retries=3)
        cluster.replicas[2].crash()
        cluster.replicas[3].crash()  # two failures, f=1
        future = proxy.invoke(1)
        cluster.drain([future], deadline=8.0)
        if future.done:  # the proxy gave up retrying
            with pytest.raises(TimeoutError):
                _ = future.value
        assert all(app.total == 0 for app in cluster.apps)


class TestValuePreservation:
    def test_write_certified_value_survives_leader_change(self):
        """If a WRITE quorum existed for a batch, the new leader must
        re-propose that batch (Mod-SMaRt's value selection rule)."""
        cluster = Cluster(request_timeout=0.4)
        proxy = cluster.proxy(invoke_timeout=5.0, max_retries=20)
        assert cluster.drain([proxy.invoke(1)])

        # block all ACCEPT messages so consensus stalls after WRITE
        from repro.smart.messages import Accept

        def drop_accepts(src, dst, payload):
            if isinstance(payload, Accept):
                return None
            return payload

        cluster.network.add_filter(drop_accepts)
        future = proxy.invoke(41)
        cluster.run(1.0)  # writes happen, accepts are dropped
        # some replica observed a write quorum
        certified = [
            r.instances[r.last_executed + 1].write_certificate
            for r in cluster.replicas
            if (r.last_executed + 1) in r.instances
        ]
        assert any(c is not None for c in certified)
        cluster.network.remove_filter(drop_accepts)
        # the stalled instance now completes (possibly after a regency
        # change); the certified value must be the one decided
        assert cluster.drain([future], deadline=60.0)
        assert future.value == 42
        assert all(41 in app.history for app in cluster.apps)


class TestRegencyBookkeeping:
    def test_regency_changes_counted(self):
        cluster = Cluster(request_timeout=0.4)
        proxy = cluster.proxy(invoke_timeout=5.0)
        assert cluster.drain([proxy.invoke(1)])
        cluster.replicas[0].crash()
        assert cluster.drain([proxy.invoke(2)], deadline=30.0)
        assert all(r.counters.regency_changes >= 1 for r in cluster.replicas[1:])

    def test_progress_resumes_normal_operation(self):
        cluster = Cluster(request_timeout=0.4)
        proxy = cluster.proxy(invoke_timeout=5.0)
        assert cluster.drain([proxy.invoke(1)])
        cluster.replicas[0].crash()
        assert cluster.drain([proxy.invoke(2)], deadline=30.0)
        regency_after = cluster.replicas[1].regency
        # more traffic should not trigger further changes
        assert cluster.drain([proxy.invoke(3), proxy.invoke(4)], deadline=10.0)
        assert cluster.replicas[1].regency == regency_after
