"""Unit tests for canonical encoding and hashing."""

import pytest

from repro.crypto.hashing import canonical_encode, hash_iterable, sha256, sha256_hex


class TestCanonicalEncode:
    def test_primitives_roundtrip_distinctly(self):
        values = [None, True, False, 0, 1, -1, 1.5, b"bytes", "str", [], {}]
        encodings = [canonical_encode(v) for v in values]
        assert len(set(encodings)) == len(values)

    def test_int_and_str_not_confused(self):
        assert canonical_encode(1) != canonical_encode("1")

    def test_bytes_and_str_not_confused(self):
        assert canonical_encode(b"a") != canonical_encode("a")

    def test_bool_and_int_not_confused(self):
        assert canonical_encode(True) != canonical_encode(1)

    def test_list_no_concatenation_ambiguity(self):
        assert canonical_encode(["ab", "c"]) != canonical_encode(["a", "bc"])

    def test_nested_structures(self):
        value = {"a": [1, 2, {"b": b"x"}], "c": None}
        assert canonical_encode(value) == canonical_encode(value)

    def test_dict_order_independent(self):
        assert canonical_encode({"a": 1, "b": 2}) == canonical_encode({"b": 2, "a": 1})

    def test_tuple_equals_list(self):
        assert canonical_encode((1, 2)) == canonical_encode([1, 2])

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            canonical_encode(object())

    def test_large_int(self):
        big = 2**300
        assert canonical_encode(big) != canonical_encode(big - 1)


class TestSha256:
    def test_digest_is_32_bytes(self):
        assert len(sha256("x")) == 32

    def test_deterministic(self):
        assert sha256("a", 1, b"b") == sha256("a", 1, b"b")

    def test_argument_boundaries_matter(self):
        assert sha256(b"ab", b"c") != sha256(b"a", b"bc")

    def test_hex_variant(self):
        assert sha256_hex("x") == sha256("x").hex()

    def test_hash_iterable(self):
        assert hash_iterable([1, 2]) == sha256([1, 2])
        assert hash_iterable([1, 2]) != hash_iterable([2, 1])
