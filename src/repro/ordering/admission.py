"""Admission control and backpressure for the ordering frontends.

The paper's frontend simply relays every client envelope into the BFT
cluster (§5.1) -- under open-loop overload that collapses: the proxy's
outstanding-request set grows without bound, batches queue faster than
consensus drains them, and latency diverges for *everyone*.  This
module supplies the missing backpressure, designed around three rules:

1. **Per-tenant token buckets** -- each submitting tenant (the
   envelope's ``submitter``) gets a bounded refill-rate/burst budget,
   so one flooding tenant exhausts its own bucket instead of starving
   the rest (fairness under adversarial load).
2. **A global in-flight window** -- the frontend admits at most
   ``max_in_flight`` envelopes that are submitted but not yet committed
   (sized off the proxy's outstanding-request depth), bounding queueing
   delay: an admitted envelope's latency is capped by
   ``window / service-rate`` instead of growing with offered load.
3. **Explicit rejection, never silent drops** -- an envelope that is
   not admitted gets a :class:`Rejected` verdict carrying the reason
   and a ``retry_after`` hint, so a well-behaved client can back off
   (see :meth:`repro.smart.proxy.ServiceProxy.retry_delay`) and the
   no-silent-drop invariant (:mod:`repro.faults.invariants`) can hold
   every submission accountable.

Admission control is **opt-in**: frontends built without an
:class:`AdmissionController` behave exactly as before (fire-and-forget
relay, oversized payloads raise).  Deployments enable it through
``OrderingServiceConfig(admission=AdmissionConfig(...))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: rejection reasons (stable strings: metric names and reports key on them)
REASON_RATE_LIMITED = "rate-limited"
REASON_WINDOW_FULL = "window-full"
REASON_OVERSIZED = "oversized"


@dataclass(frozen=True)
class Rejected:
    """Explicit backpressure feedback for one refused envelope."""

    reason: str
    #: seconds the client should wait before resubmitting (a hint, not
    #: a guarantee -- the bucket may be drained again by then)
    retry_after: float

    def __str__(self) -> str:
        return f"rejected({self.reason}, retry_after={self.retry_after:.3f}s)"


@dataclass(frozen=True)
class AdmissionConfig:
    """Budget knobs for one frontend's admission controller."""

    #: steady-state tokens (envelopes) per second granted to each tenant
    tenant_rate: float = 1000.0
    #: bucket capacity: how far a tenant may burst above the rate
    tenant_burst: float = 100.0
    #: submitted-but-uncommitted envelopes the frontend accepts before
    #: shedding (the backpressure window, sized off the proxy's
    #: outstanding-request depth)
    max_in_flight: int = 512


@dataclass
class _Bucket:
    tokens: float
    refilled_at: float


class AdmissionController:
    """Token buckets + an in-flight window for one frontend.

    State is O(active tenants): one bucket per distinct submitter name,
    a handful of counters, nothing per envelope.
    """

    def __init__(self, config: Optional[AdmissionConfig] = None):
        self.config = config or AdmissionConfig()
        self._buckets: Dict[str, _Bucket] = {}
        #: envelopes admitted but not yet seen in a delivered block
        self.in_flight = 0
        # aggregate counters (the obs layer tracks these as gauges)
        self.admitted = 0
        self.rejected: Dict[str, int] = {}
        # per-tenant counters, for fairness reporting
        self.tenant_admitted: Dict[str, int] = {}
        self.tenant_rejected: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def admit(self, tenant: str, now: float) -> Optional[Rejected]:
        """Admit one envelope from ``tenant`` or explain the refusal.

        Returns ``None`` on admit (one token consumed, window slot
        taken) or a :class:`Rejected` verdict.  Window pressure is
        checked first: it protects every tenant, while the bucket only
        protects tenants from each other.
        """
        cfg = self.config
        if self.in_flight >= cfg.max_in_flight:
            # the window drains as blocks commit; suggest one bucket
            # period as the resubmission horizon
            return self._reject(
                tenant, REASON_WINDOW_FULL, retry_after=1.0 / max(cfg.tenant_rate, 1e-9)
            )
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = _Bucket(
                tokens=cfg.tenant_burst, refilled_at=now
            )
        else:
            elapsed = now - bucket.refilled_at
            if elapsed > 0:
                bucket.tokens = min(
                    cfg.tenant_burst, bucket.tokens + elapsed * cfg.tenant_rate
                )
                bucket.refilled_at = now
        if bucket.tokens < 1.0:
            return self._reject(
                tenant,
                REASON_RATE_LIMITED,
                retry_after=(1.0 - bucket.tokens) / max(cfg.tenant_rate, 1e-9),
            )
        bucket.tokens -= 1.0
        self.in_flight += 1
        self.admitted += 1
        self.tenant_admitted[tenant] = self.tenant_admitted.get(tenant, 0) + 1
        return None

    def reject_oversized(self, tenant: str) -> Rejected:
        """Record an oversized-payload refusal (never admissible, so
        ``retry_after`` is 0: resubmitting the same envelope is futile)."""
        return self._reject(tenant, REASON_OVERSIZED, retry_after=0.0)

    def release(self, count: int = 1) -> None:
        """Free window slots: ``count`` admitted envelopes committed."""
        self.in_flight = max(0, self.in_flight - count)

    # ------------------------------------------------------------------
    def _reject(self, tenant: str, reason: str, retry_after: float) -> Rejected:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1
        self.tenant_rejected[tenant] = self.tenant_rejected.get(tenant, 0) + 1
        return Rejected(reason=reason, retry_after=retry_after)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def shed_count(self) -> int:
        return sum(self.rejected.values())

    def shed_fraction(self) -> float:
        offered = self.admitted + self.shed_count
        return self.shed_count / offered if offered else 0.0

    def fairness_index(self) -> float:
        """Jain's index over per-tenant *admitted* counts."""
        counts = sorted(self.tenant_admitted.items(), key=lambda kv: kv[0])
        return jain_fairness([count for _, count in counts])


def jain_fairness(values: List[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly even, 1/n = one hog.

    ``J = (sum x)^2 / (n * sum x^2)`` over per-tenant allocations;
    empty or all-zero inputs count as perfectly fair.
    """
    xs = [float(v) for v in values]
    if not xs:
        return 1.0
    square_of_sum = sum(xs) ** 2
    sum_of_squares = sum(x * x for x in xs)
    if sum_of_squares == 0.0:
        return 1.0
    return square_of_sum / (len(xs) * sum_of_squares)


def merge_tenant_counts(
    controllers: List[AdmissionController],
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Aggregate (admitted, rejected) per tenant across frontends."""
    admitted: Dict[str, int] = {}
    rejected: Dict[str, int] = {}
    for controller in controllers:
        for tenant, count in sorted(
            controller.tenant_admitted.items(), key=lambda kv: kv[0]
        ):
            admitted[tenant] = admitted.get(tenant, 0) + count
        for tenant, count in sorted(
            controller.tenant_rejected.items(), key=lambda kv: kv[0]
        ):
            rejected[tenant] = rejected.get(tenant, 0) + count
    return admitted, rejected
