"""Identities and the membership key registry.

Plays the role of Fabric's membership service provider (MSP): every
participant -- ordering nodes, endorsing peers, clients, frontends --
is enrolled once, receives a key pair, and everyone else can look up
its verifier by name.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.crypto.signatures import SignatureScheme, Signer, Verifier


@dataclass
class Identity:
    """An enrolled participant: name, organization and key material."""

    name: str
    org: str
    signer: Signer
    verifier: Verifier

    def sign(self, message: bytes) -> bytes:
        return self.signer.sign(message)

    @property
    def public(self) -> bytes:
        return self.verifier.public


@dataclass
class KeyRegistry:
    """Issues identities and resolves verifiers by name or public key.

    The registry is trusted configuration (like an MSP's root certs):
    protocols never ask it for private keys, only for verifiers.
    """

    scheme: SignatureScheme
    rng: random.Random = field(default_factory=lambda: random.Random(0xC0FFEE))
    _by_name: Dict[str, Identity] = field(default_factory=dict)
    _by_public: Dict[bytes, Identity] = field(default_factory=dict)

    def enroll(self, name: str, org: str = "org0") -> Identity:
        """Create and register an identity (name must be unique)."""
        if name in self._by_name:
            raise ValueError(f"identity {name!r} already enrolled")
        private, public = self.scheme.keygen(self.rng)
        identity = Identity(
            name=name,
            org=org,
            signer=Signer(self.scheme, private, public),
            verifier=Verifier(self.scheme, public),
        )
        self._by_name[name] = identity
        self._by_public[public] = identity
        return identity

    def get(self, name: str) -> Identity:
        return self._by_name[name]

    def verifier_of(self, name: str) -> Verifier:
        return self._by_name[name].verifier

    def identity_by_public(self, public: bytes) -> Optional[Identity]:
        return self._by_public.get(public)

    def org_of(self, name: str) -> str:
        return self._by_name[name].org

    def names(self) -> Iterable[str]:
        return self._by_name.keys()

    def __contains__(self, name: str) -> bool:
        return name in self._by_name
