"""State transfer against dishonest or stale peers."""


from repro.crypto.hashing import sha256
from repro.smart.durability import state_digest
from repro.smart.messages import StateReply
from tests.conftest import Cluster


class TestStateTransferRobustness:
    def advance(self, cluster, proxy, count):
        for _ in range(count):
            assert cluster.drain([proxy.invoke(1)], deadline=10.0)

    def test_single_lying_reply_cannot_install(self, cluster):
        """One fabricated state reply never reaches the f+1 threshold."""
        replica = cluster.replicas[3]
        replica.state_transfer.in_progress = True
        fake_state = {"total": 666, "history": [666]}
        lie = StateReply(
            sender=2,
            checkpoint_cid=5,
            state=fake_state,
            state_hash=state_digest(fake_state),
            log=[],
            last_cid=5,
        )
        replica.state_transfer.on_state_reply(2, lie)
        assert replica.last_executed == -1
        assert cluster.apps[3].total == 0

    def test_matching_lies_from_f_plus_1_needed(self, cluster):
        """Only f+1 = 2 *matching* replies install state; a single
        Byzantine peer cannot reach that alone, two colluding ones
        exceed f and are outside the fault model (and do succeed --
        demonstrating exactly why f matters)."""
        replica = cluster.replicas[3]
        replica.state_transfer.in_progress = True
        fake_state = {"total": 666, "history": [666]}
        lie = StateReply(
            sender=1,
            checkpoint_cid=5,
            state=fake_state,
            state_hash=state_digest(fake_state),
            log=[],
            last_cid=5,
        )
        replica.state_transfer.on_state_reply(1, lie)
        assert replica.last_executed == -1
        lie2 = StateReply(
            sender=2,
            checkpoint_cid=5,
            state=fake_state,
            state_hash=state_digest(fake_state),
            log=[],
            last_cid=5,
        )
        replica.state_transfer.on_state_reply(2, lie2)
        assert replica.last_executed == 5  # two faults > f: game over

    def test_mismatched_digest_rejected(self, cluster):
        """A reply whose shipped state does not match its own claimed
        digest is discarded even with agreement on the key."""
        replica = cluster.replicas[3]
        replica.state_transfer.in_progress = True
        fake_state = {"total": 666, "history": [666]}
        wrong_digest = sha256("not-the-state")
        for sender in (1, 2):
            replica.state_transfer.on_state_reply(
                sender,
                StateReply(
                    sender=sender,
                    checkpoint_cid=5,
                    state=fake_state,
                    state_hash=wrong_digest,
                    log=[],
                    last_cid=5,
                ),
            )
        assert replica.last_executed == -1

    def test_honest_majority_wins_during_recovery(self):
        """Full-system: one Byzantine peer feeds garbage state replies
        while a replica recovers; the honest majority's state is the
        one installed."""
        cluster = Cluster()
        proxy = cluster.proxy()
        self.advance(cluster, proxy, 3)
        cluster.replicas[3].crash()
        self.advance(cluster, proxy, 25)

        from repro.smart.messages import StateReply as SR

        def corrupt_state(src, dst, payload):
            if isinstance(payload, SR) and src == 2:
                fake = {"total": -1, "history": [-1]}
                return SR(
                    sender=2,
                    checkpoint_cid=payload.checkpoint_cid,
                    state=fake,
                    state_hash=state_digest(fake),
                    log=[],
                    last_cid=payload.last_cid,
                )
            return payload

        cluster.network.add_filter(corrupt_state)
        cluster.replicas[3].recover()
        cluster.run(6.0)
        assert cluster.apps[3].total == 28
        assert cluster.apps[3].history == cluster.apps[0].history


class TestCandidateSelection:
    """The install step must not depend on reply arrival order."""

    def make_reply(self, sender, state, log_op, cid=6):
        from repro.smart.messages import ClientRequest

        batch = [ClientRequest(client_id=900 + sender, sequence=0, operation=log_op)]
        return StateReply(
            sender=sender,
            checkpoint_cid=5,
            state=state,
            state_hash=state_digest(state),
            log=[(cid, batch)],
            last_cid=cid,
        )

    def test_lowest_replica_id_wins_regardless_of_arrival(self, cluster):
        """Replies agree on (checkpoint, hash, last_cid) but differ in
        their log field; the reply from the lowest replica id must be
        the one replayed, whatever order the replies arrived in."""
        replica = cluster.replicas[3]
        replica.state_transfer.in_progress = True
        state = {"total": 10, "history": [10]}
        # arrival order 1 then 2: the pre-fix code installed from the
        # *triggering* (last-arriving) reply, i.e. sender 2's log
        replica.state_transfer.on_state_reply(1, self.make_reply(1, state, log_op=7))
        replica.state_transfer.on_state_reply(2, self.make_reply(2, state, log_op=9))
        assert replica.last_executed == 6
        assert cluster.apps[3].total == 17  # checkpoint 10 + sender 1's op 7
        assert cluster.apps[3].history[-1] == 7

    def test_corrupt_lowest_reply_skipped_for_next_verified(self, cluster):
        """A lowest-id reply whose shipped state fails its own digest
        is skipped; the next verified reply (by id) installs."""
        replica = cluster.replicas[3]
        replica.state_transfer.in_progress = True
        state = {"total": 10, "history": [10]}
        bad = self.make_reply(1, state, log_op=7)
        bad = StateReply(
            sender=1,
            checkpoint_cid=bad.checkpoint_cid,
            state={"total": -1, "history": [-1]},  # does not match hash
            state_hash=bad.state_hash,
            log=bad.log,
            last_cid=bad.last_cid,
        )
        replica.state_transfer.on_state_reply(1, bad)
        replica.state_transfer.on_state_reply(2, self.make_reply(2, state, log_op=9))
        assert replica.last_executed == 6
        assert cluster.apps[3].total == 19  # sender 2's log replayed
