"""Unit tests for measurement instruments."""

import bisect
import math
import random

import pytest

from repro.sim.monitor import (
    Counter,
    LatencyRecorder,
    StatsRegistry,
    ThroughputMeter,
    percentile_of_sorted,
    sample_stdev,
    summarize,
)


class TestPercentileOfSorted:
    def test_empty_is_nan(self):
        assert math.isnan(percentile_of_sorted([], 50.0))
        assert math.isnan(percentile_of_sorted([], 0.0))

    def test_single_sample_is_every_percentile(self):
        for p in (0.0, 50.0, 95.0, 100.0):
            assert percentile_of_sorted([7.5], p) == 7.5

    def test_p0_p100_are_extremes(self):
        data = [1.0, 4.0, 9.0]
        assert percentile_of_sorted(data, 0.0) == 1.0
        assert percentile_of_sorted(data, 100.0) == 9.0

    def test_linear_interpolation(self):
        # rank = 0.25 * 3 = 0.75 between 1.0 and 2.0
        assert percentile_of_sorted([1.0, 2.0, 3.0, 4.0], 25.0) == pytest.approx(1.75)
        assert percentile_of_sorted([1.0, 2.0], 50.0) == pytest.approx(1.5)

    def test_p95_of_hundred(self):
        data = [float(i) for i in range(100)]
        assert percentile_of_sorted(data, 95.0) == pytest.approx(94.05)

    def test_out_of_range_rejected(self):
        for p in (-0.1, 100.1, 1000.0):
            with pytest.raises(ValueError):
                percentile_of_sorted([1.0], p)


class TestSampleStdev:
    def test_fewer_than_two_is_nan(self):
        assert math.isnan(sample_stdev([]))
        assert math.isnan(sample_stdev([3.0]))

    def test_bessel_correction(self):
        # variance of [2, 4, 4, 4, 5, 5, 7, 9] is 32/7 with n-1
        data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        assert sample_stdev(data) == pytest.approx(math.sqrt(32.0 / 7.0))

    def test_constant_samples_zero(self):
        assert sample_stdev([5.0, 5.0, 5.0]) == 0.0

    def test_precomputed_mean_matches(self):
        data = [1.0, 2.0, 6.0]
        assert sample_stdev(data, mean=3.0) == pytest.approx(sample_stdev(data))


class TestSummarize:
    def test_keys(self):
        assert set(summarize([1.0])) == {
            "count", "mean", "median", "p95", "stdev", "min", "max",
        }

    def test_empty_all_nan_except_count(self):
        stats = summarize([])
        assert stats["count"] == 0.0
        for key in ("mean", "median", "p95", "stdev", "min", "max"):
            assert math.isnan(stats[key]), key

    def test_values(self):
        stats = summarize([3.0, 1.0, 2.0, 4.0])
        assert stats["count"] == 4.0
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["median"] == pytest.approx(2.5)
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0
        assert stats["stdev"] == pytest.approx(sample_stdev([1.0, 2.0, 3.0, 4.0]))

    def test_input_order_irrelevant(self):
        assert summarize([3.0, 1.0, 2.0]) == summarize([1.0, 2.0, 3.0])


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter().value == 0

    def test_increment(self):
        counter = Counter()
        counter.increment()
        counter.increment(5)
        assert counter.value == 6


class TestLatencyRecorder:
    def test_empty_stats_are_nan(self):
        recorder = LatencyRecorder()
        assert math.isnan(recorder.mean)
        assert math.isnan(recorder.median)

    def test_mean(self):
        recorder = LatencyRecorder()
        recorder.extend([1.0, 2.0, 3.0])
        assert recorder.mean == pytest.approx(2.0)

    def test_median_odd(self):
        recorder = LatencyRecorder()
        recorder.extend([3.0, 1.0, 2.0])
        assert recorder.median == pytest.approx(2.0)

    def test_median_even_interpolates(self):
        recorder = LatencyRecorder()
        recorder.extend([1.0, 2.0, 3.0, 4.0])
        assert recorder.median == pytest.approx(2.5)

    def test_p90(self):
        recorder = LatencyRecorder()
        recorder.extend(float(i) for i in range(1, 11))
        assert recorder.p90 == pytest.approx(9.1)

    def test_percentile_bounds(self):
        recorder = LatencyRecorder()
        recorder.extend([5.0, 1.0])
        assert recorder.percentile(0) == 1.0
        assert recorder.percentile(100) == 5.0
        with pytest.raises(ValueError):
            recorder.percentile(101)

    def test_min_max(self):
        recorder = LatencyRecorder()
        recorder.extend([4.0, 2.0, 9.0])
        assert recorder.minimum == 2.0
        assert recorder.maximum == 9.0

    def test_reset(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        recorder.reset()
        assert recorder.count == 0
        recorder.record(2.0)
        assert recorder.median == 2.0

    def test_empty_percentiles_are_nan(self):
        recorder = LatencyRecorder()
        assert math.isnan(recorder.percentile(50.0))
        assert math.isnan(recorder.p95)
        assert math.isnan(recorder.minimum)
        assert math.isnan(recorder.maximum)

    def test_single_sample_percentiles(self):
        recorder = LatencyRecorder()
        recorder.record(3.5)
        for p in (0.0, 50.0, 100.0):
            assert recorder.percentile(p) == 3.5

    def test_p95(self):
        recorder = LatencyRecorder()
        recorder.extend(float(i) for i in range(1, 101))
        assert recorder.p95 == pytest.approx(95.05)

    def test_stdev(self):
        recorder = LatencyRecorder()
        assert math.isnan(recorder.stdev)
        recorder.record(1.0)
        assert math.isnan(recorder.stdev)
        recorder.extend([2.0, 3.0])
        assert recorder.stdev == pytest.approx(1.0)

    def test_cached_sort_invalidated_by_record(self):
        # regression: the cached sorted view must be rebuilt after a
        # mid-run insertion, or percentiles silently report stale data
        recorder = LatencyRecorder()
        recorder.extend([3.0, 1.0])
        assert recorder.median == pytest.approx(2.0)  # builds the cache
        recorder.record(100.0)
        assert recorder.median == pytest.approx(3.0)
        assert recorder.maximum == 100.0

    def test_cached_sort_invalidated_by_reset(self):
        recorder = LatencyRecorder()
        recorder.extend([5.0, 6.0])
        assert recorder.median == pytest.approx(5.5)  # builds the cache
        recorder.reset()
        recorder.record(1.0)
        assert recorder.median == 1.0

    def test_queries_never_disturb_arrival_order(self):
        # regression: an earlier revision sorted the sample list in
        # place, so querying a percentile mid-run destroyed the arrival
        # order that order-sensitive statistics rely on
        recorder = LatencyRecorder()
        recorder.extend([3.0, 1.0, 2.0])
        recorder.median
        recorder.percentile(90.0)
        assert recorder.samples == [3.0, 1.0, 2.0]
        recorder.record(0.5)
        assert recorder.samples == [3.0, 1.0, 2.0, 0.5]

    def test_summary_keys(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        summary = recorder.summary()
        assert set(summary) == {
            "count", "mean", "median", "p90", "p95", "stdev", "min", "max",
        }

    def test_interleaved_record_and_query(self):
        """Queries between insertions must see the up-to-date sample set
        (the lazy sort cache invalidates on every record)."""
        recorder = LatencyRecorder()
        recorder.extend([5.0, 1.0])
        assert recorder.median == pytest.approx(3.0)
        recorder.record(0.0)
        assert recorder.median == pytest.approx(1.0)
        assert recorder.minimum == 0.0
        recorder.record(9.0)
        assert recorder.maximum == 9.0

    def test_lazy_sort_matches_insort_reference(self):
        """Percentiles from the amortized append+sort scheme are identical
        to an insort-per-sample reference over random interleavings."""
        rng = random.Random(20180625)
        recorder = LatencyRecorder()
        reference: list = []
        for _ in range(500):
            sample = rng.expovariate(1.0)
            recorder.record(sample)
            bisect.insort(reference, sample)
            if rng.random() < 0.2:
                for p in (0.0, 25.0, 50.0, 90.0, 95.0, 100.0):
                    assert recorder.percentile(p) == percentile_of_sorted(reference, p)
        assert recorder._sorted_samples() == reference
        summary = recorder.summary()
        # mean/stdev accumulate in insertion order, the reference sums in
        # sorted order — equal up to float addition reordering only
        assert summary["mean"] == pytest.approx(sum(reference) / 500.0, rel=1e-12)
        assert summary["stdev"] == pytest.approx(sample_stdev(reference), rel=1e-9)
        for key, p in (("median", 50.0), ("p90", 90.0), ("p95", 95.0)):
            assert summary[key] == percentile_of_sorted(reference, p)
        assert summary["min"] == reference[0]
        assert summary["max"] == reference[-1]
        assert summary["count"] == 500.0


class TestThroughputMeter:
    def test_rate_over_window(self):
        meter = ThroughputMeter()
        for i in range(11):
            meter.record(float(i), 10.0)
        assert meter.rate() == pytest.approx(110.0 / 10.0)

    def test_rate_with_explicit_window(self):
        meter = ThroughputMeter()
        for i in range(11):
            meter.record(float(i), 1.0)
        assert meter.rate(start=5.0, end=10.0) == pytest.approx(6.0 / 5.0)

    def test_empty_meter_rate_zero(self):
        assert ThroughputMeter().rate() == 0.0

    def test_out_of_order_rejected(self):
        meter = ThroughputMeter()
        meter.record(2.0)
        with pytest.raises(ValueError):
            meter.record(1.0)

    def test_total(self):
        meter = ThroughputMeter()
        meter.record(0.0, 5.0)
        meter.record(1.0, 7.0)
        assert meter.total == 12.0


class TestStatsRegistry:
    def test_same_name_same_instrument(self):
        registry = StatsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.latency("y") is registry.latency("y")
        assert registry.meter("z") is registry.meter("z")

    def test_summary_contains_all(self):
        registry = StatsRegistry()
        registry.counter("c").increment()
        registry.latency("l").record(1.0)
        registry.meter("m").record(0.0, 1.0)
        summary = registry.summary()
        assert set(summary) == {"c", "l", "m"}
