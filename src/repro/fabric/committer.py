"""Committing peers: validation and ledger commitment (paper §3, steps 5-6).

When a block arrives from the ordering service, the peer validates
every envelope:

1. **endorsement policy** (VSCC): enough *valid* endorsement
   signatures from the right organizations;
2. **MVCC read-set check**: every key version read at endorsement time
   must still be current -- considering both committed state and
   writes applied by earlier valid transactions of the same block.

Invalid transactions are still appended to the ledger (marked invalid,
useful to expose malicious clients) but their writes are discarded.
Valid writes commit at version ``(block, tx_index)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.crypto.keys import KeyRegistry
from repro.fabric.api import BlockDelivery, BlockRequest, BlockResponse, CommitEvent
from repro.fabric.block import Block
from repro.fabric.blockpolicy import BlockValidityPolicy, SignatureCountPolicy
from repro.fabric.channel import ChannelConfig
from repro.fabric.envelope import Envelope, Transaction, Version
from repro.fabric.ledger import Ledger
from repro.fabric.policy import EndorsementPolicy
from repro.fabric.statedb import VersionedKVStore
from repro.sim.core import Simulator
from repro.sim.network import Network


class ValidationCode(enum.Enum):
    VALID = "VALID"
    ENDORSEMENT_POLICY_FAILURE = "ENDORSEMENT_POLICY_FAILURE"
    MVCC_READ_CONFLICT = "MVCC_READ_CONFLICT"
    BAD_SIGNATURE = "BAD_SIGNATURE"
    DUPLICATE_TXID = "DUPLICATE_TXID"


def _valid_endorsement_orgs(
    tx: Transaction, registry: Optional[KeyRegistry]
) -> Set[str]:
    """Organizations whose endorsement signatures verify."""
    orgs: Set[str] = set()
    payload = tx.response_payload()
    for endorsement in tx.endorsements:
        if registry is None:
            orgs.add(endorsement.org)
            continue
        if endorsement.endorser not in registry:
            continue
        verifier = registry.verifier_of(endorsement.endorser)
        if verifier.verify(payload, endorsement.signature):
            orgs.add(registry.org_of(endorsement.endorser))
    return orgs


def validate_block(
    block: Block,
    state: VersionedKVStore,
    policy_for: Callable[[Envelope], EndorsementPolicy],
    registry: Optional[KeyRegistry] = None,
    seen_tx_ids: Optional[Set[int]] = None,
) -> List[ValidationCode]:
    """Validate every envelope of ``block`` against ``state``.

    Pure function (does not mutate ``state``); returns one code per
    envelope.  The MVCC check accounts for intra-block dependencies:
    writes of earlier *valid* transactions invalidate later readers of
    the same keys within the block.
    """
    codes: List[ValidationCode] = []
    block_writes: Dict[str, int] = {}  # key -> tx index that wrote it
    seen = seen_tx_ids if seen_tx_ids is not None else set()
    for index, envelope in enumerate(block.envelopes):
        tx = envelope.transaction
        if tx is None:
            codes.append(ValidationCode.VALID)
            continue
        if tx.tx_id in seen:
            codes.append(ValidationCode.DUPLICATE_TXID)
            continue
        seen.add(tx.tx_id)
        orgs = _valid_endorsement_orgs(tx, registry)
        if not orgs and tx.endorsements:
            codes.append(ValidationCode.BAD_SIGNATURE)
            continue
        if not policy_for(envelope).satisfied_by(orgs):
            codes.append(ValidationCode.ENDORSEMENT_POLICY_FAILURE)
            continue
        conflict = False
        for key, version in sorted(tx.read_set.reads.items()):
            if key in block_writes:
                conflict = True  # an earlier tx in this block wrote it
                break
            current = state.version_of(key)
            if current != (tuple(version) if version is not None else None):
                conflict = True
                break
        if conflict:
            codes.append(ValidationCode.MVCC_READ_CONFLICT)
            continue
        for key in tx.write_set.writes:
            block_writes[key] = index
        codes.append(ValidationCode.VALID)
    return codes


@dataclass
class CommitRecord:
    """What a peer remembers about one committed block."""

    block: Block
    codes: List[ValidationCode]

    @property
    def valid_count(self) -> int:
        return sum(1 for c in self.codes if c is ValidationCode.VALID)


class CommittingPeer:
    """A peer maintaining one channel's ledger and world state."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        config: ChannelConfig,
        registry: Optional[KeyRegistry] = None,
        orderer_names: Optional[Set[str]] = None,
        required_block_signatures: int = 0,
        policy_for: Optional[Callable[[Envelope], EndorsementPolicy]] = None,
        block_policy: Optional[BlockValidityPolicy] = None,
    ):
        self.sim = sim
        self.network = network
        self.name = name
        self.config = config
        self.registry = registry
        self.orderer_names = orderer_names or set()
        self.required_block_signatures = required_block_signatures
        #: per-backend block-validity policy; the legacy
        #: ``required_block_signatures`` knob converts to the BFT-SMaRt
        #: signature-count policy for backward compatibility
        self.block_policy = block_policy or SignatureCountPolicy(
            required_block_signatures,
            registry=registry,
            orderer_names=self.orderer_names,
        )
        self.ledger = Ledger(config.channel_id)
        self.state = VersionedKVStore()
        self._policy_for = policy_for or (lambda _env: config.endorsement_policy)
        self._seen_tx_ids: Set[int] = set()
        self.commits: List[CommitRecord] = []
        self.rejected_blocks = 0
        self.on_commit: List[Callable[[CommitRecord], None]] = []
        #: other committing peers to fetch missed blocks from (gossip)
        self.neighbors: List[object] = []
        self._future_blocks: Dict[int, Block] = {}
        self.blocks_served = 0
        self.blocks_fetched = 0

    def add_neighbor(self, peer_id: object) -> None:
        """Register a peer to gossip missed blocks with."""
        if peer_id not in self.neighbors and peer_id != self.name:
            self.neighbors.append(peer_id)

    # ------------------------------------------------------------------
    def deliver(self, src, message) -> None:
        if isinstance(message, BlockDelivery):
            self.receive_block(message.block)
        elif isinstance(message, BlockRequest):
            self._serve_blocks(message)
        elif isinstance(message, BlockResponse):
            self._on_block_response(message)

    def receive_block(self, block: Block) -> None:
        """Validate, commit and notify (idempotent on duplicates)."""
        if block.channel_id != self.config.channel_id:
            return  # this peer is not a member of that channel
        if block.header.number < self.ledger.height:
            return  # duplicate delivery (e.g. from several frontends)
        if not self._block_signatures_ok(block):
            # verify before buffering: an unsigned future block must not
            # occupy the gap buffer or trigger gossip fetches
            self.rejected_blocks += 1
            return
        if block.header.number > self.ledger.height:
            # gap: buffer the future block and gossip for the missing
            # range, like Fabric's deliver/gossip services
            self._future_blocks.setdefault(block.header.number, block)
            self._request_missing(block.header.number - 1)
            return
        codes = validate_block(
            block, self.state, self._policy_for, self.registry, self._seen_tx_ids
        )
        for index, (envelope, code) in enumerate(zip(block.envelopes, codes)):
            if code is ValidationCode.VALID and envelope.transaction is not None:
                version: Version = (block.header.number, index)
                self.state.apply_write_set(
                    envelope.transaction.write_set.writes, version
                )
        self.ledger.append(block)
        record = CommitRecord(block=block, codes=codes)
        self.commits.append(record)
        for callback in self.on_commit:
            callback(record)
        self._notify_clients(record)
        # drain any buffered future blocks that are now in sequence
        next_block = self._future_blocks.pop(self.ledger.height, None)
        if next_block is not None:
            self.receive_block(next_block)

    # ------------------------------------------------------------------
    # gossip catch-up
    # ------------------------------------------------------------------
    def _request_missing(self, up_to: int) -> None:
        if not self.neighbors:
            self.rejected_blocks += 1
            return
        request = BlockRequest(
            channel_id=self.config.channel_id,
            from_number=self.ledger.height,
            to_number=up_to,
            reply_to=self.name,
        )
        for neighbor in self.neighbors:
            self.network.send(self.name, neighbor, request, request.wire_size())

    def _serve_blocks(self, request: BlockRequest) -> None:
        if request.channel_id != self.config.channel_id:
            return
        available = [
            self.ledger.get(number)
            for number in range(request.from_number, request.to_number + 1)
            if number < self.ledger.height
        ]
        if not available:
            return
        self.blocks_served += len(available)
        response = BlockResponse(channel_id=self.config.channel_id, blocks=available)
        self.network.send(
            self.name, request.reply_to, response, response.wire_size()
        )

    def _on_block_response(self, response: BlockResponse) -> None:
        if response.channel_id != self.config.channel_id:
            return
        for block in sorted(response.blocks, key=lambda b: b.header.number):
            if block.header.number == self.ledger.height:
                self.blocks_fetched += 1
                self.receive_block(block)

    def _block_signatures_ok(self, block: Block) -> bool:
        """Delegate block trust to the backend's validity policy."""
        return self.block_policy.check(block)

    def _notify_clients(self, record: CommitRecord) -> None:
        for envelope, code in zip(record.block.envelopes, record.codes):
            if envelope.transaction is None or not envelope.submitter:
                continue
            event = CommitEvent(
                tx_id=envelope.transaction.tx_id,
                envelope_id=envelope.envelope_id,
                block_number=record.block.header.number,
                validation_code=code.value,
                peer=self.name,
                commit_time=self.sim.now,
            )
            self.network.send(self.name, envelope.submitter, event, event.wire_size())
