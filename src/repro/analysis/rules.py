"""Protocol-aware AST rules: the DET and PROTO families.

Every rule is a named entry in :data:`CATALOG` with an id, a scope (the
path prefixes it applies to), and a one-line contract.  The checkers
live in :class:`FileChecker`; :mod:`repro.analysis.engine` drives them
over the tree and applies the shared suppression syntax
(:mod:`repro.analysis.suppress`).

DET rules -- determinism under a seed:

- ``DET001`` wall-clock reads (``time.time``, ``datetime.now``, ...):
  all time must come from ``Simulator.now``.
- ``DET002`` ambient randomness (module-level ``random.*``,
  ``os.urandom``, ``uuid.uuid1/uuid4``, ``secrets.*``): all randomness
  must come from seeded ``repro.sim.randomness.RandomStreams``
  (``random.Random(seed)`` instances are fine).
- ``DET003`` iteration over a ``set`` in an ordering position: set
  iteration order depends on element hashes (and, for strings, on the
  interpreter's per-process hash seed), so any ``for``/comprehension
  over a set that is not wrapped in ``sorted(...)`` or consumed by an
  order-insensitive aggregator is flagged.
- ``DET004`` iteration over dict ``.values()``/``.items()`` in an
  ordering position: insertion order encodes *arrival* order, which is
  exactly where same-timestamp races hide.  Wrap in ``sorted(...)``,
  or keep the container an ``OrderedDict`` (the explicit marker that
  insertion order -- FIFO -- is the protocol contract).
- ``DET005`` ordering by ``id()``/``hash()``: memory addresses and
  string hashes vary across processes.

PROTO rules -- protocol invariants:

- ``PROTO001`` open-coded quorum arithmetic (``2*f+1``, ``3*f+1``,
  ``(n+f+1)//2``) outside ``smart/view.py``/``smart/quorums.py``/
  ``smart/wheat.py``: a typo in quorum math is a safety bug; use the
  named helpers on :class:`repro.smart.view.View`.
- ``PROTO002`` state mutation before verification in a message
  handler: a handler that verifies signatures/certificates must not
  mutate ``self`` state before the first verifying call.
- ``PROTO003`` scheduling primitives (``heapq``, ``threading``,
  ``sched``, ``asyncio``, ``time.sleep``) outside ``sim/core.py``:
  all concurrency must go through the deterministic simulator kernel.
  Also flags constructing (or aliasing for construction) raw
  ``EventHandle`` objects outside the kernel: handles are pooled and
  reused, so hand-built ones bypass the pool's lifecycle invariants.
  Importing ``EventHandle`` for type annotations stays legal.

Order-insensitive aggregators accepted by DET003/DET004: ``sum``,
``min``, ``max``, ``len``, ``any``, ``all``, ``sorted``, ``set``,
``frozenset`` -- their result does not depend on iteration order
(``min``/``max`` ties break by first occurrence, but a total order on
the key makes that moot; prefer an explicit tie-break key when keys can
collide).  Set and dict comprehensions are rebuilds into unordered /
key-addressed containers and are likewise exempt.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

# ----------------------------------------------------------------------
# catalog
# ----------------------------------------------------------------------
#: Path prefixes (posix, repo-relative) of the protocol core where the
#: iteration-order rules apply.
PROTOCOL_PATHS = (
    "src/repro/smart/",
    "src/repro/sim/",
    "src/repro/ordering/",
    "src/repro/fabric/",
)

#: Modules allowed to open-code quorum arithmetic (they *define* it).
QUORUM_HOME = (
    "src/repro/smart/view.py",
    "src/repro/smart/quorums.py",
    "src/repro/smart/wheat.py",
)

#: The one module allowed to touch scheduling primitives.
SCHEDULER_HOME = ("src/repro/sim/core.py",)


@dataclass(frozen=True)
class Rule:
    """One catalog entry."""

    rule_id: str
    title: str
    #: apply only under these path prefixes (empty: everywhere)
    only_under: Tuple[str, ...] = ()
    #: never apply to these exact paths (the rule's "home" modules)
    exempt_paths: Tuple[str, ...] = ()

    def applies_to(self, rel_path: str) -> bool:
        if rel_path in self.exempt_paths:
            return False
        if self.only_under and not any(
            rel_path.startswith(prefix) for prefix in self.only_under
        ):
            return False
        return True


CATALOG: Dict[str, Rule] = {
    rule.rule_id: rule
    for rule in (
        Rule("DET001", "wall-clock read in simulated code"),
        Rule("DET002", "ambient (unseeded) randomness"),
        Rule(
            "DET003",
            "set iteration in an ordering position",
            only_under=PROTOCOL_PATHS,
        ),
        Rule(
            "DET004",
            "dict .values()/.items() iteration in an ordering position",
            only_under=PROTOCOL_PATHS,
        ),
        Rule("DET005", "ordering by id()/hash()"),
        Rule(
            "PROTO001",
            "open-coded quorum arithmetic",
            exempt_paths=QUORUM_HOME,
        ),
        Rule("PROTO002", "state mutation before verification in a handler"),
        Rule(
            "PROTO003",
            "scheduling primitive bypassing the simulator kernel",
            exempt_paths=SCHEDULER_HOME,
        ),
    )
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
WALL_CLOCK_TIME_FNS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "localtime",
    "gmtime",
    "ctime",
}
WALL_CLOCK_DATETIME_FNS = {"now", "utcnow", "today"}

#: ``random.<name>`` calls that are still deterministic/seedable.
RANDOM_ALLOWED = {"Random"}
NONDET_UUID_FNS = {"uuid1", "uuid4"}

AGGREGATORS = {
    "sum",
    "min",
    "max",
    "len",
    "any",
    "all",
    "sorted",
    "set",
    "frozenset",
}

#: ``list``/``tuple``/``iter`` materialize iteration order: their
#: argument is an ordering position just like a ``for`` target.
MATERIALIZERS = {"list", "tuple", "iter"}

MUTATOR_METHODS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
}

VERIFY_NAME_RE = re.compile(r"verify|valid|signature|certificate|authent")
HANDLER_NAME_RE = re.compile(r"^_?(on_|receive_|handle_)")

BANNED_SCHEDULING_MODULES = {"heapq", "threading", "_thread", "sched", "asyncio"}

#: Kernel event-pool type: constructing one by hand outside sim/core.py
#: bypasses pooling (importing it for type annotations is fine).
EVENT_HANDLE_NAME = "EventHandle"


def _call_name(node: ast.Call) -> Optional[str]:
    """The called name: ``foo`` for ``foo(...)``/``x.foo(...)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _root_name(node: ast.AST) -> Optional[str]:
    """The leftmost name of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_f_like(node: ast.AST) -> bool:
    """Does this expression look like a fault threshold ``f``?"""
    if isinstance(node, ast.Name):
        return node.id == "f" or node.id.endswith("_f")
    if isinstance(node, ast.Attribute):
        return node.attr == "f" or node.attr.endswith("_f")
    return False


def _annotation_text(node: Optional[ast.AST]) -> str:
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed annotation
        return ""


def _inferred_kind(value: Optional[ast.AST], annotation: str) -> Optional[str]:
    """``"set"``/``"ordered"`` when the assigned value or annotation
    pins the container type; ``None`` when unknown."""
    if "OrderedDict" in annotation:
        return "ordered"
    lowered = annotation.lower()
    if lowered.startswith(("set[", "frozenset[", "typing.set[")) or lowered in (
        "set",
        "frozenset",
    ) or annotation.startswith(("Set[", "FrozenSet[", "typing.Set[")):
        return "set"
    if value is None:
        return None
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call):
        name = _call_name(value)
        if isinstance(value.func, ast.Name) and name in ("set", "frozenset"):
            return "set"
        if name == "OrderedDict":
            return "ordered"
    return None


class _ContainerKinds:
    """Best-effort container typing: ``self.X`` attributes per class
    plus simple local/module names, mapped to ``"set"``/``"ordered"``."""

    def __init__(self, tree: ast.Module):
        self.attrs: Dict[str, str] = {}
        self.names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign):
                kind = _inferred_kind(node.value, _annotation_text(node.annotation))
                self._record(node.target, kind)
            elif isinstance(node, ast.Assign):
                kind = _inferred_kind(node.value, "")
                for target in node.targets:
                    self._record(target, kind)
            elif isinstance(node, ast.arg):
                kind = _inferred_kind(None, _annotation_text(node.annotation))
                if kind is not None:
                    self.names[node.arg] = kind

    def _record(self, target: ast.AST, kind: Optional[str]) -> None:
        if kind is None:
            return
        if isinstance(target, ast.Name):
            self.names[target.id] = kind
        elif isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ) and target.value.id == "self":
            self.attrs[target.attr] = kind

    def kind_of(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self.names.get(node.id)
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ) and node.value.id == "self":
            return self.attrs.get(node.attr)
        return None


# ----------------------------------------------------------------------
# the per-file checker
# ----------------------------------------------------------------------
class FileChecker:
    """Runs every applicable rule over one parsed module."""

    def __init__(self, rel_path: str, tree: ast.Module):
        self.rel_path = rel_path
        self.tree = tree
        self.findings: List[Finding] = []
        self._parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        self._kinds = _ContainerKinds(tree)

    # -- plumbing ------------------------------------------------------
    def _active(self, rule_id: str) -> bool:
        return CATALOG[rule_id].applies_to(self.rel_path)

    def _report(self, rule_id: str, node: ast.AST, message: str) -> None:
        if not self._active(rule_id):
            return
        self.findings.append(
            Finding(
                rule=rule_id,
                path=self.rel_path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def _parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def check(self) -> List[Finding]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                self._check_wall_clock(node)
                self._check_randomness(node)
                self._check_id_hash_key(node)
                self._check_scheduling_call(node)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                self._check_scheduling_import(node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._check_handle_alias(node)
            elif isinstance(node, ast.BinOp):
                self._check_quorum_arith(node)
            elif isinstance(node, ast.Compare):
                self._check_id_hash_compare(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_handler_mutation(node)
        self._check_iteration_sites()
        self.findings.sort(key=lambda f: (f.line, f.col, f.rule))
        return self.findings

    # -- DET001: wall clock -------------------------------------------
    def _check_wall_clock(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        owner = func.value
        if isinstance(owner, ast.Name) and owner.id == "time":
            if func.attr in WALL_CLOCK_TIME_FNS:
                self._report(
                    "DET001",
                    node,
                    f"wall-clock read time.{func.attr}(); use Simulator.now",
                )
        if func.attr in WALL_CLOCK_DATETIME_FNS:
            base = owner
            if isinstance(base, ast.Attribute):
                base = base.value  # datetime.datetime.now()
            if isinstance(base, ast.Name) and base.id in ("datetime", "date"):
                self._report(
                    "DET001",
                    node,
                    f"wall-clock read {ast.unparse(node.func)}(); use Simulator.now",
                )

    # -- DET002: ambient randomness -----------------------------------
    def _check_randomness(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        owner = func.value
        if not isinstance(owner, ast.Name):
            return
        if owner.id == "random" and func.attr not in RANDOM_ALLOWED:
            self._report(
                "DET002",
                node,
                f"module-level random.{func.attr}(); draw from a seeded "
                "RandomStreams stream instead",
            )
        elif owner.id == "os" and func.attr == "urandom":
            self._report(
                "DET002", node, "os.urandom(); draw from seeded RandomStreams"
            )
        elif owner.id == "uuid" and func.attr in NONDET_UUID_FNS:
            self._report(
                "DET002",
                node,
                f"uuid.{func.attr}() is nondeterministic; derive ids from "
                "seeded streams or counters",
            )
        elif owner.id == "secrets":
            self._report(
                "DET002", node, f"secrets.{func.attr}() is OS entropy"
            )

    # -- DET005: ordering by id()/hash() ------------------------------
    def _check_id_hash_key(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name not in ("sorted", "min", "max"):
            return
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            value = keyword.value
            if isinstance(value, ast.Name) and value.id in ("id", "hash"):
                self._report(
                    "DET005",
                    keyword.value,
                    f"ordering by {value.id}() is process-dependent; "
                    "use a stable protocol key",
                )
            elif isinstance(value, ast.Lambda):
                for inner in ast.walk(value.body):
                    if (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Name)
                        and inner.func.id in ("id", "hash")
                    ):
                        self._report(
                            "DET005",
                            inner,
                            f"ordering by {inner.func.id}() is "
                            "process-dependent; use a stable protocol key",
                        )

    def _check_id_hash_compare(self, node: ast.Compare) -> None:
        ordering_ops = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)
        if not any(isinstance(op, ordering_ops) for op in node.ops):
            return
        for operand in (node.left, *node.comparators):
            if (
                isinstance(operand, ast.Call)
                and isinstance(operand.func, ast.Name)
                and operand.func.id in ("id", "hash")
            ):
                self._report(
                    "DET005",
                    operand,
                    f"comparing {operand.func.id}() values orders by "
                    "process-dependent data",
                )

    # -- DET003/DET004: iteration order -------------------------------
    def _check_iteration_sites(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.For):
                self._check_iterable(node.iter, exempt=False)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                exempt = self._comp_feeds_aggregator(node)
                for generator in node.generators:
                    self._check_iterable(generator.iter, exempt=exempt)
            elif isinstance(node, (ast.SetComp, ast.DictComp)):
                # rebuild into an unordered / key-addressed container
                for generator in node.generators:
                    self._check_iterable(generator.iter, exempt=True)
            elif isinstance(node, ast.Call):
                name = _call_name(node)
                if (
                    isinstance(node.func, ast.Name)
                    and name in MATERIALIZERS
                    and node.args
                ):
                    self._check_iterable(node.args[0], exempt=False)

    def _comp_feeds_aggregator(self, comp: ast.AST) -> bool:
        """Is this comprehension the argument of an order-insensitive
        aggregator call (``sum(... for ...)``, ``max([...])``)?"""
        parent = self._parent(comp)
        if isinstance(parent, ast.Call):
            name = _call_name(parent)
            if (
                isinstance(parent.func, ast.Name)
                and name in AGGREGATORS
                and comp in parent.args
            ):
                return True
        return False

    def _check_iterable(self, iterable: ast.AST, exempt: bool) -> None:
        if isinstance(iterable, ast.Call):
            name = _call_name(iterable)
            if isinstance(iterable.func, ast.Name) and name in AGGREGATORS:
                return  # sorted(...)/set(...) wrapper: order pinned or moot
            if (
                isinstance(iterable.func, ast.Attribute)
                and iterable.func.attr in ("values", "items")
                and not iterable.args
            ):
                if exempt:
                    return
                receiver = iterable.func.value
                if self._kinds.kind_of(receiver) == "ordered":
                    return  # OrderedDict: insertion order is the contract
                self._report(
                    "DET004",
                    iterable,
                    f"iteration over {ast.unparse(iterable)} feeds an "
                    "ordering position; wrap in sorted(...) with an "
                    "explicit key (or keep the container an OrderedDict)",
                )
                return
            if isinstance(iterable.func, ast.Name) and name in (
                "set",
                "frozenset",
            ):  # pragma: no cover - AGGREGATORS already returned
                return
        if exempt:
            return
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            self._report(
                "DET003",
                iterable,
                "iterating a set literal in an ordering position; "
                "wrap in sorted(...)",
            )
            return
        if self._kinds.kind_of(iterable) == "set":
            self._report(
                "DET003",
                iterable,
                f"iterating set {ast.unparse(iterable)} in an ordering "
                "position; wrap in sorted(...)",
            )

    # -- PROTO001: quorum arithmetic ----------------------------------
    def _check_quorum_arith(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Add):
            mult, one = node.left, node.right
            if not (isinstance(one, ast.Constant) and one.value == 1):
                mult, one = node.right, node.left
            if (
                isinstance(one, ast.Constant)
                and one.value == 1
                and isinstance(mult, ast.BinOp)
                and isinstance(mult.op, ast.Mult)
            ):
                factor, f_expr = mult.left, mult.right
                if not isinstance(factor, ast.Constant):
                    factor, f_expr = mult.right, mult.left
                if (
                    isinstance(factor, ast.Constant)
                    and factor.value in (2, 3)
                    and _is_f_like(f_expr)
                ):
                    self._report(
                        "PROTO001",
                        node,
                        f"open-coded quorum size "
                        f"{factor.value}*{ast.unparse(f_expr)}+1; use the "
                        "named helpers in repro.smart.view",
                    )
            elif isinstance(one, ast.Constant) and one.value == 1 and (
                _is_f_like(mult)
            ):
                # bare f+1: the one-correct-replica threshold
                self._report(
                    "PROTO001",
                    node,
                    f"open-coded quorum size {ast.unparse(mult)}+1; use "
                    "the named helpers in repro.smart.view",
                )
        elif isinstance(node.op, (ast.Div, ast.FloorDiv)):
            if isinstance(node.right, ast.Constant) and node.right.value == 2:
                names = {
                    sub.id if isinstance(sub, ast.Name) else sub.attr
                    for sub in ast.walk(node.left)
                    if isinstance(sub, (ast.Name, ast.Attribute))
                }
                if any(n == "f" or n.endswith("_f") for n in names) and any(
                    n == "n" for n in names
                ):
                    self._report(
                        "PROTO001",
                        node,
                        "open-coded majority quorum ((n+f+1)/2 form); use "
                        "the named helpers in repro.smart.view",
                    )

    # -- PROTO002: mutate before verify -------------------------------
    def _check_handler_mutation(self, func: ast.AST) -> None:
        if not HANDLER_NAME_RE.match(func.name):
            return
        verify_line: Optional[int] = None
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name and VERIFY_NAME_RE.search(name):
                    if verify_line is None or node.lineno < verify_line:
                        verify_line = node.lineno
        if verify_line is None:
            return  # handler verifies nothing: the rule has no anchor
        for node in ast.walk(func):
            lineno = getattr(node, "lineno", None)
            if lineno is None or lineno >= verify_line:
                continue
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(
                        target, (ast.Attribute, ast.Subscript)
                    ) and _root_name(target) == "self":
                        self._report(
                            "PROTO002",
                            node,
                            f"handler {func.name} mutates "
                            f"{ast.unparse(target)} before its first "
                            "verification call (line "
                            f"{verify_line}); verify first",
                        )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if (
                    node.func.attr in MUTATOR_METHODS
                    and _root_name(node.func.value) == "self"
                ):
                    self._report(
                        "PROTO002",
                        node,
                        f"handler {func.name} calls mutator "
                        f"{ast.unparse(node.func)}() before its first "
                        f"verification call (line {verify_line}); "
                        "verify first",
                    )

    # -- PROTO003: scheduler bypass -----------------------------------
    def _check_scheduling_import(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            names = [alias.name.split(".")[0] for alias in node.names]
        else:
            names = [(node.module or "").split(".")[0]]
        for name in names:
            if name in BANNED_SCHEDULING_MODULES:
                self._report(
                    "PROTO003",
                    node,
                    f"import of {name!r} bypasses the deterministic "
                    "simulator kernel (sim/core.py); schedule through "
                    "Simulator.schedule",
                )

    def _check_scheduling_call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
            and func.attr == "sleep"
        ):
            self._report(
                "PROTO003",
                node,
                "time.sleep() blocks real time; use Simulator.schedule",
            )
        if (isinstance(func, ast.Name) and func.id == EVENT_HANDLE_NAME) or (
            isinstance(func, ast.Attribute) and func.attr == EVENT_HANDLE_NAME
        ):
            self._report(
                "PROTO003",
                node,
                "direct EventHandle(...) construction bypasses the "
                "kernel's event pool; schedule through Simulator.post/"
                "post_at/schedule",
            )

    def _check_handle_alias(self, node: ast.AST) -> None:
        """``x = EventHandle``: aliasing the class for later construction
        is the same bypass as calling it (annotations are untouched --
        ``h: Optional[EventHandle]`` never assigns the class itself)."""
        value = node.value
        if value is None:
            return
        if (isinstance(value, ast.Name) and value.id == EVENT_HANDLE_NAME) or (
            isinstance(value, ast.Attribute)
            and value.attr == EVENT_HANDLE_NAME
        ):
            self._report(
                "PROTO003",
                node,
                "aliasing EventHandle for direct construction bypasses "
                "the kernel's event pool; schedule through Simulator."
                "post/post_at/schedule",
            )


def check_source(rel_path: str, source: str) -> List[Finding]:
    """Parse and check one file; syntax errors become findings."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                rule="E999",
                path=rel_path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    return FileChecker(rel_path, tree).check()
