"""CLI for the protocol-aware analysis layer.

Subcommands:

- ``check [paths...]`` (the default): run the static DET/PROTO rules.
- ``detsan``: the runtime determinism sanitizer (double-run + diff).
- ``capture``: one instrumented scenario run to a JSON record --
  internal, spawned twice by ``detsan`` under different hash seeds.
- ``rules``: print the rule catalog.

Exit status everywhere: 0 clean, 1 findings/divergence, 2 internal
error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import detsan, engine
from .rules import CATALOG
from .suppress import DETSAN_RULES, UNKNOWN_SUPPRESSION


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=detsan.DEFAULT_SEED)
    parser.add_argument(
        "--duration", type=float, default=detsan.DEFAULT_DURATION
    )
    parser.add_argument("--rate", type=float, default=detsan.DEFAULT_RATE)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="protocol-aware static analysis + determinism sanitizer",
    )
    sub = parser.add_subparsers(dest="command")

    check = sub.add_parser("check", help="run the static DET/PROTO rules")
    check.add_argument(
        "paths",
        nargs="*",
        default=list(engine.DEFAULT_PATHS),
        help="files/directories to analyze (default: src/repro)",
    )
    check.add_argument("--json", dest="json_out", default=None)

    det = sub.add_parser("detsan", help="runtime determinism sanitizer")
    _add_scenario_args(det)
    det.add_argument("--json", dest="json_out", default=None)

    capture = sub.add_parser(
        "capture", help="one instrumented run to a JSON record (internal)"
    )
    _add_scenario_args(capture)
    capture.add_argument("--out", required=True)

    sub.add_parser("rules", help="print the rule catalog")

    args = parser.parse_args(argv)

    if args.command in (None, "check"):
        paths = getattr(args, "paths", list(engine.DEFAULT_PATHS))
        json_out = getattr(args, "json_out", None)
        return engine.run(paths, json_out=json_out)
    if args.command == "detsan":
        return detsan.run(
            seed=args.seed,
            duration=args.duration,
            rate=args.rate,
            json_out=args.json_out,
        )
    if args.command == "capture":
        record = detsan.capture_record(
            seed=args.seed, duration=args.duration, rate=args.rate
        )
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(record, sort_keys=True) + "\n")
        return 0
    if args.command == "rules":
        for rule_id in sorted(CATALOG):
            rule = CATALOG[rule_id]
            scope = ""
            if rule.only_under:
                scope = f" [only under {', '.join(rule.only_under)}]"
            elif rule.exempt_paths:
                scope = f" [exempt: {', '.join(rule.exempt_paths)}]"
            print(f"{rule_id}  {rule.title}{scope}")
        for rule_id in DETSAN_RULES:
            print(f"{rule_id}  runtime divergence (see docs/ANALYSIS.md)")
        print(f"{UNKNOWN_SUPPRESSION}  suppression names an unknown rule")
        return 0
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
