"""Figure 9: geo-distributed latency, blocks of 100 envelopes.

Paper result: same pattern as Figure 8 but with higher latency (up to
~63 ms more), because at the same workload a 10x larger block size
cuts blocks 10x less often, delaying envelope delivery.
"""

import pytest

from repro.bench.figures import GEO_FRONTEND_SITES, figure8, figure9

ENVELOPE_SIZES = (200, 1024)  # representative subset (full sweep in fig8)


@pytest.mark.benchmark(group="figure9")
def test_figure9_geo_latency_blocks_of_100(benchmark, record_result):
    def run_both():
        small_blocks = figure8(
            envelope_sizes=ENVELOPE_SIZES, block_size=10, duration=6.0
        )
        large_blocks = figure8(
            envelope_sizes=ENVELOPE_SIZES, block_size=100, duration=6.0
        )
        return small_blocks, large_blocks

    small_blocks, large_blocks = benchmark.pedantic(run_both, rounds=1, iterations=1)
    from repro.bench.tables import render_geo_results

    record_result(
        "figure9",
        render_geo_results(
            "Figure 9: geo latency, blocks of 100 envelopes", large_blocks
        ),
    )

    for es in ENVELOPE_SIZES:
        for protocol in ("bftsmart", "wheat"):
            for region in GEO_FRONTEND_SITES:
                small = next(
                    r
                    for r in small_blocks[protocol][es]
                    if r.frontend_region == region
                )
                large = next(
                    r
                    for r in large_blocks[protocol][es]
                    if r.frontend_region == region
                )
                # shape 1: larger blocks -> higher latency at the same load
                assert large.median > small.median * 0.98
            # WHEAT still wins with 100-envelope blocks
            bft = next(
                r
                for r in large_blocks["bftsmart"][es]
                if r.frontend_region == "virginia"
            )
            wheat = next(
                r
                for r in large_blocks["wheat"][es]
                if r.frontend_region == "virginia"
            )
            assert wheat.median < bft.median

    # shape 2: the increase is moderate (tens of milliseconds at this
    # load, matching the paper's "up to 63 ms higher")
    for es in ENVELOPE_SIZES:
        small = min(r.median for r in small_blocks["wheat"][es])
        large = min(r.median for r in large_blocks["wheat"][es])
        assert large - small < 0.400
