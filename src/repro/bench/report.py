"""Fuzzbench-style N-way experiment reports over bench result JSON.

Where :mod:`repro.bench.compare` answers "did *this one* run regress
against *that one* baseline?", this module answers the evaluation
question the paper (and the SmartBFT bake-off after it) is built on:
**given N variants — orderers, configs, commits — which is best, where,
and is the difference statistically real?**

Inputs are ``repro-bench-result/1`` documents.  Variants come from one
of two groupings:

- *files as variants*: N result files, one variant each (named by the
  document's ``run_name``, overridable with ``--names``) — ranking
  whole runs against each other, e.g. baseline vs candidate or one
  file per backend;
- *axis as variants* (``--by AXIS``): one result file whose benchmark
  matrices carry the axis (e.g. ``orderer``) — every matrix point
  splits into one variant per axis value, which turns the committed
  ``bakeoff_orderers`` benchmark into a four-backend ranking with no
  extra runs.

The comparable *unit* is one ``(benchmark, matrix point, metric)``
triple.  Per unit the report computes the pairwise two-sided
Mann–Whitney U matrix and Vargha–Delaney A12 effect sizes over the
per-repeat samples; units measured for **every** variant additionally
get direction-aware rank-by-median ranks (best = 1).  Mean ranks over
all complete units give the overall ranking, summarized with the
Nemenyi critical difference (:mod:`repro.bench.stats`).

Per-phase latency tables are sourced from the ``phases`` breakdowns the
obs pipeline embeds in result points (rendered through
:func:`repro.obs.export.render_phase_table`), and a regression-history
section renders sparklines of per-unit medians over the snapshots
accumulated under ``benchmarks/history/`` (see
:func:`repro.bench.harness.append_history`).

Output is deterministic markdown (byte-identical for identical inputs;
no timestamps, stable ordering, fixed float formatting) plus a
machine-readable ``repro-bench-report/1`` JSON document.
"""

from __future__ import annotations

import html as html_module
import math
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bench.harness import load_result
from repro.bench.stats import (
    a12,
    a12_magnitude,
    cd_groups,
    critical_difference,
    mann_whitney_u,
    mean_ranks,
    rank_by_median,
    sparkline,
)

#: Version tag of the report JSON documents.
REPORT_SCHEMA = "repro-bench-report/1"

#: Default significance level for the pairwise tests and the CD.
DEFAULT_ALPHA = 0.05

#: Detail (pairwise-matrix) sections rendered per benchmark before the
#: report truncates with an explicit "omitted" note (``full_detail``
#: lifts the cap).  The summary tables and the JSON always cover every
#: unit — the cap only bounds the markdown's matrix blocks.
MAX_DETAIL_UNITS = 20


class ReportError(ValueError):
    """The report inputs are unusable (bad grouping, no overlap)."""


# ----------------------------------------------------------------------
# Grouping: result documents -> variants -> units
# ----------------------------------------------------------------------
def _point_key(params: Mapping[str, Any]) -> Tuple:
    return tuple(sorted((k, repr(v)) for k, v in params.items()))


def _finite(values: Sequence[Any]) -> List[float]:
    return [
        float(v)
        for v in values
        if isinstance(v, (int, float)) and math.isfinite(v)
    ]


@dataclass
class Unit:
    """One comparable (benchmark, matrix point, metric) measurement."""

    benchmark: str
    params: Dict[str, Any]
    metric: str
    direction: str
    #: variant -> finite per-repeat samples
    samples: Dict[str, List[float]] = field(default_factory=dict)
    #: variant -> median-of-repeats (None when non-finite)
    medians: Dict[str, Optional[float]] = field(default_factory=dict)

    @property
    def key(self) -> Tuple:
        return (self.benchmark, _point_key(self.params), self.metric)

    def present(self) -> List[str]:
        """Variants with a finite median, sorted."""
        return sorted(v for v, m in self.medians.items() if m is not None)

    def describe_params(self) -> str:
        return ", ".join(f"{k}={v}" for k, v in self.params.items()) or "-"


@dataclass
class Grouping:
    """Variants plus the units and phase breakdowns they cover."""

    variants: List[str]
    #: unit key -> Unit, insertion-ordered (document order)
    units: Dict[Tuple, Unit]
    #: (benchmark, point key) -> {"params": ..., "columns": {variant:
    #: {phase label: samples}}} for points carrying a phases breakdown
    phases: Dict[Tuple, Dict[str, Any]]
    #: benchmark names in first-seen order (stable section ordering)
    benchmark_order: List[str]
    notes: List[str] = field(default_factory=list)


def _ingest_document(
    grouping: Grouping,
    variant: str,
    document: Mapping[str, Any],
    strip_axis: Optional[str] = None,
) -> None:
    for bench in document["benchmarks"]:
        name = bench["benchmark"]
        if name not in grouping.benchmark_order:
            grouping.benchmark_order.append(name)
        skipped = 0
        for point in bench["points"]:
            params = dict(point["params"])
            if strip_axis is not None:
                if strip_axis not in params:
                    skipped += 1
                    continue
                point_variant = str(params.pop(strip_axis))
                if point_variant not in grouping.variants:
                    grouping.variants.append(point_variant)
            else:
                point_variant = variant
            pkey = _point_key(params)
            for metric, summary in point["metrics"].items():
                key = (name, pkey, metric)
                unit = grouping.units.get(key)
                if unit is None:
                    unit = Unit(
                        benchmark=name,
                        params=params,
                        metric=metric,
                        direction=summary["direction"],
                    )
                    grouping.units[key] = unit
                if point_variant in unit.samples:
                    raise ReportError(
                        f"variant {point_variant!r} measured twice at "
                        f"{name}[{unit.describe_params()}] {metric}"
                    )
                unit.samples[point_variant] = _finite(summary["values"])
                median = summary.get("median")
                unit.medians[point_variant] = (
                    float(median)
                    if isinstance(median, (int, float)) and math.isfinite(median)
                    else None
                )
            if "phases" in point and point["phases"]:
                entry = grouping.phases.setdefault(
                    (name, pkey), {"params": params, "columns": {}}
                )
                entry["columns"][point_variant] = point["phases"]
        if skipped:
            grouping.notes.append(
                f"{name}: {skipped} matrix point(s) lack axis "
                f"{strip_axis!r}, excluded from the {strip_axis} grouping"
            )


def group_by_files(
    documents: Sequence[Tuple[str, Mapping[str, Any]]],
) -> Grouping:
    """One variant per result document; names must be unique."""
    if len(documents) < 2:
        raise ReportError(
            "file-grouped reports need two or more result files "
            "(use --by AXIS to split a single file along a matrix axis)"
        )
    names = [name for name, _ in documents]
    duplicates = sorted({n for n in names if names.count(n) > 1})
    if duplicates:
        raise ReportError(
            f"duplicate variant names {duplicates}; pass --names to "
            "disambiguate (e.g. --names baseline,candidate)"
        )
    grouping = Grouping(
        variants=list(names), units={}, phases={}, benchmark_order=[]
    )
    for name, document in documents:
        _ingest_document(grouping, name, document)
    return grouping


def group_by_axis(document: Mapping[str, Any], axis: str) -> Grouping:
    """Split one document's points into variants along a matrix axis."""
    grouping = Grouping(variants=[], units={}, phases={}, benchmark_order=[])
    _ingest_document(grouping, "", document, strip_axis=axis)
    if len(grouping.variants) < 2:
        raise ReportError(
            f"axis {axis!r} yields {len(grouping.variants)} variant(s); "
            "an N-way report needs at least two"
        )
    grouping.variants.sort()
    return grouping


# ----------------------------------------------------------------------
# Analysis
# ----------------------------------------------------------------------
@dataclass
class PairwiseCell:
    """One ordered variant pair's test results at one unit."""

    a: str
    b: str
    p_value: float
    effect_a12: float

    @property
    def magnitude(self) -> str:
        return a12_magnitude(self.effect_a12)


@dataclass
class UnitAnalysis:
    unit: Unit
    #: ordered (a, b) pairs with a < b, both variants measured
    pairwise: List[PairwiseCell]
    #: per-variant rank (1 = best) when the unit covers every report
    #: variant; None otherwise (excluded from the overall ranking)
    ranks: Optional[Dict[str, float]]

    @property
    def min_p(self) -> Optional[float]:
        return min((c.p_value for c in self.pairwise), default=None)

    def best(self) -> List[str]:
        """Variant(s) with the best median, direction-aware."""
        finite = {v: m for v, m in self.unit.medians.items() if m is not None}
        if not finite:
            return []
        pick = max if self.unit.direction == "higher" else min
        target = pick(finite.values())
        return sorted(v for v, m in finite.items() if m == target)


@dataclass
class RankingSummary:
    variants: List[str]
    total_units: int
    complete_units: int
    mean_ranks: Dict[str, float]
    critical_diff: Optional[float]
    groups: Optional[List[Tuple[str, ...]]]
    #: units where the variant ranked strictly first, for color
    wins: Dict[str, int]


@dataclass
class ExperimentReport:
    variants: List[str]
    alpha: float
    sources: List[Dict[str, str]]
    grouping_mode: str  # "files" or "axis:<name>"
    benchmark_order: List[str]
    units: List[UnitAnalysis]
    ranking: RankingSummary
    phases: Dict[Tuple, Dict[str, Any]]
    history: Optional[Dict[str, Any]]
    notes: List[str]


def analyze(
    grouping: Grouping,
    alpha: float = DEFAULT_ALPHA,
    sources: Optional[List[Dict[str, str]]] = None,
    grouping_mode: str = "files",
    history: Optional[Dict[str, Any]] = None,
) -> ExperimentReport:
    """Run the full statistical analysis over a grouping."""
    if not grouping.units:
        raise ReportError("no comparable units found in the inputs")
    variants = list(grouping.variants)
    analyses: List[UnitAnalysis] = []
    per_unit_ranks: List[Dict[str, float]] = []
    wins = {v: 0 for v in variants}
    for unit in grouping.units.values():
        present = unit.present()
        pairwise: List[PairwiseCell] = []
        for i, va in enumerate(present):
            for vb in present[i + 1 :]:
                sa, sb = unit.samples[va], unit.samples[vb]
                if not sa or not sb:
                    continue
                _, p_value = mann_whitney_u(sa, sb)
                pairwise.append(
                    PairwiseCell(
                        a=va, b=vb, p_value=p_value, effect_a12=a12(sa, sb)
                    )
                )
        ranks: Optional[Dict[str, float]] = None
        if set(present) == set(variants):
            medians = {v: unit.medians[v] for v in variants}
            ranks = rank_by_median(medians, unit.direction)
            per_unit_ranks.append(ranks)
            leaders = [v for v, r in ranks.items() if r == 1.0]
            if len(leaders) == 1:
                wins[leaders[0]] += 1
        analyses.append(UnitAnalysis(unit=unit, pairwise=pairwise, ranks=ranks))

    complete = len(per_unit_ranks)
    ranks_avg = mean_ranks(per_unit_ranks) if complete else {}
    cd = (
        critical_difference(len(variants), complete, alpha)
        if complete
        else None
    )
    groups = cd_groups(ranks_avg, cd) if cd is not None and ranks_avg else None
    ranking = RankingSummary(
        variants=variants,
        total_units=len(analyses),
        complete_units=complete,
        mean_ranks=ranks_avg,
        critical_diff=cd,
        groups=groups,
        wins=wins,
    )
    return ExperimentReport(
        variants=variants,
        alpha=alpha,
        sources=sources or [],
        grouping_mode=grouping_mode,
        benchmark_order=list(grouping.benchmark_order),
        units=analyses,
        ranking=ranking,
        phases=grouping.phases,
        history=history,
        notes=list(grouping.notes),
    )


# ----------------------------------------------------------------------
# History (sparkline) series
# ----------------------------------------------------------------------
def history_series(
    snapshots: Sequence[Tuple[str, Mapping[str, Any]]],
) -> Dict[str, Any]:
    """Per-unit median series over history snapshots, oldest first.

    ``snapshots`` are ``(name, validated document)`` pairs in
    chronological order (:func:`repro.bench.harness.load_history`
    yields them sorted by filename, which embeds the run timestamp).
    Series cover every unit present in the *newest* snapshot; snapshots
    missing a unit contribute a gap.
    """
    if not snapshots:
        return {"snapshots": [], "series": []}
    indexed: List[Dict[Tuple, Tuple[Optional[float], str]]] = []
    for _, document in snapshots:
        index: Dict[Tuple, Tuple[Optional[float], str]] = {}
        for bench in document["benchmarks"]:
            for point in bench["points"]:
                pkey = _point_key(point["params"])
                for metric, summary in point["metrics"].items():
                    median = summary.get("median")
                    index[(bench["benchmark"], pkey, metric)] = (
                        float(median)
                        if isinstance(median, (int, float))
                        and math.isfinite(median)
                        else None,
                        summary["direction"],
                    )
        indexed.append(index)
    series: List[Dict[str, Any]] = []
    newest_name, newest = snapshots[-1]
    for bench in newest["benchmarks"]:
        for point in bench["points"]:
            pkey = _point_key(point["params"])
            params = dict(point["params"])
            for metric, summary in point["metrics"].items():
                key = (bench["benchmark"], pkey, metric)
                values = [index.get(key, (None, ""))[0] for index in indexed]
                series.append(
                    {
                        "benchmark": bench["benchmark"],
                        "params": params,
                        "metric": metric,
                        "direction": summary["direction"],
                        "medians": values,
                        "sparkline": sparkline(values),
                    }
                )
    return {
        "snapshots": [name for name, _ in snapshots],
        "series": series,
    }


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:.6g}"


def _md_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> List[str]:
    lines = [
        "| " + " | ".join(header) + " |",
        "|---" * len(header) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def _render_ranking(report: ExperimentReport) -> List[str]:
    ranking = report.ranking
    lines = ["## Overall ranking (rank-by-median)", ""]
    lines.append(
        f"{len(ranking.variants)} variants over "
        f"{ranking.complete_units} complete units "
        f"(of {ranking.total_units} total; a unit is one benchmark × "
        f"matrix point × metric, *complete* when every variant measured "
        f"it)."
    )
    lines.append("")
    if not ranking.complete_units:
        lines.append(
            "No unit was measured for every variant — no overall ranking. "
            "Per-unit pairwise results below still cover the overlap."
        )
        return lines
    ordered = sorted(
        ranking.mean_ranks.items(), key=lambda item: (item[1], item[0])
    )
    rows = []
    for position, (variant, rank) in enumerate(ordered, start=1):
        rows.append(
            [
                str(position),
                f"`{variant}`",
                f"{rank:.3f}",
                str(ranking.wins.get(variant, 0)),
            ]
        )
    lines += _md_table(["#", "variant", "mean rank", "units won"], rows)
    lines.append("")
    if ranking.critical_diff is not None:
        lines.append(
            f"Critical difference (Nemenyi, α={report.alpha:g}): "
            f"**{ranking.critical_diff:.3f}** — variants whose mean ranks "
            f"differ by less are statistically indistinguishable."
        )
        if ranking.groups:
            parts = [
                " ~ ".join(f"`{v}`" for v in group)
                for group in ranking.groups
            ]
            lines.append("Indistinguishable groups: " + "; ".join(parts) + ".")
    else:
        lines.append(
            "Critical difference unavailable (Nemenyi critical values are "
            "tabulated for 2–10 variants at α ∈ {0.05, 0.10})."
        )
    return lines


def _render_benchmark(
    report: ExperimentReport,
    benchmark: str,
    analyses: Sequence[UnitAnalysis],
    full_detail: bool,
) -> List[str]:
    lines = [f"### {benchmark}", ""]
    header = ["params", "metric", "dir"] + [f"`{v}`" for v in report.variants]
    header += ["best", "min p"]
    rows = []
    for analysis in analyses:
        unit = analysis.unit
        best = set(analysis.best())
        cells = []
        for variant in report.variants:
            text = _fmt(unit.medians.get(variant))
            if variant in best and text != "-":
                text = f"**{text}**"
            cells.append(text)
        min_p = analysis.min_p
        rows.append(
            [unit.describe_params(), unit.metric, unit.direction[0]]
            + cells
            + [", ".join(sorted(best)) or "-",
               "-" if min_p is None else f"{min_p:.4f}"]
        )
    lines += _md_table(header, rows)
    lines.append("")

    significant = [
        a
        for a in analyses
        if a.min_p is not None and a.min_p < report.alpha and len(a.pairwise)
    ]
    if not significant:
        lines.append(
            f"No pairwise difference below α={report.alpha:g} in this "
            "benchmark."
        )
        return lines
    shown = significant if full_detail else significant[:MAX_DETAIL_UNITS]
    lines.append(
        f"Pairwise Mann–Whitney U / A12 matrices for the "
        f"{len(shown)} unit(s) with p < α:"
    )
    lines.append("")
    for analysis in shown:
        unit = analysis.unit
        present = unit.present()
        lines.append(
            f"**{unit.metric}** [{unit.describe_params()}] — cell: "
            f"p-value / A12(row over column)"
        )
        lines.append("")
        cell_map: Dict[Tuple[str, str], PairwiseCell] = {}
        for cell in analysis.pairwise:
            cell_map[(cell.a, cell.b)] = cell
        matrix_rows = []
        for va in present:
            row = [f"`{va}`"]
            for vb in present:
                if va == vb:
                    row.append("—")
                    continue
                cell = cell_map.get((va, vb)) or cell_map.get((vb, va))
                if cell is None:
                    row.append("-")
                    continue
                effect = (
                    cell.effect_a12
                    if cell.a == va
                    else 1.0 - cell.effect_a12
                )
                mark = "*" if cell.p_value < report.alpha else ""
                row.append(f"{cell.p_value:.4f}{mark} / {effect:.2f}")
            matrix_rows.append(row)
        lines += _md_table([""] + [f"`{v}`" for v in present], matrix_rows)
        lines.append("")
    omitted = len(significant) - len(shown)
    if omitted > 0:
        lines.append(
            f"…{omitted} more significant unit(s) omitted from the "
            "markdown (all are in the JSON report; re-render with "
            "--full-detail to include them)."
        )
    return lines


def _render_phases(report: ExperimentReport) -> List[str]:
    from repro.obs.export import render_phase_table

    lines = ["## Per-phase latency breakdown", ""]
    lines.append(
        "Mean seconds spent in each pipeline phase (milliseconds in the "
        "cells), sourced from the obs milestone pipeline (`run "
        "--phases`)."
    )
    lines.append("")
    rendered = 0
    for benchmark in report.benchmark_order:
        for (bench_name, _), entry in sorted(report.phases.items()):
            if bench_name != benchmark:
                continue
            params = ", ".join(
                f"{k}={v}" for k, v in entry["params"].items()
            ) or "-"
            columns = {
                (variant or "run"): samples
                for variant, samples in entry["columns"].items()
            }
            lines.append(f"### {benchmark} [{params}]")
            lines.append("")
            lines.append(render_phase_table(columns))
            lines.append("")
            rendered += 1
    if not rendered:
        lines.append(
            "No phase breakdowns in the inputs (run benchmarks with "
            "`--phases` to embed them)."
        )
    return lines


def _render_history(report: ExperimentReport) -> List[str]:
    history = report.history or {}
    snapshots = history.get("snapshots", [])
    lines = ["## Regression history", ""]
    if not snapshots:
        lines.append(
            "No history snapshots (accumulate them with "
            "`python -m repro.bench history append RESULT.json`)."
        )
        return lines
    lines.append(
        f"{len(snapshots)} snapshot(s), oldest → newest: "
        f"`{snapshots[0]}` … `{snapshots[-1]}`."
    )
    lines.append("")
    rows = []
    for entry in history.get("series", []):
        params = ", ".join(f"{k}={v}" for k, v in entry["params"].items()) or "-"
        medians = entry["medians"]
        finite = [m for m in medians if m is not None]
        latest = medians[-1] if medians else None
        oldest = finite[0] if finite else None
        if oldest not in (None, 0) and latest is not None:
            delta = (latest - oldest) / abs(oldest)
            delta_text = f"{delta:+.1%}"
        else:
            delta_text = "-"
        rows.append(
            [
                entry["benchmark"],
                params,
                entry["metric"],
                entry["sparkline"],
                _fmt(latest),
                delta_text,
            ]
        )
    lines += _md_table(
        ["benchmark", "params", "metric", "history", "latest", "Δ oldest→latest"],
        rows,
    )
    return lines


def render_markdown(
    report: ExperimentReport, full_detail: bool = False
) -> str:
    """Deterministic markdown for the whole report."""
    lines = ["# Benchmark experiment report", ""]
    mode = (
        "one result file split by matrix axis "
        f"`{report.grouping_mode.split(':', 1)[1]}`"
        if report.grouping_mode.startswith("axis:")
        else "one variant per result file"
    )
    lines.append(
        f"N-way statistical comparison of {len(report.variants)} variants "
        f"({mode}), α={report.alpha:g}."
    )
    lines.append("")
    if report.sources:
        lines.append("Sources:")
        for source in report.sources:
            label = f"`{source['variant']}`" if source.get("variant") else "input"
            lines.append(
                f"- {label} ← `{source['path']}` "
                f"(run `{source['run_name']}`, mode {source['mode']})"
            )
        lines.append("")
    for note in report.notes:
        lines.append(f"> note: {note}")
    if report.notes:
        lines.append("")
    lines += _render_ranking(report)
    lines.append("")
    lines.append("## Per-benchmark results")
    lines.append("")
    lines.append(
        "Medians per variant (bold = best, direction-aware); `min p` is "
        "the smallest pairwise Mann–Whitney p-value at the unit."
    )
    lines.append("")
    by_benchmark: Dict[str, List[UnitAnalysis]] = {}
    for analysis in report.units:
        by_benchmark.setdefault(analysis.unit.benchmark, []).append(analysis)
    for benchmark in report.benchmark_order:
        analyses = by_benchmark.get(benchmark)
        if not analyses:
            continue
        lines += _render_benchmark(report, benchmark, analyses, full_detail)
        lines.append("")
    lines += _render_phases(report)
    lines.append("")
    lines += _render_history(report)
    lines.append("")
    return "\n".join(lines)


def render_github_summary(report: ExperimentReport) -> str:
    """The ranking section alone — what CI writes to the step summary."""
    lines = ["# Benchmark ranking", ""]
    for note in report.notes:
        lines.append(f"> note: {note}")
    if report.notes:
        lines.append("")
    lines += _render_ranking(report)
    lines.append("")
    return "\n".join(lines)


_HTML_CSS = """\
body { font-family: system-ui, sans-serif; max-width: 60rem;
       margin: 2rem auto; padding: 0 1rem; color: #1b1f24; }
h1, h2, h3 { line-height: 1.25; }
h2 { border-bottom: 1px solid #d0d7de; padding-bottom: .25rem; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid #d0d7de; padding: .3rem .6rem;
         text-align: left; font-variant-numeric: tabular-nums; }
th { background: #f6f8fa; }
code { background: #f6f8fa; padding: .1rem .3rem; border-radius: 3px;
       font-size: .9em; }
blockquote { border-left: 4px solid #d0d7de; margin: 1rem 0;
             padding: .25rem 1rem; color: #57606a; }\
"""

_INLINE_CODE_RE = re.compile(r"`([^`]+)`")
_INLINE_BOLD_RE = re.compile(r"\*\*([^*]+)\*\*")


def _html_inline(text: str) -> str:
    """Escape ``text`` and expand the two inline spans markdown uses."""
    escaped = html_module.escape(text, quote=False)
    escaped = _INLINE_CODE_RE.sub(r"<code>\1</code>", escaped)
    return _INLINE_BOLD_RE.sub(r"<strong>\1</strong>", escaped)


def _html_table(rows: Sequence[str]) -> List[str]:
    def cells(row: str) -> List[str]:
        return [cell.strip() for cell in row.strip().strip("|").split("|")]

    out = ["<table>", "<thead><tr>"]
    out += [f"<th>{_html_inline(cell)}</th>" for cell in cells(rows[0])]
    out.append("</tr></thead>")
    out.append("<tbody>")
    for row in rows[2:]:  # rows[1] is the |---| separator
        out.append(
            "<tr>"
            + "".join(f"<td>{_html_inline(c)}</td>" for c in cells(row))
            + "</tr>"
        )
    out.append("</tbody>")
    out.append("</table>")
    return out


def render_html(markdown: str, title: str = "Benchmark report") -> str:
    """Self-contained HTML for the report's restricted markdown dialect.

    :func:`render_markdown` only ever emits headings, pipe tables,
    ``> note:`` quotes, ``-`` lists, and paragraphs with inline
    ``**bold**`` / backtick-code spans, so this is a straight
    line-oriented conversion — tables and text only, no plots, no
    external assets (CSS is inlined).
    """
    body: List[str] = []
    table: List[str] = []
    paragraph: List[str] = []
    items: List[str] = []
    quotes: List[str] = []

    def flush() -> None:
        if table:
            body.extend(_html_table(table))
            table.clear()
        if paragraph:
            body.append(f"<p>{_html_inline(' '.join(paragraph))}</p>")
            paragraph.clear()
        if items:
            body.append("<ul>")
            body.extend(f"<li>{_html_inline(item)}</li>" for item in items)
            body.append("</ul>")
            items.clear()
        if quotes:
            body.append("<blockquote>")
            body.append(f"<p>{_html_inline(' '.join(quotes))}</p>")
            body.append("</blockquote>")
            quotes.clear()

    for line in markdown.splitlines():
        stripped = line.strip()
        if not stripped:
            flush()
            continue
        if stripped.startswith("|"):
            if paragraph or items or quotes:
                flush()
            table.append(stripped)
            continue
        if stripped.startswith("#"):
            flush()
            level = len(stripped) - len(stripped.lstrip("#"))
            level = min(level, 6)
            text = _html_inline(stripped[level:].strip())
            body.append(f"<h{level}>{text}</h{level}>")
            continue
        if stripped.startswith("> "):
            if table or paragraph or items:
                flush()
            quotes.append(stripped[2:])
            continue
        if stripped.startswith("- "):
            if table or paragraph or quotes:
                flush()
            items.append(stripped[2:])
            continue
        if table or items or quotes:
            flush()
        paragraph.append(stripped)
    flush()

    document = [
        "<!DOCTYPE html>",
        '<html lang="en">',
        "<head>",
        '<meta charset="utf-8">',
        f"<title>{html_module.escape(title)}</title>",
        f"<style>{_HTML_CSS}</style>",
        "</head>",
        "<body>",
        *body,
        "</body>",
        "</html>",
        "",
    ]
    return "\n".join(document)


# ----------------------------------------------------------------------
# JSON document
# ----------------------------------------------------------------------
def report_to_json_dict(report: ExperimentReport) -> Dict[str, Any]:
    ranking = report.ranking
    document: Dict[str, Any] = {
        "schema": REPORT_SCHEMA,
        "variants": list(report.variants),
        "alpha": report.alpha,
        "grouping": report.grouping_mode,
        "sources": list(report.sources),
        "notes": list(report.notes),
        "ranking": {
            "total_units": ranking.total_units,
            "complete_units": ranking.complete_units,
            "mean_ranks": {
                v: ranking.mean_ranks[v] for v in sorted(ranking.mean_ranks)
            },
            "wins": dict(sorted(ranking.wins.items())),
            "critical_difference": ranking.critical_diff,
            "groups": (
                [list(group) for group in ranking.groups]
                if ranking.groups is not None
                else None
            ),
        },
        "benchmarks": [],
    }
    by_benchmark: Dict[str, List[UnitAnalysis]] = {}
    for analysis in report.units:
        by_benchmark.setdefault(analysis.unit.benchmark, []).append(analysis)
    for benchmark in report.benchmark_order:
        analyses = by_benchmark.get(benchmark, [])
        units_json = []
        for analysis in analyses:
            unit = analysis.unit
            units_json.append(
                {
                    "params": dict(unit.params),
                    "metric": unit.metric,
                    "direction": unit.direction,
                    "medians": {
                        v: unit.medians[v] for v in sorted(unit.medians)
                    },
                    "samples": {
                        v: list(unit.samples[v]) for v in sorted(unit.samples)
                    },
                    "best": analysis.best(),
                    "pairwise": [
                        {
                            "a": cell.a,
                            "b": cell.b,
                            "p_value": cell.p_value,
                            "a12": cell.effect_a12,
                            "magnitude": cell.magnitude,
                            "significant": cell.p_value < report.alpha,
                        }
                        for cell in analysis.pairwise
                    ],
                    "ranks": analysis.ranks,
                }
            )
        document["benchmarks"].append(
            {"benchmark": benchmark, "units": units_json}
        )
    document["phases"] = [
        {
            "benchmark": bench_name,
            "params": entry["params"],
            "columns": {
                (variant or "run"): samples
                for variant, samples in sorted(entry["columns"].items())
            },
        }
        for (bench_name, _), entry in sorted(report.phases.items())
    ]
    document["history"] = report.history
    return document


# ----------------------------------------------------------------------
# Top-level entry point used by the CLI
# ----------------------------------------------------------------------
def build_report(
    paths: Sequence[str],
    by_axis: Optional[str] = None,
    names: Optional[Sequence[str]] = None,
    alpha: float = DEFAULT_ALPHA,
    history_snapshots: Optional[Sequence[Tuple[str, Mapping[str, Any]]]] = None,
) -> ExperimentReport:
    """Load result files, group, and analyze (raises ReportError /
    SchemaError / OSError on bad inputs — the CLI maps those to exit
    code 2)."""
    documents = [(path, load_result(path)) for path in paths]
    if by_axis is not None:
        if len(documents) != 1:
            raise ReportError("--by takes exactly one result file")
        if names:
            raise ReportError("--names only applies to file-grouped reports")
        path, document = documents[0]
        grouping = group_by_axis(document, by_axis)
        sources = [
            {
                "variant": "",
                "path": path,
                "run_name": document.get("run_name", ""),
                "mode": document.get("mode", ""),
            }
        ]
        grouping_mode = f"axis:{by_axis}"
    else:
        if names is not None:
            if len(names) != len(documents):
                raise ReportError(
                    f"--names lists {len(names)} name(s) for "
                    f"{len(documents)} file(s)"
                )
            labelled = list(names)
        else:
            labelled = [doc.get("run_name", path) for path, doc in documents]
        grouping = group_by_files(
            [(label, doc) for label, (_, doc) in zip(labelled, documents)]
        )
        sources = [
            {
                "variant": label,
                "path": path,
                "run_name": document.get("run_name", ""),
                "mode": document.get("mode", ""),
            }
            for label, (path, document) in zip(labelled, documents)
        ]
        grouping_mode = "files"
    history = (
        history_series(history_snapshots) if history_snapshots else None
    )
    return analyze(
        grouping,
        alpha=alpha,
        sources=sources,
        grouping_mode=grouping_mode,
        history=history,
    )
