"""ECDSA over NIST P-256, from scratch.

Hyperledger Fabric 1.0 signs block headers with ECDSA (paper section
5.1); this module implements the same primitive in pure Python:

- affine elliptic-curve arithmetic over the P-256 prime field;
- key generation;
- RFC 6979 deterministic nonce derivation (no RNG needed at signing
  time, and signatures are reproducible across runs);
- DER-free fixed-width (r || s) 64-byte signatures, low-s normalized.

The implementation favours clarity over speed -- one signature costs a
couple of milliseconds, which incidentally is the same order as the
paper's measured 1-2 ms per signature on a 2.27 GHz Xeon core.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class CurveParams:
    """Short-Weierstrass curve y^2 = x^3 + ax + b over GF(p)."""

    name: str
    p: int
    a: int
    b: int
    gx: int
    gy: int
    n: int  # order of the base point


P256 = CurveParams(
    name="P-256",
    p=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    a=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFC,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
    gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
    n=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
)


class EllipticCurvePoint:
    """An affine point on a short-Weierstrass curve (or infinity)."""

    __slots__ = ("curve", "x", "y")

    def __init__(self, curve: CurveParams, x: Optional[int], y: Optional[int]):
        self.curve = curve
        self.x = x
        self.y = y
        if not self.is_infinity and not self._on_curve():
            raise ValueError(f"({x}, {y}) is not on {curve.name}")

    @classmethod
    def infinity(cls, curve: CurveParams) -> "EllipticCurvePoint":
        return cls(curve, None, None)

    @classmethod
    def generator(cls, curve: CurveParams) -> "EllipticCurvePoint":
        return cls(curve, curve.gx, curve.gy)

    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def _on_curve(self) -> bool:
        p, a, b = self.curve.p, self.curve.a, self.curve.b
        return (self.y * self.y - (self.x * self.x * self.x + a * self.x + b)) % p == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EllipticCurvePoint):
            return NotImplemented
        return (
            self.curve.name == other.curve.name
            and self.x == other.x
            and self.y == other.y
        )

    def __hash__(self) -> int:
        return hash((self.curve.name, self.x, self.y))

    def __neg__(self) -> "EllipticCurvePoint":
        if self.is_infinity:
            return self
        return EllipticCurvePoint(self.curve, self.x, (-self.y) % self.curve.p)

    def __add__(self, other: "EllipticCurvePoint") -> "EllipticCurvePoint":
        if self.is_infinity:
            return other
        if other.is_infinity:
            return self
        p = self.curve.p
        if self.x == other.x:
            if (self.y + other.y) % p == 0:
                return EllipticCurvePoint.infinity(self.curve)
            return self._double()
        slope = ((other.y - self.y) * pow(other.x - self.x, -1, p)) % p
        x3 = (slope * slope - self.x - other.x) % p
        y3 = (slope * (self.x - x3) - self.y) % p
        return EllipticCurvePoint(self.curve, x3, y3)

    def _double(self) -> "EllipticCurvePoint":
        p, a = self.curve.p, self.curve.a
        if self.y == 0:
            return EllipticCurvePoint.infinity(self.curve)
        slope = ((3 * self.x * self.x + a) * pow(2 * self.y, -1, p)) % p
        x3 = (slope * slope - 2 * self.x) % p
        y3 = (slope * (self.x - x3) - self.y) % p
        return EllipticCurvePoint(self.curve, x3, y3)

    def __mul__(self, scalar: int) -> "EllipticCurvePoint":
        """Double-and-add scalar multiplication."""
        if scalar < 0:
            return (-self) * (-scalar)
        result = EllipticCurvePoint.infinity(self.curve)
        addend = self
        while scalar:
            if scalar & 1:
                result = result + addend
            addend = addend._double() if not addend.is_infinity else addend
            scalar >>= 1
        return result

    __rmul__ = __mul__

    def encode(self) -> bytes:
        """Uncompressed SEC1 encoding (0x04 || x || y)."""
        if self.is_infinity:
            return b"\x00"
        return b"\x04" + self.x.to_bytes(32, "big") + self.y.to_bytes(32, "big")

    @classmethod
    def decode(cls, curve: CurveParams, data: bytes) -> "EllipticCurvePoint":
        if data == b"\x00":
            return cls.infinity(curve)
        if len(data) != 65 or data[0] != 0x04:
            raise ValueError("bad point encoding")
        x = int.from_bytes(data[1:33], "big")
        y = int.from_bytes(data[33:65], "big")
        return cls(curve, x, y)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.is_infinity:
            return f"<{self.curve.name} point at infinity>"
        return f"<{self.curve.name} point x={hex(self.x)[:12]}...>"


def _bits2int(data: bytes, n: int) -> int:
    """RFC 6979 bits2int for a 256-bit order."""
    value = int.from_bytes(data, "big")
    excess = len(data) * 8 - n.bit_length()
    if excess > 0:
        value >>= excess
    return value


def _rfc6979_nonce(private_key: int, digest: bytes, curve: CurveParams) -> int:
    """Deterministic per-message nonce k (RFC 6979, HMAC-SHA256)."""
    n = curve.n
    holen = 32
    x_octets = private_key.to_bytes(32, "big")
    h1 = _bits2int(digest, n) % n
    h_octets = h1.to_bytes(32, "big")
    v = b"\x01" * holen
    k = b"\x00" * holen
    k = hmac.new(k, v + b"\x00" + x_octets + h_octets, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    k = hmac.new(k, v + b"\x01" + x_octets + h_octets, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    while True:
        v = hmac.new(k, v, hashlib.sha256).digest()
        candidate = _bits2int(v, n)
        if 1 <= candidate < n:
            return candidate
        k = hmac.new(k, v + b"\x00", hashlib.sha256).digest()
        v = hmac.new(k, v, hashlib.sha256).digest()


class ECDSAP256Scheme:
    """Real ECDSA signatures over P-256 with SHA-256.

    Private keys are ints in [1, n-1]; public keys are encoded curve
    points (65 bytes); signatures are 64-byte ``r || s`` with low-s.
    """

    name = "ecdsa-p256"
    signature_size = 64
    public_key_size = 65

    def __init__(self, curve: CurveParams = P256):
        self.curve = curve
        self._generator = EllipticCurvePoint.generator(curve)

    def keygen(self, rng) -> Tuple[int, bytes]:
        """Generate (private, public) using ``rng.getrandbits``."""
        n = self.curve.n
        while True:
            private = rng.getrandbits(256) % n
            if private != 0:
                break
        public = (self._generator * private).encode()
        return private, public

    def derive_public(self, private: int) -> bytes:
        return (self._generator * private).encode()

    def sign(self, private: int, message: bytes) -> bytes:
        n = self.curve.n
        digest = hashlib.sha256(message).digest()
        z = _bits2int(digest, n) % n
        while True:
            k = _rfc6979_nonce(private, digest, self.curve)
            point = self._generator * k
            r = point.x % n
            if r == 0:
                digest = hashlib.sha256(digest).digest()
                continue
            s = (pow(k, -1, n) * (z + r * private)) % n
            if s == 0:
                digest = hashlib.sha256(digest).digest()
                continue
            if s > n // 2:  # low-s normalization
                s = n - s
            return r.to_bytes(32, "big") + s.to_bytes(32, "big")

    def verify(self, public: bytes, message: bytes, signature: bytes) -> bool:
        if len(signature) != 64:
            return False
        n = self.curve.n
        r = int.from_bytes(signature[:32], "big")
        s = int.from_bytes(signature[32:], "big")
        if not (1 <= r < n and 1 <= s < n):
            return False
        try:
            q = EllipticCurvePoint.decode(self.curve, public)
        except ValueError:
            return False
        if q.is_infinity:
            return False
        digest = hashlib.sha256(message).digest()
        z = _bits2int(digest, n) % n
        w = pow(s, -1, n)
        u1 = (z * w) % n
        u2 = (r * w) % n
        point = self._generator * u1 + q * u2
        if point.is_infinity:
            return False
        return point.x % n == r
