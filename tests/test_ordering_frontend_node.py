"""Unit tests for the frontend (BFT shim) and the ordering node."""

import pytest

from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import SimulatedECDSA
from repro.fabric.api import SubmitEnvelope
from repro.fabric.block import GENESIS_PREVIOUS_HASH, make_block
from repro.fabric.channel import ChannelConfig
from repro.fabric.envelope import Envelope
from repro.ordering.frontend import Frontend
from repro.ordering.node import BFTOrderingNode, TimeToCut
from repro.sim import ConstantLatency, Network, Simulator
from repro.smart.messages import ClientRequest
from repro.smart.proxy import ServiceProxy
from repro.smart.view import View


@pytest.fixture
def env():
    sim = Simulator()
    network = Network(sim, ConstantLatency(0.0005))
    registry = KeyRegistry(scheme=SimulatedECDSA())
    return sim, network, registry


def make_frontend(env, f=1, verify=False, orderers=("o0", "o1", "o2", "o3")):
    sim, network, registry = env
    view = View(0, (0, 1, 2, 3), f)
    proxy = ServiceProxy(sim, network, 1000, view, register=False)
    frontend = Frontend(
        sim, network, 1000, proxy, f=f,
        registry=registry,
        orderer_names=set(orderers),
        verify_signatures=verify,
    )
    network.register(1000, frontend)
    return frontend


def signed_copy(block_args, signer_identity):
    block = make_block(*block_args)
    block.signatures[signer_identity.name] = signer_identity.sign(
        block.header.signing_payload()
    )
    return block


class TestFrontendMatching:
    def test_delivers_after_2f_plus_1_matching(self, env):
        frontend = make_frontend(env)
        envelopes = [Envelope.raw("ch0", 10)]
        args = (0, GENESIS_PREVIOUS_HASH, envelopes, "ch0")
        for source in ("o0", "o1"):
            frontend._on_block_copy(source, make_block(*args))
        assert frontend.blocks_delivered == 0
        frontend._on_block_copy("o2", make_block(*args))
        assert frontend.blocks_delivered == 1

    def test_mismatched_copies_do_not_count(self, env):
        frontend = make_frontend(env)
        good = (0, GENESIS_PREVIOUS_HASH, [Envelope.raw("ch0", 10)], "ch0")
        bad = (0, b"\x01" * 32, [Envelope.raw("ch0", 20)], "ch0")
        frontend._on_block_copy("o0", make_block(*good))
        frontend._on_block_copy("o1", make_block(*bad))
        frontend._on_block_copy("o2", make_block(*bad))
        assert frontend.blocks_delivered == 0

    def test_duplicate_copies_from_same_node_count_once(self, env):
        frontend = make_frontend(env)
        args = (0, GENESIS_PREVIOUS_HASH, [Envelope.raw("ch0", 10)], "ch0")
        for _ in range(5):
            frontend._on_block_copy("o0", make_block(*args))
        assert frontend.blocks_delivered == 0

    def test_copies_from_unknown_sources_ignored(self, env):
        frontend = make_frontend(env)
        args = (0, GENESIS_PREVIOUS_HASH, [Envelope.raw("ch0", 10)], "ch0")
        for source in ("evil1", "evil2", "evil3"):
            frontend._on_block_copy(source, make_block(*args))
        assert frontend.blocks_delivered == 0

    def test_out_of_order_completion_delivered_in_order(self, env):
        frontend = make_frontend(env)
        delivered = []
        frontend.on_block.append(lambda b: delivered.append(b.number))
        envelopes0 = [Envelope.raw("ch0", 10)]
        block0 = make_block(0, GENESIS_PREVIOUS_HASH, envelopes0, "ch0")
        block1 = make_block(1, block0.header.digest(), [Envelope.raw("ch0", 11)], "ch0")
        # block 1 completes matching first
        for source in ("o0", "o1", "o2"):
            frontend._on_block_copy(source, block1)
        assert delivered == []
        for source in ("o0", "o1", "o2"):
            frontend._on_block_copy(source, block0)
        assert delivered == [0, 1]

    def test_merged_signatures(self, env):
        sim, network, registry = env
        identities = [registry.enroll(f"o{i}", org="ord") for i in range(4)]
        frontend = make_frontend(env)
        delivered = []
        frontend.on_block.append(delivered.append)
        args = (0, GENESIS_PREVIOUS_HASH, [Envelope.raw("ch0", 10)], "ch0")
        for identity in identities[:3]:
            frontend._on_block_copy(identity.name, signed_copy(args, identity))
        assert len(delivered) == 1
        assert len(delivered[0].signatures) == 3

    def test_verify_mode_needs_only_f_plus_1(self, env):
        sim, network, registry = env
        identities = [registry.enroll(f"o{i}", org="ord") for i in range(4)]
        frontend = make_frontend(env, verify=True)
        args = (0, GENESIS_PREVIOUS_HASH, [Envelope.raw("ch0", 10)], "ch0")
        frontend._on_block_copy("o0", signed_copy(args, identities[0]))
        assert frontend.blocks_delivered == 0
        frontend._on_block_copy("o1", signed_copy(args, identities[1]))
        assert frontend.blocks_delivered == 1

    def test_verify_mode_rejects_unsigned(self, env):
        sim, network, registry = env
        for i in range(4):
            registry.enroll(f"o{i}", org="ord")
        frontend = make_frontend(env, verify=True)
        args = (0, GENESIS_PREVIOUS_HASH, [Envelope.raw("ch0", 10)], "ch0")
        for source in ("o0", "o1", "o2"):
            frontend._on_block_copy(source, make_block(*args))  # no signatures
        assert frontend.blocks_delivered == 0

    def test_submit_envelope_message_relayed(self, env):
        sim, network, _registry = env
        view = View(0, (0, 1, 2, 3), 1)

        received = []

        class FakeReplica:
            def __init__(self, i):
                self.i = i

            def deliver(self, src, message):
                received.append((self.i, message))

        for i in range(4):
            network.register(i, FakeReplica(i))
        proxy = ServiceProxy(sim, network, 1000, view, register=False)
        frontend = Frontend(sim, network, 1000, proxy, f=1)
        network.register(1000, frontend)
        network.register("client", object())
        envelope = Envelope.raw("ch0", 33)
        network.send("client", 1000, SubmitEnvelope(envelope), 100)
        sim.run()
        assert frontend.envelopes_submitted == 1
        assert len(received) == 4
        assert all(
            isinstance(message, ClientRequest) and message.operation is envelope
            for _i, message in received
        )


class TestOrderingNode:
    def _node(self, env, max_count=3, name="orderer0"):
        sim, network, registry = env
        identity = registry.enroll(name, org="ord")
        channel = ChannelConfig("ch0", max_message_count=max_count)
        node = BFTOrderingNode(
            sim, network, name, identity, channels={"ch0": channel}
        )
        return node

    def _request(self, operation, seq=0):
        return ClientRequest(client_id=77, sequence=seq, operation=operation)

    def test_blocks_created_deterministically(self, env):
        node_a = self._node(env, name="a")
        node_b = self._node(env, name="b")
        stream = [Envelope.raw("ch0", 16) for _ in range(7)]
        for cid, envelope in enumerate(stream):
            for node in (node_a, node_b):
                node.execute_batch(cid, [self._request(envelope, cid)], 0)
        state_a = node_a.get_state()["ch0"]
        state_b = node_b.get_state()["ch0"]
        assert state_a["next_number"] == state_b["next_number"] == 2
        assert state_a["previous_hash"] == state_b["previous_hash"]

    def test_acks_returned_per_request(self, env):
        node = self._node(env)
        envelope = Envelope.raw("ch0", 16)
        results = node.execute_batch(0, [self._request(envelope)], 0)
        assert results == [{"status": "ACK", "channel": "ch0"}]

    def test_unknown_channel_ack(self, env):
        node = self._node(env)
        envelope = Envelope.raw("elsewhere", 16)
        results = node.execute_batch(0, [self._request(envelope)], 0)
        assert results[0]["status"] == "NO_SUCH_CHANNEL"

    def test_bad_operation_rejected(self, env):
        node = self._node(env)
        results = node.execute_batch(0, [self._request("not-an-envelope")], 0)
        assert results[0]["status"] == "BAD_REQUEST"

    def test_snapshot_rollback_restores_cutter_and_chain(self, env):
        node = self._node(env, max_count=10)
        for seq in range(3):
            node.execute_batch(seq, [self._request(Envelope.raw("ch0", 8), seq)], 0)
        token = node.snapshot()
        pre_state = node.get_state()["ch0"]
        node.execute_batch(3, [self._request(Envelope.raw("ch0", 8), 3)], 0)
        assert len(node._channels["ch0"].cutter) == 4
        node.rollback(token)
        post_state = node.get_state()["ch0"]
        assert len(node._channels["ch0"].cutter) == 3
        assert post_state["previous_hash"] == pre_state["previous_hash"]

    def test_stale_ttc_ignored(self, env):
        node = self._node(env, max_count=2)
        for seq in range(2):  # cuts block 0
            node.execute_batch(seq, [self._request(Envelope.raw("ch0", 8), seq)], 0)
        assert node.blocks_created == 1
        result = node.execute_batch(2, [self._request(TimeToCut("ch0", 0), 2)], 0)
        assert result[0]["status"] == "STALE_TTC"
        assert node.blocks_created == 1

    def test_fresh_ttc_cuts(self, env):
        node = self._node(env, max_count=10)
        node.execute_batch(0, [self._request(Envelope.raw("ch0", 8), 0)], 0)
        result = node.execute_batch(1, [self._request(TimeToCut("ch0", 0), 1)], 0)
        assert result[0]["status"] == "CUT"
        assert node.blocks_created == 1

    def test_frontend_registration(self, env):
        node = self._node(env)
        node.register_frontend(1000)
        node.register_frontend(1000)
        node.register_frontend(1001)
        assert node.frontends == [1000, 1001]
        node.unregister_frontend(1000)
        assert node.frontends == [1001]
