"""Long-running churn scenarios and cluster-wide safety invariants."""


from repro.fabric.api import BlockDelivery
from repro.fabric.channel import ChannelConfig
from repro.fabric.envelope import Envelope
from repro.ordering import OrderingServiceConfig, build_ordering_service
from tests.conftest import Cluster


class BlockLog:
    """Records every block copy any node ever disseminated."""

    def __init__(self, network):
        self.copies = []  # (source, channel, number, digest)
        network.add_filter(self)

    def __call__(self, src, dst, payload):
        if isinstance(payload, BlockDelivery):
            block = payload.block
            self.copies.append(
                (payload.source, block.channel_id, block.number, block.header.digest())
            )
        return payload

    def per_node_unique(self) -> bool:
        """No node ever signs two different blocks with one number."""
        seen = {}
        for source, channel, number, digest in self.copies:
            key = (source, channel, number)
            if key in seen and seen[key] != digest:
                return False
            seen[key] = digest
        return True

    def cross_node_consistent(self) -> bool:
        """All nodes agree on each block number's digest."""
        seen = {}
        for _source, channel, number, digest in self.copies:
            key = (channel, number)
            if key in seen and seen[key] != digest:
                return False
            seen[key] = digest
        return True


class TestBlockInvariants:
    def test_no_conflicting_blocks_in_normal_operation(self):
        service = build_ordering_service(
            OrderingServiceConfig(
                f=1,
                channel=ChannelConfig("ch0", max_message_count=5),
                physical_cores=None,
            )
        )
        log = BlockLog(service.network)
        for _ in range(50):
            service.submit(Envelope.raw("ch0", 128))
        service.run(5.0)
        assert log.per_node_unique()
        assert log.cross_node_consistent()
        assert service.frontends[0].blocks_delivered == 10

    def test_no_conflicting_blocks_across_leader_change(self):
        service = build_ordering_service(
            OrderingServiceConfig(
                f=1,
                channel=ChannelConfig("ch0", max_message_count=5),
                physical_cores=None,
                request_timeout=0.5,
            )
        )
        log = BlockLog(service.network)
        for _ in range(20):
            service.submit(Envelope.raw("ch0", 128))
        service.run(1.5)
        service.crash_node(0)
        for _ in range(20):
            service.submit(Envelope.raw("ch0", 128))
        service.run(25.0)
        assert log.per_node_unique()
        assert log.cross_node_consistent()
        assert service.frontends[0].blocks_delivered == 8

    def test_wheat_tentative_never_conflicts_at_frontends(self):
        """With tentative execution, nodes may roll back internally,
        but a frontend can only accept 2f+1-matched blocks, so the
        delivered chain is conflict-free by construction."""
        service = build_ordering_service(
            OrderingServiceConfig(
                f=1,
                delta=1,
                vmax_holders=(0, 1),
                tentative_execution=True,
                channel=ChannelConfig("ch0", max_message_count=5),
                physical_cores=None,
                request_timeout=0.5,
            )
        )
        log = BlockLog(service.network)
        for _ in range(25):
            service.submit(Envelope.raw("ch0", 128))
        service.run(2.0)
        service.crash_node(0)  # Vmax leader dies mid-run
        for _ in range(25):
            service.submit(Envelope.raw("ch0", 128))
        service.run(30.0)
        assert log.cross_node_consistent()
        assert service.frontends[0].blocks_delivered == 10


class TestChurn:
    def test_rolling_crash_recover_cycles(self):
        """Replicas 1..3 take turns crashing and recovering under
        continuous load; the service never loses a request and all
        live replicas converge."""
        cluster = Cluster(request_timeout=0.4, checkpoint_period=10)
        proxy = cluster.proxy(invoke_timeout=4.0, max_retries=40)
        total_ops = 0
        for round_number in range(3):
            victim = 1 + round_number % 3
            cluster.replicas[victim].crash()
            futures = [proxy.invoke(1) for _ in range(8)]
            assert cluster.drain(futures, deadline=60.0)
            total_ops += 8
            cluster.replicas[victim].recover()
            cluster.run(4.0)
            # the recovered replica caught up fully
            assert cluster.apps[victim].total == total_ops
        assert all(app.total == total_ops for app in cluster.apps)

    def test_leader_churn_with_load(self):
        """Crash the current leader twice in a 7-node cluster while
        clients keep submitting."""
        cluster = Cluster(n=7, f=2, request_timeout=0.4)
        proxy = cluster.proxy(invoke_timeout=4.0, max_retries=60)
        assert cluster.drain([proxy.invoke(1)], deadline=20.0)
        submitted = 1
        for _ in range(2):
            leader = cluster.replicas[1].view.leader_of(
                max(r.regency for r in cluster.replicas if not r.crashed)
            )
            cluster.replicas[leader].crash()
            futures = [proxy.invoke(1) for _ in range(5)]
            assert cluster.drain(futures, deadline=90.0)
            submitted += 5
        alive = [
            app
            for app, replica in zip(cluster.apps, cluster.replicas)
            if not replica.crashed
        ]
        assert all(app.total == submitted for app in alive)
        assert cluster.prefix_consistent()
