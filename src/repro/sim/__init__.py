"""Deterministic discrete-event simulation substrate.

This package stands in for the physical testbeds used in the paper (a
Gigabit LAN cluster of Dell R410 servers and Amazon EC2 instances in
five regions).  It provides:

- :mod:`repro.sim.core` -- the event loop, timers and lightweight
  generator-based processes;
- :mod:`repro.sim.network` -- a message-passing network with per-link
  latency, NIC bandwidth with egress queueing, partitions and loss;
- :mod:`repro.sim.cpu` -- a processor-sharing multicore CPU model with
  hyper-threading, plus thread pools;
- :mod:`repro.sim.monitor` -- counters, latency recorders and
  throughput meters used by the benchmark harness;
- :mod:`repro.sim.randomness` -- named, seeded random streams so every
  experiment is reproducible bit-for-bit.
"""

from repro.sim.core import EventHandle, Future, Process, Simulator
from repro.sim.cpu import CPU, ThreadPool
from repro.sim.monitor import Counter, LatencyRecorder, StatsRegistry, ThroughputMeter
from repro.sim.network import (
    NIC,
    ConstantLatency,
    Intercept,
    LatencyModel,
    MatrixLatency,
    Network,
)
from repro.sim.randomness import RandomStreams
from repro.sim.storage import (
    LogCorruption,
    ScanResult,
    SimDisk,
    StorageFaults,
    frame_record,
    scan_records,
)
from repro.sim.trace import MessageTracer, TraceEvent

__all__ = [
    "CPU",
    "ConstantLatency",
    "Counter",
    "EventHandle",
    "Future",
    "Intercept",
    "LatencyModel",
    "LatencyRecorder",
    "LogCorruption",
    "MatrixLatency",
    "MessageTracer",
    "NIC",
    "Network",
    "Process",
    "RandomStreams",
    "ScanResult",
    "SimDisk",
    "Simulator",
    "StatsRegistry",
    "StorageFaults",
    "ThreadPool",
    "ThroughputMeter",
    "TraceEvent",
    "frame_record",
    "scan_records",
]
