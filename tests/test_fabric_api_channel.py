"""Tests for HLF API message sizing and channel configuration."""

import pytest

from repro.fabric.api import (
    BlockDelivery,
    BlockRequest,
    BlockResponse,
    CommitEvent,
    ProposalMessage,
    ProposalResponseMessage,
    SubmitEnvelope,
)
from repro.fabric.block import GENESIS_PREVIOUS_HASH, make_block
from repro.fabric.channel import ChannelConfig
from repro.fabric.envelope import (
    ChaincodeProposal,
    Envelope,
    ProposalResponse,
    ReadSet,
    WriteSet,
)


def proposal(args=("key", "value")):
    return ChaincodeProposal(
        channel_id="ch0", chaincode_id="kv", function="put",
        args=args, client="alice", nonce=0,
    )


class TestApiWireSizes:
    def test_proposal_message_scales_with_args(self):
        small = ProposalMessage(proposal(args=("k",)), reply_to="alice")
        large = ProposalMessage(proposal(args=("k" * 500,)), reply_to="alice")
        assert large.wire_size() > small.wire_size() + 400

    def test_response_scales_with_rwsets(self):
        lean = ProposalResponse(
            proposal_digest=b"\x00" * 32, endorser="e", org="o",
            read_set=ReadSet(), write_set=WriteSet(), result="ok", success=True,
        )
        fat = ProposalResponse(
            proposal_digest=b"\x00" * 32, endorser="e", org="o",
            read_set=ReadSet({f"k{i}": (0, 0) for i in range(20)}),
            write_set=WriteSet({f"k{i}": i for i in range(20)}),
            result="ok", success=True,
        )
        assert (
            ProposalResponseMessage(fat).wire_size()
            > ProposalResponseMessage(lean).wire_size()
        )

    def test_submit_envelope_includes_payload(self):
        small = SubmitEnvelope(Envelope.raw("ch0", 40))
        large = SubmitEnvelope(Envelope.raw("ch0", 4096))
        assert large.wire_size() - small.wire_size() == 4096 - 40

    def test_block_delivery_includes_block(self):
        block = make_block(
            0, GENESIS_PREVIOUS_HASH, [Envelope.raw("ch0", 1000)], "ch0"
        )
        assert BlockDelivery(block=block).wire_size() > 1000

    def test_block_response_sums_blocks(self):
        blocks = [
            make_block(0, GENESIS_PREVIOUS_HASH, [Envelope.raw("ch0", 500)], "ch0")
        ]
        single = BlockResponse("ch0", blocks).wire_size()
        double = BlockResponse("ch0", blocks * 2).wire_size()
        assert double > single + 500

    def test_control_messages_small(self):
        assert BlockRequest("ch0", 0, 5, "peer").wire_size() < 300
        assert CommitEvent(1, 1, 0, "VALID", "peer").wire_size() < 300


class TestChannelConfig:
    def test_defaults(self):
        config = ChannelConfig("ch0")
        assert config.max_message_count == 10
        assert config.batch_timeout == 1.0

    def test_invalid_message_count(self):
        with pytest.raises(ValueError):
            ChannelConfig("ch0", max_message_count=0)

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            ChannelConfig("ch0", batch_timeout=0.0)

    def test_default_policy_applied(self):
        config = ChannelConfig("ch0")
        assert config.endorsement_policy.satisfied_by({"org0"})
        assert not config.endorsement_policy.satisfied_by({"orgX"})


class TestSoloKafkaEdges:
    def test_solo_byte_overflow_cuts_early(self):
        from repro.crypto.keys import KeyRegistry
        from repro.crypto.signatures import SimulatedECDSA
        from repro.fabric.orderers import SoloOrderer
        from repro.sim import ConstantLatency, Network, Simulator

        sim = Simulator()
        network = Network(sim, ConstantLatency(0.0005))
        registry = KeyRegistry(scheme=SimulatedECDSA())
        channel = ChannelConfig(
            "ch0", max_message_count=100, preferred_max_bytes=250, batch_timeout=0.2
        )
        orderer = SoloOrderer(
            sim, network, "solo", registry.enroll("solo"), channel
        )
        network.register("solo", orderer)
        for _ in range(3):
            orderer.submit(Envelope.raw("ch0", 100))
        sim.run(until=1.0)
        assert orderer.blocks_created == 2  # 2 then 1-by-timeout

    def test_kafka_duplicate_replication_idempotent(self):
        from repro.crypto.keys import KeyRegistry
        from repro.crypto.signatures import SimulatedECDSA
        from repro.fabric.orderers import KafkaCluster
        from repro.fabric.orderers.kafka import Replicate
        from repro.sim import ConstantLatency, Network, Simulator

        sim = Simulator()
        network = Network(sim, ConstantLatency(0.0005))
        cluster = KafkaCluster(sim, network, num_brokers=3)
        follower = cluster.brokers["kafka1"]
        record = Envelope.raw("ch0", 10)
        follower._on_replicate("kafka0", Replicate(0, record, 10))
        follower._on_replicate("kafka0", Replicate(0, record, 10))
        assert len(follower.log) == 1

    def test_kafka_out_of_order_replication_buffer(self):
        from repro.fabric.orderers import KafkaCluster
        from repro.fabric.orderers.kafka import Replicate
        from repro.sim import ConstantLatency, Network, Simulator

        sim = Simulator()
        network = Network(sim, ConstantLatency(0.0005))
        cluster = KafkaCluster(sim, network, num_brokers=3)
        follower = cluster.brokers["kafka1"]
        record = Envelope.raw("ch0", 10)
        follower._on_replicate("kafka0", Replicate(5, record, 10))
        assert len(follower.log) == 0  # gap: wait for in-order stream
