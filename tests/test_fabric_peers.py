"""Tests for endorsing peers, committing peers and the client SDK."""

import pytest

from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import SimulatedECDSA
from repro.fabric.api import BlockDelivery
from repro.fabric.block import GENESIS_PREVIOUS_HASH, make_block
from repro.fabric.chaincode import AssetTransferChaincode, KVChaincode
from repro.fabric.channel import ChannelConfig
from repro.fabric.committer import CommittingPeer
from repro.fabric.endorser import EndorsingPeer
from repro.fabric.envelope import ChaincodeProposal, Envelope
from repro.fabric.policy import SignedBy
from repro.sim import ConstantLatency, Network, Simulator


@pytest.fixture
def env():
    sim = Simulator()
    network = Network(sim, ConstantLatency(0.0005))
    registry = KeyRegistry(scheme=SimulatedECDSA())
    return sim, network, registry


def make_endorser(network, registry, name="endorser1", org="org1", acl=None):
    identity = registry.enroll(name, org=org)
    from repro.fabric.statedb import VersionedKVStore

    store = VersionedKVStore()
    peer = EndorsingPeer(
        network,
        name,
        identity,
        state_provider=lambda _ch: store,
        chaincodes={"kv": KVChaincode(), "asset-transfer": AssetTransferChaincode()},
        acl=acl,
    )
    return peer, store


def proposal(client="alice", fn="put", args=("k", "v"), chaincode="kv", nonce=0):
    return ChaincodeProposal(
        channel_id="ch0",
        chaincode_id=chaincode,
        function=fn,
        args=args,
        client=client,
        nonce=nonce,
    )


class TestEndorsingPeer:
    def test_successful_endorsement(self, env):
        _sim, network, registry = env
        peer, _store = make_endorser(network, registry)
        response = peer.endorse(proposal())
        assert response.success
        assert response.write_set.writes == {"k": "v"}
        assert registry.verifier_of("endorser1").verify(
            response.signed_payload(), response.signature
        )

    def test_chaincode_error_becomes_failure(self, env):
        _sim, network, registry = env
        peer, _store = make_endorser(network, registry)
        response = peer.endorse(proposal(fn="delete", args=("ghost",)))
        assert not response.success
        assert peer.rejections == 1

    def test_unknown_chaincode_rejected(self, env):
        _sim, network, registry = env
        peer, _store = make_endorser(network, registry)
        response = peer.endorse(proposal(chaincode="nope"))
        assert not response.success

    def test_acl_enforced(self, env):
        _sim, network, registry = env
        peer, _store = make_endorser(network, registry, acl={"authorized"})
        denied = peer.endorse(proposal(client="intruder"))
        assert not denied.success
        allowed = peer.endorse(proposal(client="authorized", nonce=1))
        assert allowed.success

    def test_endorsement_does_not_touch_state(self, env):
        _sim, network, registry = env
        peer, store = make_endorser(network, registry)
        peer.endorse(proposal())
        assert len(store) == 0

    def test_reads_see_committed_state(self, env):
        _sim, network, registry = env
        peer, store = make_endorser(network, registry)
        store.apply_write("k", "committed", (1, 0))
        response = peer.endorse(proposal(fn="get", args=("k",)))
        assert response.result == "committed"
        assert response.read_set.reads == {"k": (1, 0)}


class TestCommittingPeer:
    def _committer(self, env, required_sigs=0):
        sim, network, registry = env
        config = ChannelConfig("ch0", endorsement_policy=SignedBy("org1"))
        peer = CommittingPeer(
            sim,
            network,
            "peer0",
            config,
            registry=registry,
            required_block_signatures=required_sigs,
        )
        network.register("peer0", peer)
        return peer

    def test_commits_raw_block(self, env):
        peer = self._committer(env)
        block = make_block(0, GENESIS_PREVIOUS_HASH, [Envelope.raw("ch0", 40)], "ch0")
        peer.receive_block(block)
        assert peer.ledger.height == 1
        assert peer.commits[0].valid_count == 1

    def test_duplicate_block_ignored(self, env):
        peer = self._committer(env)
        block = make_block(0, GENESIS_PREVIOUS_HASH, [Envelope.raw("ch0", 40)], "ch0")
        peer.receive_block(block)
        peer.receive_block(block)
        assert peer.ledger.height == 1

    def test_gap_rejected(self, env):
        peer = self._committer(env)
        orphan = make_block(5, b"\x01" * 32, [Envelope.raw("ch0", 40)], "ch0")
        peer.receive_block(orphan)
        assert peer.ledger.height == 0
        assert peer.rejected_blocks == 1

    def test_block_signature_requirement(self, env):
        sim, network, registry = env
        orderer = registry.enroll("orderer0", org="orderers")
        peer = self._committer(env, required_sigs=1)
        peer.orderer_names = {"orderer0"}
        block = make_block(0, GENESIS_PREVIOUS_HASH, [Envelope.raw("ch0", 40)], "ch0")
        peer.receive_block(block)  # unsigned: rejected
        assert peer.ledger.height == 0
        block.signatures["orderer0"] = orderer.sign(block.header.signing_payload())
        peer.receive_block(block)
        assert peer.ledger.height == 1

    def test_forged_block_signature_rejected(self, env):
        sim, network, registry = env
        registry.enroll("orderer0", org="orderers")
        peer = self._committer(env, required_sigs=1)
        peer.orderer_names = {"orderer0"}
        block = make_block(0, GENESIS_PREVIOUS_HASH, [Envelope.raw("ch0", 40)], "ch0")
        block.signatures["orderer0"] = b"\x00" * 64
        peer.receive_block(block)
        assert peer.ledger.height == 0

    def test_on_commit_callback(self, env):
        peer = self._committer(env)
        seen = []
        peer.on_commit.append(lambda record: seen.append(record.block.number))
        block = make_block(0, GENESIS_PREVIOUS_HASH, [Envelope.raw("ch0", 40)], "ch0")
        peer.receive_block(block)
        assert seen == [0]

    def test_block_delivery_message(self, env):
        sim, network, _registry = env
        peer = self._committer(env)
        block = make_block(0, GENESIS_PREVIOUS_HASH, [Envelope.raw("ch0", 40)], "ch0")
        network.register("sender", object())
        network.send("sender", "peer0", BlockDelivery(block=block), 100)
        sim.run()
        assert peer.ledger.height == 1
