"""Baselines: the stock HLF orderers vs the BFT ordering service.

Not a paper figure, but the comparison §3 sets up: solo (no fault
tolerance), Kafka-like (crash-fault-tolerant) and the paper's BFT
service on the same LAN workload.  The point is qualitative: the BFT
service pays a modest latency premium over the weaker designs while
being the only one to survive Byzantine ordering nodes.

Runs the registered ``baseline_orderers`` matrix through the harness
(the per-orderer runners live in ``repro.bench.suite``).
"""

import pytest

pytestmark = pytest.mark.bench


def test_baseline_orderer_comparison(bench_result):
    result = bench_result("baseline_orderers")

    envelopes = result.points[0].params["envelopes"]
    block = result.points[0].params["block_size"]
    expected_blocks = envelopes // block
    # all three order everything
    for point in result.points:
        assert point.metrics["blocks"].median == expected_blocks, point.params

    solo = result.value("median_latency_s", orderer="solo")
    kafka = result.value("median_latency_s", orderer="kafka")
    bft = result.value("median_latency_s", orderer="bft")
    # solo is fastest (no replication), BFT costs more than Kafka-CFT,
    # but all stay in the same order of magnitude on a LAN
    assert solo <= kafka
    assert kafka <= bft * 1.5
    assert bft < 0.05
