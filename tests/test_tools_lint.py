"""Tests for the shared suppression syntax in the tools/lint.py fallback."""

import ast
import importlib.util
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "tools_lint", REPO_ROOT / "tools" / "lint.py"
)
tools_lint = importlib.util.module_from_spec(_spec)
sys.modules["tools_lint"] = tools_lint
_spec.loader.exec_module(tools_lint)


def run_checker(source, name="scratch.py"):
    source = textwrap.dedent(source)
    tree = ast.parse(source)
    checker = tools_lint._ModuleChecker(Path(name), tree, source)
    return checker.check()


class TestSharedSuppressions:
    def test_repro_allow_silences_fallback_rule(self):
        findings = run_checker("import json  # repro: allow[F401]\n")
        assert findings == []

    def test_repro_allow_is_rule_specific(self):
        findings = run_checker("import json  # repro: allow[E722]\n")
        assert any(code == "F401" for _, code, _ in findings)

    def test_unknown_rule_reported_as_sup001(self):
        # split so the repo's own suppression scanner does not match this fixture
        findings = run_checker("import json  # repro: " "allow[F4O1]\n")
        codes = {code for _, code, _ in findings}
        assert "SUP001" in codes
        assert "F401" in codes  # the typo silenced nothing

    def test_noqa_still_works(self):
        assert run_checker("import json  # noqa\n") == []

    def test_multiple_rules_in_one_marker(self):
        source = """
        try:
            x = None == None  # repro: allow[E711]
        except:  # repro: allow[E722]
            pass
        """
        codes = {code for _, code, _ in run_checker(source)}
        assert "E711" not in codes
        assert "E722" not in codes

    def test_bare_except_without_suppression_flagged(self):
        source = """
        try:
            pass
        except:
            pass
        """
        codes = {code for _, code, _ in run_checker(source)}
        assert "E722" in codes


class TestAnalysisRulesAcceptedByLint:
    """A DET/PROTO suppression in lint's universe is not SUP001 --
    one vocabulary across both checkers."""

    def test_det_rule_suppression_not_unknown(self):
        findings = run_checker("x = 1  # repro: allow[DET004] fifo contract\n")
        codes = {code for _, code, _ in findings}
        assert "SUP001" not in codes

    def test_flow_rule_suppression_not_unknown(self):
        findings = run_checker("x = 1  # repro: allow[FLOW001] CFT by design\n")
        codes = {code for _, code, _ in findings}
        assert "SUP001" not in codes

    def test_racesan_rule_suppression_not_unknown(self):
        findings = run_checker("x = 1  # repro: allow[RACESAN001] benign\n")
        codes = {code for _, code, _ in findings}
        assert "SUP001" not in codes

    def test_unknown_flow_rule_still_sup001(self):
        findings = run_checker("x = 1  # repro: " "allow[FLOW999]\n")
        codes = {code for _, code, _ in findings}
        assert "SUP001" in codes
