"""Chaincode: HLF's smart contracts, and a stub that records rw-sets.

Chaincode runs only at *endorsement* time (paper section 3, step 2):
the :class:`ChaincodeStub` executes reads against the peer's current
state, records the versions it saw into the read set, and buffers
writes into the write set -- nothing touches the state DB until the
transaction commits after ordering and validation.

Three sample chaincodes cover the example applications:

- :class:`KVChaincode` -- generic put/get/delete;
- :class:`AssetTransferChaincode` -- the canonical Fabric sample
  (create/read/transfer assets with ownership checks);
- :class:`SmallBankChaincode` -- a bank-account workload generating
  contended read-modify-write transactions (exercises MVCC conflicts).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.fabric.envelope import ReadSet, WriteSet
from repro.fabric.statedb import VersionedKVStore


class ChaincodeError(Exception):
    """Raised by chaincode to reject a proposal at endorsement time."""


class ChaincodeStub:
    """The API surface chaincode uses during simulation."""

    def __init__(self, state: VersionedKVStore):
        self._state = state
        self.read_set = ReadSet()
        self.write_set = WriteSet()

    def get_state(self, key: str) -> Optional[Any]:
        """Read a key, recording its version (read-your-own-writes)."""
        if key in self.write_set.writes:
            return self.write_set.writes[key]
        entry = self._state.get(key)
        self.read_set.reads.setdefault(key, entry.version if entry else None)
        return entry.value if entry else None

    def put_state(self, key: str, value: Any) -> None:
        if value is None:
            raise ChaincodeError("use del_state to delete keys")
        self.write_set.writes[key] = value

    def del_state(self, key: str) -> None:
        self.write_set.writes[key] = None

    def get_range(self, start: str, end: str) -> Dict[str, Any]:
        """Range read; records every returned key's version."""
        result: Dict[str, Any] = {}
        for key, entry in self._state.range(start, end):
            self.read_set.reads.setdefault(key, entry.version)
            result[key] = entry.value
        for key, value in sorted(self.write_set.writes.items()):
            if start <= key < end:
                if value is None:
                    result.pop(key, None)
                else:
                    result[key] = value
        return result


class Chaincode:
    """Base class for deployed contracts."""

    chaincode_id = "base"

    def invoke(self, stub: ChaincodeStub, function: str, args: Tuple[Any, ...]) -> Any:
        handler = getattr(self, f"fn_{function}", None)
        if handler is None:
            raise ChaincodeError(f"{self.chaincode_id}: unknown function {function!r}")
        return handler(stub, *args)


class KVChaincode(Chaincode):
    """Generic key/value chaincode."""

    chaincode_id = "kv"

    def fn_put(self, stub: ChaincodeStub, key: str, value: Any) -> str:
        stub.put_state(key, value)
        return "OK"

    def fn_get(self, stub: ChaincodeStub, key: str) -> Any:
        return stub.get_state(key)

    def fn_delete(self, stub: ChaincodeStub, key: str) -> str:
        if stub.get_state(key) is None:
            raise ChaincodeError(f"no such key {key!r}")
        stub.del_state(key)
        return "OK"

    def fn_increment(self, stub: ChaincodeStub, key: str, amount: int = 1) -> int:
        current = stub.get_state(key) or 0
        updated = current + amount
        stub.put_state(key, updated)
        return updated


class AssetTransferChaincode(Chaincode):
    """The canonical asset-transfer sample."""

    chaincode_id = "asset-transfer"

    @staticmethod
    def _asset_key(asset_id: str) -> str:
        return f"asset/{asset_id}"

    def fn_create(
        self, stub: ChaincodeStub, asset_id: str, owner: str, value: int
    ) -> Dict[str, Any]:
        key = self._asset_key(asset_id)
        if stub.get_state(key) is not None:
            raise ChaincodeError(f"asset {asset_id!r} already exists")
        asset = {"id": asset_id, "owner": owner, "value": value}
        stub.put_state(key, asset)
        return asset

    def fn_read(self, stub: ChaincodeStub, asset_id: str) -> Dict[str, Any]:
        asset = stub.get_state(self._asset_key(asset_id))
        if asset is None:
            raise ChaincodeError(f"asset {asset_id!r} does not exist")
        return asset

    def fn_transfer(
        self, stub: ChaincodeStub, asset_id: str, current_owner: str, new_owner: str
    ) -> Dict[str, Any]:
        key = self._asset_key(asset_id)
        asset = stub.get_state(key)
        if asset is None:
            raise ChaincodeError(f"asset {asset_id!r} does not exist")
        if asset["owner"] != current_owner:
            raise ChaincodeError(
                f"asset {asset_id!r} is owned by {asset['owner']!r}, not {current_owner!r}"
            )
        updated = dict(asset, owner=new_owner)
        stub.put_state(key, updated)
        return updated

    def fn_list(self, stub: ChaincodeStub) -> Dict[str, Any]:
        return stub.get_range("asset/", "asset/￿")


class SmallBankChaincode(Chaincode):
    """Bank accounts with transfers; produces MVCC contention."""

    chaincode_id = "smallbank"

    @staticmethod
    def _account_key(account: str) -> str:
        return f"acct/{account}"

    def fn_open(self, stub: ChaincodeStub, account: str, balance: int) -> int:
        key = self._account_key(account)
        if stub.get_state(key) is not None:
            raise ChaincodeError(f"account {account!r} already exists")
        stub.put_state(key, balance)
        return balance

    def fn_balance(self, stub: ChaincodeStub, account: str) -> int:
        balance = stub.get_state(self._account_key(account))
        if balance is None:
            raise ChaincodeError(f"account {account!r} does not exist")
        return balance

    def fn_deposit(self, stub: ChaincodeStub, account: str, amount: int) -> int:
        balance = self.fn_balance(stub, account)
        updated = balance + amount
        stub.put_state(self._account_key(account), updated)
        return updated

    def fn_transfer(
        self, stub: ChaincodeStub, src: str, dst: str, amount: int
    ) -> Dict[str, int]:
        src_balance = self.fn_balance(stub, src)
        dst_balance = self.fn_balance(stub, dst)
        if src_balance < amount:
            raise ChaincodeError(
                f"insufficient funds in {src!r}: {src_balance} < {amount}"
            )
        stub.put_state(self._account_key(src), src_balance - amount)
        stub.put_state(self._account_key(dst), dst_balance + amount)
        return {src: src_balance - amount, dst: dst_balance + amount}
