"""Transactions, proposals, endorsements and envelopes (HLF data model).

An *envelope* is the unit the ordering service orders: a signed wrapper
around a transaction proposal carrying the endorsing peers' read/write
sets and signatures (paper section 3, step 3).  The ordering service
never inspects its contents -- only its size matters there -- but
committing peers re-validate everything inside.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.crypto.hashing import sha256

#: Version of a key: (block number, transaction index within block).
Version = Tuple[int, int]

_tx_counter = itertools.count()


@dataclass(frozen=True)
class ChaincodeProposal:
    """A client's signed request to invoke a chaincode function."""

    channel_id: str
    chaincode_id: str
    function: str
    args: Tuple[Any, ...]
    client: str
    nonce: int
    timestamp: float = 0.0

    def digest(self) -> bytes:
        return sha256(
            "proposal",
            self.channel_id,
            self.chaincode_id,
            self.function,
            [repr(a) for a in self.args],
            self.client,
            self.nonce,
        )


@dataclass
class ReadSet:
    """Versioned keys read during simulation (MVCC check input)."""

    reads: Dict[str, Optional[Version]] = field(default_factory=dict)

    def digest(self) -> bytes:
        return sha256(
            "readset", {k: list(v) if v else None for k, v in self.reads.items()}
        )

    def __len__(self) -> int:
        return len(self.reads)


@dataclass
class WriteSet:
    """Key updates produced during simulation (None value = delete)."""

    writes: Dict[str, Optional[Any]] = field(default_factory=dict)

    def digest(self) -> bytes:
        return sha256("writeset", {k: repr(v) for k, v in self.writes.items()})

    def __len__(self) -> int:
        return len(self.writes)


@dataclass
class ProposalResponse:
    """An endorsing peer's simulation result + signature."""

    proposal_digest: bytes
    endorser: str
    org: str
    read_set: ReadSet
    write_set: WriteSet
    result: Any
    success: bool
    signature: bytes = b""

    def signed_payload(self) -> bytes:
        return sha256(
            "response",
            self.proposal_digest,
            self.read_set.digest(),
            self.write_set.digest(),
            repr(self.result),
            self.success,
        )


@dataclass
class Endorsement:
    """The (endorser, signature) pair attached to a transaction."""

    endorser: str
    org: str
    signature: bytes


@dataclass
class Transaction:
    """A fully-assembled transaction awaiting ordering + validation."""

    proposal: ChaincodeProposal
    read_set: ReadSet
    write_set: WriteSet
    result: Any
    endorsements: List[Endorsement]
    client_signature: bytes = b""
    tx_id: int = field(default_factory=lambda: next(_tx_counter))

    def response_payload(self) -> bytes:
        """What each endorsement must have signed."""
        return sha256(
            "response",
            self.proposal.digest(),
            self.read_set.digest(),
            self.write_set.digest(),
            repr(self.result),
            True,
        )

    def digest(self) -> bytes:
        return sha256(
            "transaction",
            self.proposal.digest(),
            self.read_set.digest(),
            self.write_set.digest(),
            self.tx_id,
        )


@dataclass
class Envelope:
    """The opaque, signed unit submitted to the ordering service.

    ``payload_size`` is the serialized size used for network/blocks
    accounting -- the paper evaluates 40 B (a SHA-256 hash), 200 B
    (three ECDSA endorsement signatures), 1 KB and 4 KB envelopes.
    """

    channel_id: str
    transaction: Optional[Transaction]
    payload_size: int
    submitter: str = ""
    signature: bytes = b""
    is_config: bool = False
    envelope_id: int = field(default_factory=lambda: next(_tx_counter))
    create_time: Optional[float] = None

    def digest(self) -> bytes:
        content = (
            self.transaction.digest() if self.transaction is not None else b"raw"
        )
        return sha256("envelope", self.channel_id, content, self.envelope_id)

    @classmethod
    def raw(cls, channel_id: str, payload_size: int, submitter: str = "") -> "Envelope":
        """A synthetic envelope with no transaction inside -- what the
        paper's micro-benchmarks submit (only the size matters to the
        ordering service)."""
        return cls(
            channel_id=channel_id,
            transaction=None,
            payload_size=payload_size,
            submitter=submitter,
        )
