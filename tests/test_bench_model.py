"""Tests for the capacity model: the paper's headline numbers must
emerge from the calibrated constants."""

import pytest

from repro.bench.model import (
    OrderingCapacityModel,
    SignatureThroughputModel,
    cpu_capacity,
    eq1_bound,
)
from repro.bench.topology import aws_latency_model, aws_rtt_between, lan_latency_model


class TestSignatureModel:
    def test_peak_is_8400(self):
        model = SignatureThroughputModel()
        assert model.peak == pytest.approx(8400, rel=0.01)

    def test_monotone_in_workers(self):
        model = SignatureThroughputModel()
        rates = [model.throughput(w) for w in range(1, 17)]
        assert rates == sorted(rates)

    def test_linear_scaling_up_to_physical_cores(self):
        model = SignatureThroughputModel()
        assert model.throughput(8) == pytest.approx(8 * model.throughput(1), rel=1e-6)

    def test_hyperthreading_knee(self):
        """Beyond 8 workers each extra thread adds less than a core."""
        model = SignatureThroughputModel()
        gain_low = model.throughput(8) - model.throughput(7)
        gain_high = model.throughput(16) - model.throughput(15)
        assert gain_high < gain_low

    def test_theoretical_bound_84000(self):
        """§6.1: 8,400 sig/s x 10 envelopes/block = 84,000 tx/s."""
        model = SignatureThroughputModel()
        assert model.peak * 10 == pytest.approx(84000, rel=0.01)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            SignatureThroughputModel().throughput(0)

    def test_cpu_capacity_helper(self):
        assert cpu_capacity(4) == 4.0
        assert cpu_capacity(16) == pytest.approx(10.4)
        assert cpu_capacity(40) == pytest.approx(10.4)


class TestCapacityModel:
    def test_paper_peak_50k_for_10_envelope_blocks(self):
        """§6.2: ~50k tx/s peak with 10 env/block and few receivers."""
        model = OrderingCapacityModel(n=4)
        peak = model.throughput(40, 10, 1)
        assert 45_000 < peak < 60_000

    def test_block_rate_about_1100_for_100_envelope_blocks(self):
        """§6.2: ~1,100 blocks/s when cutting 100-envelope blocks of
        1 KB envelopes."""
        model = OrderingCapacityModel(n=4)
        rate = model.block_rate(200, 100, 4)
        assert 200 < rate < 2_000

    def test_worst_case_floor_about_2200(self):
        """§8: 10 nodes, 4 KB envelopes, 32 receivers -> ~2,200 tx/s."""
        model = OrderingCapacityModel(n=10)
        floor = model.throughput(4096, 100, 32)
        assert 1_500 < floor < 3_000

    def test_throughput_declines_with_receivers(self):
        model = OrderingCapacityModel(n=4)
        series = [model.throughput(40, 10, r) for r in (1, 2, 4, 8, 16, 32)]
        assert all(a >= b for a, b in zip(series, series[1:]))
        assert series[-1] < series[0]

    def test_throughput_declines_with_envelope_size(self):
        model = OrderingCapacityModel(n=4)
        series = [model.throughput(es, 10, 2) for es in (40, 200, 1024, 4096)]
        assert all(a >= b for a, b in zip(series, series[1:]))

    def test_throughput_declines_with_cluster_size(self):
        for es in (1024, 4096):
            series = [
                OrderingCapacityModel(n=n).throughput(es, 10, 2) for n in (4, 7, 10)
            ]
            assert all(a >= b for a, b in zip(series, series[1:]))

    def test_bigger_blocks_help_small_envelopes(self):
        """§6.2/§8: for small envelopes, 100-envelope blocks beat
        10-envelope blocks (less signing per transaction)."""
        model = OrderingCapacityModel(n=4)
        assert model.throughput(40, 100, 4) > model.throughput(40, 10, 4)

    def test_block_size_insignificant_for_large_envelopes(self):
        """§6.2: for 4 KB envelopes the replication protocol dominates,
        so block size barely matters (from 7 nodes onward)."""
        model = OrderingCapacityModel(n=7)
        small_blocks = model.throughput(4096, 10, 2)
        large_blocks = model.throughput(4096, 100, 2)
        assert large_blocks == pytest.approx(small_blocks, rel=0.15)

    def test_binding_resource_shifts(self):
        model = OrderingCapacityModel(n=4)
        small = model.breakdown(40, 10, 1)
        large = model.breakdown(4096, 10, 1)
        assert small.binding_resource == "cpu"  # signing-dominated
        assert large.binding_resource == "propose_bandwidth"

    def test_double_sign_halves_sign_bound(self):
        single = OrderingCapacityModel(n=4)
        double = OrderingCapacityModel(n=4, double_sign=True)
        assert double.breakdown(40, 10, 1).bounds["signing_pool"] == pytest.approx(
            single.breakdown(40, 10, 1).bounds["signing_pool"] / 2
        )


class TestEq1:
    def test_eq1_is_an_upper_bound_on_the_model(self):
        """Equation 1 uses the stand-alone signing rate, so the full
        model's prediction must stay below it."""
        for es in (40, 200, 1024, 4096):
            for bs in (10, 100):
                for r in (1, 4, 32):
                    for n in (4, 10):
                        full = OrderingCapacityModel(n=n).throughput(es, bs, r)
                        assert full <= eq1_bound(bs, es, r, n=n) * 1.0001

    def test_eq1_sign_term_dominates_small_envelopes(self):
        assert eq1_bound(10, 40, 1) == pytest.approx(84000, rel=0.01)

    def test_eq1_bftsmart_term_dominates_large_envelopes(self):
        assert eq1_bound(10, 4096, 1, n=4) < 10_000


class TestTopology:
    def test_rtt_symmetric(self):
        assert aws_rtt_between("oregon", "sydney") == aws_rtt_between(
            "sydney", "oregon"
        )

    def test_local_rtt_small(self):
        assert aws_rtt_between("oregon", "oregon") < 0.005

    def test_all_paper_regions_covered(self):
        regions = ("oregon", "virginia", "canada", "saopaulo", "ireland", "sydney")
        for a in regions:
            for b in regions:
                assert aws_rtt_between(a, b) >= 0

    def test_latency_model_one_way_half_rtt(self):
        import random

        model = aws_latency_model(jitter_fraction=0.0)
        delay = model.delay("oregon", "ireland", random.Random(0))
        assert delay == pytest.approx(aws_rtt_between("oregon", "ireland") / 2)

    def test_lan_model_sub_millisecond(self):
        import random

        assert lan_latency_model(0.0).delay("lan", "lan", random.Random(0)) < 0.001

    def test_sao_paulo_is_far_from_everything(self):
        """The geographic fact behind the paper's frontend-placement
        observation."""
        regions = ("oregon", "virginia", "canada", "ireland")
        for region in regions:
            assert aws_rtt_between("saopaulo", region) > aws_rtt_between(
                "virginia", "canada"
            )
