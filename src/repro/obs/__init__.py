"""End-to-end observability: metrics registry, span tracing, exporters.

See docs/OBSERVABILITY.md for the naming conventions and span taxonomy,
and ``python -m repro.obs report`` for the resource-attribution CLI.
"""

from repro.obs.export import (
    TraceSchemaError,
    chrome_trace,
    render_critical_path,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.observability import (
    MILESTONES,
    PHASES,
    Observability,
    PhaseBreakdown,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricNameError,
    MetricsRegistry,
)
from repro.obs.spans import Instant, Span, SpanTracer

__all__ = [
    "MILESTONES",
    "PHASES",
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricNameError",
    "MetricsRegistry",
    "Observability",
    "PhaseBreakdown",
    "Span",
    "SpanTracer",
    "TraceSchemaError",
    "chrome_trace",
    "render_critical_path",
    "validate_chrome_trace",
    "write_chrome_trace",
]
