"""Protocol-aware static analysis and runtime determinism sanitizer.

Three rule families guard the properties every result in this repo
rests on (see docs/ANALYSIS.md for the catalog):

- **DET** -- determinism under a seed: no wall clock, no ambient
  randomness, no iteration-order leaks from sets/dicts into protocol
  ordering positions, no ordering by ``id()``/``hash()``.
- **PROTO** -- protocol invariants: quorum arithmetic only through the
  named helpers in :mod:`repro.smart.view`, no state mutation before
  verification in message handlers, no scheduling primitives outside
  the simulator kernel.
- **DETSAN** -- the runtime sanitizer: a seeded scenario double-run
  under different ``PYTHONHASHSEED`` values whose trace/span/metric
  views must match byte-for-byte.

Run ``python -m repro.analysis`` (or ``make analyze``) for the static
pass and ``python -m repro.analysis detsan`` (or ``make detsan``) for
the runtime pass.
"""

from .engine import analyze_paths, analyze_source
from .rules import CATALOG, Finding, check_source
from .suppress import (
    KNOWN_RULE_IDS,
    SUPPRESS_RE,
    is_suppressed,
    parse_suppressions,
)

__all__ = [
    "CATALOG",
    "Finding",
    "KNOWN_RULE_IDS",
    "SUPPRESS_RE",
    "analyze_paths",
    "analyze_source",
    "check_source",
    "is_suppressed",
    "parse_suppressions",
]
