"""Tests for crash-amnesia recovery over the consensus WAL.

These are the executable specification of docs/RECOVERY.md: a replica
that crashes with amnesia restarts from its WAL, never contradicts its
pre-crash votes, quarantines itself on mid-log corruption, and rejoins
(or stays passive) according to the current view.
"""

import random

from repro.faults.invariants import VoteRecorder, check_durable_logs
from repro.obs import Observability
from repro.ordering.wal_codec import decode_value, encode_value
from repro.sim.storage import SimDisk, StorageFaults
from repro.smart import ReconfigurationClient
from repro.smart.wal import ConsensusWAL
from tests.conftest import Cluster


def wal_cluster(**kwargs) -> Cluster:
    """A conftest cluster whose replicas log to consensus WALs."""
    cluster = Cluster(**kwargs)
    for replica in cluster.replicas:
        replica.log = ConsensusWAL(
            SimDisk(),
            encode_op=encode_value,
            decode_op=decode_value,
            encode_state=encode_value,
            decode_state=decode_value,
        )
    return cluster


class TestAmnesiacRestart:
    def test_restart_catches_up_and_rejoins(self):
        cluster = wal_cluster(checkpoint_period=4)
        victim = cluster.replicas[1]
        proxy = cluster.proxy()
        assert cluster.drain([proxy.invoke(i) for i in range(6)])

        victim.crash(amnesia=True)
        victim.log.disk.crash(StorageFaults(), random.Random(1))
        assert cluster.drain(
            [proxy.invoke(i) for i in range(6, 12)], deadline=20.0
        )

        victim.recover()
        cluster.run(3.0)
        assert victim.counters.restarts == 1
        assert not victim.crashed
        stats = victim.recovery_stats
        assert stats is not None
        assert stats["rejoined_at"] is not None
        assert stats["replay_s"] >= 0.0
        assert not stats["corrupt"]
        assert cluster.apps[1].total == cluster.apps[0].total
        assert cluster.apps[1].history == cluster.apps[0].history

    def test_plain_crash_still_suspends(self):
        """Without amnesia, crash/recover keeps the old semantics."""
        cluster = wal_cluster()
        victim = cluster.replicas[2]
        proxy = cluster.proxy()
        assert cluster.drain([proxy.invoke(1)])
        victim.crash()
        assert cluster.drain([proxy.invoke(2)], deadline=20.0)
        victim.recover()
        cluster.run(2.0)
        assert victim.counters.restarts == 0
        assert victim.recovery_stats is None
        assert cluster.apps[2].total == cluster.apps[0].total

    def test_no_equivocation_under_torn_tail(self):
        """The headline invariant: a restarted replica never sends a
        different WRITE/ACCEPT hash for a slot it voted before the
        crash, even when the crash tears the WAL tail."""
        cluster = wal_cluster()
        recorder = VoteRecorder(cluster.network)
        victim = cluster.replicas[1]
        proxy = cluster.proxy()
        futures = [proxy.invoke(i) for i in range(8)]

        def crash_mid_protocol():
            victim.crash(amnesia=True)
            victim.log.disk.crash(
                StorageFaults(torn_tail=True), random.Random(3)
            )

        cluster.sim.schedule(0.002, crash_mid_protocol)
        cluster.sim.schedule(0.5, victim.recover)
        assert cluster.drain(futures, deadline=20.0)
        cluster.run(3.0)
        assert recorder.check() == []
        assert check_durable_logs(cluster.replicas) == []
        assert cluster.apps[1].total == cluster.apps[0].total

    def test_corrupt_wal_quarantines_votes(self):
        cluster = wal_cluster()
        victim = cluster.replicas[1]
        proxy = cluster.proxy()
        assert cluster.drain([proxy.invoke(i) for i in range(6)])

        victim.crash(amnesia=True)
        disk = victim.log.disk
        disk._durable[disk.durable_size // 2] ^= 0x01  # mid-log bit rot
        victim.recover()
        cluster.run(1.0)
        assert victim.recovery_stats["corrupt"]
        assert victim._quarantine_regency is not None
        # the quarantined replica still catches up via state transfer
        assert cluster.drain(
            [proxy.invoke(i) for i in range(6, 10)], deadline=20.0
        )
        cluster.run(2.0)
        assert cluster.apps[1].total == cluster.apps[0].total
        # its truncated log re-verifies cleanly after recovery
        assert victim.log.verify() == []

    def test_regency_rederived_from_wal(self):
        cluster = wal_cluster()
        victim = cluster.replicas[1]
        proxy = cluster.proxy()
        assert cluster.drain([proxy.invoke(1)])
        victim.log.log_regency(5)
        victim.log.log_write(40, 5, b"\xaa" * 8)
        victim.crash(amnesia=True)
        victim.recover()
        assert victim.regency == 5
        assert victim.instance(40).write_sent.get(5) == b"\xaa" * 8

    def test_recovery_emits_observability(self):
        cluster = wal_cluster()
        victim = cluster.replicas[1]
        hub = Observability(clock=lambda: cluster.sim.now)
        victim.obs = hub
        proxy = cluster.proxy()
        assert cluster.drain([proxy.invoke(i) for i in range(4)])
        victim.crash(amnesia=True)
        victim.recover()
        cluster.run(3.0)
        assert hub.registry.counter("smart.replica.1.restarts").value == 1
        spans = [s for s in hub.tracer.spans if s.name == "recovery"]
        assert len(spans) == 1
        assert not spans[0].open


class TestRecoveryAndReconfiguration:
    def test_removed_while_crashed_stays_passive(self):
        """A replica reconfigured out of the group while crashed must
        not rejoin as an active member after restart."""
        cluster = wal_cluster(n=5, f=1)
        victim = cluster.replicas[4]
        proxy = cluster.proxy()
        assert cluster.drain([proxy.invoke(1)])

        victim.crash(amnesia=True)
        admin = ReconfigurationClient(cluster.proxy())
        assert cluster.drain([admin.remove_replica(4)], deadline=20.0)
        assert 4 not in cluster.replicas[0].view.processes

        victim.recover()
        cluster.run(3.0)
        assert victim.crashed  # passive, not serving
        # the 4-replica group still makes progress without it
        proxy.update_view(cluster.replicas[0].view)
        assert cluster.drain([proxy.invoke(2)], deadline=20.0)
