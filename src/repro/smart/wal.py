"""Consensus write-ahead log over simulated stable storage.

:class:`ConsensusWAL` extends the in-memory :class:`OperationLog` with
a durable record stream on a :class:`~repro.sim.storage.SimDisk`.  On
top of decided batches and checkpoints it also records the protocol
evidence a replica must never contradict after an amnesiac restart:

- ``write`` / ``accept`` -- the (cid, regency, value-hash) of every
  WRITE/ACCEPT vote, fsynced *before* the vote message is sent;
- ``reg`` -- every regency the replica installed.

Because the disk is strictly append-ordered and ``sync`` flushes the
whole cache, the fsync guarding a vote also makes every earlier record
durable.  A vote that reached the network therefore always survives a
crash that loses the unsynced suffix, which is exactly the property the
"no equivocation by amnesia" invariant checks.

Decided-batch records deliberately ride the next vote's fsync (group
commit): losing one costs a state-transfer round-trip on recovery but
never safety.

Record format (one CRC-framed JSON line each, see
:func:`repro.sim.storage.frame_record`)::

    {"t": "batch",  "cid": C, "reqs": [[client, seq, op, size, rc], ...]}
    {"t": "ckpt",   "cid": C, "state": S, "hash": HEX}
    {"t": "write",  "cid": C, "reg": R, "h": HEX}
    {"t": "accept", "cid": C, "reg": R, "h": HEX}
    {"t": "reg",    "reg": R}
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.storage import SimDisk, frame_record, scan_records
from repro.smart.durability import Checkpoint, OperationLog, _jsonable
from repro.smart.messages import ClientRequest


@dataclass
class WalRecovery:
    """Everything :meth:`ConsensusWAL.recover` salvaged from disk."""

    checkpoint: Optional[Checkpoint]
    entries: List[Tuple[int, List[ClientRequest]]]
    #: cid -> regency -> value hash, for votes this replica already cast.
    write_evidence: Dict[int, Dict[int, bytes]] = field(default_factory=dict)
    accept_evidence: Dict[int, Dict[int, bytes]] = field(default_factory=dict)
    #: Highest regency the replica is known to have installed.
    regency: int = 0
    #: Bytes discarded from the tail (torn-write truncation).
    truncated_bytes: int = 0
    #: True when damage was mid-log (bit rot), not a torn tail.
    corrupt: bool = False
    #: Total records salvaged.
    records: int = 0


class ConsensusWAL(OperationLog):
    """An :class:`OperationLog` persisted to a :class:`SimDisk`."""

    def __init__(
        self,
        disk: SimDisk,
        encode_op: Optional[Callable[[Any], Any]] = None,
        decode_op: Optional[Callable[[Any], Any]] = None,
        encode_state: Optional[Callable[[Any], Any]] = None,
        decode_state: Optional[Callable[[Any], Any]] = None,
    ):
        super().__init__()
        self.disk = disk
        self._encode_op = encode_op or (lambda op: op)
        self._decode_op = decode_op or (lambda op: op)
        self._encode_state = encode_state or _jsonable
        self._decode_state = decode_state or (lambda state: state)

    # ------------------------------------------------------------------
    # OperationLog interface, now durable

    def append(self, cid: int, batch: List[ClientRequest]) -> None:
        super().append(cid, batch)
        self.disk.append(
            frame_record(
                {
                    "t": "batch",
                    "cid": cid,
                    "reqs": [
                        [
                            r.client_id,
                            r.sequence,
                            self._encode_op(r.operation),
                            r.size_bytes,
                            1 if r.reconfig else 0,
                        ]
                        for r in batch
                    ],
                }
            )
        )
        # No sync: decided batches group-commit on the next vote fsync.

    def set_checkpoint(self, checkpoint: Checkpoint) -> None:
        super().set_checkpoint(checkpoint)
        self.disk.append(
            frame_record(
                {
                    "t": "ckpt",
                    "cid": checkpoint.cid,
                    "state": self._encode_state(checkpoint.state),
                    "hash": checkpoint.state_hash.hex(),
                }
            )
        )
        self.disk.sync()

    def clear(self) -> None:
        self._entries = []
        self.checkpoint = None

    # ------------------------------------------------------------------
    # Consensus-evidence records

    def log_write(self, cid: int, regency: int, value_hash: bytes) -> float:
        """Persist a WRITE vote; returns fsync latency to charge."""
        return self._log_vote("write", cid, regency, value_hash)

    def log_accept(self, cid: int, regency: int, value_hash: bytes) -> float:
        """Persist an ACCEPT vote; returns fsync latency to charge."""
        return self._log_vote("accept", cid, regency, value_hash)

    def log_regency(self, regency: int) -> float:
        """Persist an installed regency; returns fsync latency to charge."""
        self.disk.append(frame_record({"t": "reg", "reg": regency}))
        return self.disk.sync()

    def _log_vote(self, kind: str, cid: int, regency: int, value_hash: bytes) -> float:
        self.disk.append(
            frame_record({"t": kind, "cid": cid, "reg": regency, "h": value_hash.hex()})
        )
        return self.disk.sync()

    # ------------------------------------------------------------------
    # Recovery

    def recover(self) -> WalRecovery:
        """Rebuild in-memory state from the durable image.

        A bad region at the very end of the log is a torn write: the
        disk is truncated at the first bad byte and replay continues
        with the valid prefix.  A bad record *followed by valid ones*
        cannot come from a torn write -- the salvage still truncates at
        the first bad byte (dropping everything after it) but flags the
        log ``corrupt`` so the caller can fall back to full state
        transfer and quarantine its pre-crash votes.
        """
        data = self.disk.read()
        scan = scan_records(data)
        if scan.valid_bytes < len(data):
            self.disk.truncate(scan.valid_bytes)
        self.clear()
        recovery = WalRecovery(
            checkpoint=None,
            entries=[],
            truncated_bytes=len(data) - scan.valid_bytes,
            corrupt=scan.error == "corrupt",
            records=len(scan.records),
        )
        for record in scan.records:
            kind = record["t"]
            if kind == "batch":
                batch = [
                    ClientRequest(
                        client_id=client,
                        sequence=seq,
                        operation=self._decode_op(op),
                        size_bytes=size,
                        reconfig=bool(rc),
                    )
                    for client, seq, op, size, rc in record["reqs"]
                ]
                OperationLog.append(self, record["cid"], batch)
            elif kind == "ckpt":
                OperationLog.set_checkpoint(
                    self,
                    Checkpoint(
                        cid=record["cid"],
                        state=self._decode_state(record["state"]),
                        state_hash=bytes.fromhex(record["hash"]),
                    ),
                )
            elif kind == "write":
                recovery.write_evidence.setdefault(record["cid"], {})[
                    record["reg"]
                ] = bytes.fromhex(record["h"])
            elif kind == "accept":
                recovery.accept_evidence.setdefault(record["cid"], {})[
                    record["reg"]
                ] = bytes.fromhex(record["h"])
            elif kind == "reg":
                recovery.regency = max(recovery.regency, record["reg"])
        recovery.checkpoint = self.checkpoint
        recovery.entries = self.entries
        return recovery

    # ------------------------------------------------------------------
    # Invariant checking

    def verify(self) -> List[str]:
        """Check the live (durable + cached) record stream for damage.

        Used by the fault explorer's durable-log invariant: the stream
        must parse cleanly and must never contain two different batch
        payloads for one cid or two different hashes for one
        (vote-kind, cid, regency) slot.
        """
        problems: List[str] = []
        scan = scan_records(self.disk.contents())
        if scan.error is not None:
            problems.append(f"log scan failed: {scan.error}")
        batches: Dict[int, Any] = {}
        votes: Dict[Tuple[str, int, int], str] = {}
        for record in scan.records:
            kind = record["t"]
            if kind == "batch":
                cid = record["cid"]
                if cid in batches and batches[cid] != record["reqs"]:
                    problems.append(f"conflicting batch records for cid={cid}")
                batches[cid] = record["reqs"]
            elif kind in ("write", "accept"):
                key = (kind, record["cid"], record["reg"])
                if key in votes and votes[key] != record["h"]:
                    problems.append(
                        "conflicting %s votes for cid=%d regency=%d" % key
                    )
                votes[key] = record["h"]
        return problems
