"""Declarative fault actions.

Each action is a small configuration object with ``start``/``stop``
lifecycle hooks driven by a :class:`repro.faults.injector.FaultInjector`.
Message-level actions install interceptors on
:class:`repro.sim.network.Network` (returning rich
:class:`~repro.sim.network.Intercept` verdicts); replica-level actions
flip the :class:`~repro.smart.replica.FaultControls` switches or the
crash/recover hooks of :class:`~repro.smart.replica.ServiceReplica`.

Actions are *pure configuration*: the same action object can be started
against a fresh network run after run (the schedule explorer's shrinker
relies on this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, FrozenSet, Iterable, Optional, Tuple

from repro.crypto.hashing import sha256
from repro.sim.network import Intercept
from repro.smart.consensus import batch_hash
from repro.smart.messages import ClientRequest, ForwardedRequest, Propose, Write

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector


def _id_set(value) -> Optional[FrozenSet]:
    if value is None:
        return None
    if isinstance(value, (set, frozenset, list, tuple)):
        return frozenset(value)
    return frozenset((value,))


@dataclass(frozen=True)
class Match:
    """Selects the messages a fault applies to.

    ``src``/``dst`` accept a single node id or an iterable of ids
    (``None`` matches everything); ``types`` is a message class or a
    tuple of classes; ``where`` is an extra ``(src, dst, payload)``
    predicate for anything the structural fields cannot express.
    """

    src: Any = None
    dst: Any = None
    types: Optional[Tuple[type, ...]] = None
    where: Optional[Callable[[Any, Any, Any], bool]] = None

    def __post_init__(self):
        object.__setattr__(self, "src", _id_set(self.src))
        object.__setattr__(self, "dst", _id_set(self.dst))
        if self.types is not None and not isinstance(self.types, tuple):
            object.__setattr__(self, "types", (self.types,))

    def matches(self, src, dst, payload) -> bool:
        if self.src is not None and src not in self.src:
            return False
        if self.dst is not None and dst not in self.dst:
            return False
        if self.types is not None and not isinstance(payload, self.types):
            return False
        if self.where is not None and not self.where(src, dst, payload):
            return False
        return True

    def describe(self) -> str:
        parts = []
        if self.src is not None:
            parts.append(f"src={sorted(self.src, key=repr)}")
        if self.dst is not None:
            parts.append(f"dst={sorted(self.dst, key=repr)}")
        if self.types is not None:
            parts.append(f"types={'|'.join(t.__name__ for t in self.types)}")
        if self.where is not None:
            parts.append("where=<predicate>")
        return "[" + " ".join(parts) + "]" if parts else "[*]"


#: Match every replica-to-replica protocol message.
ANY = Match()


class FaultAction:
    """Base class: a start/stop-able fault."""

    def start(self, ctx: "FaultInjector") -> None:
        raise NotImplementedError

    def stop(self, ctx: "FaultInjector") -> None:
        pass

    def describe(self) -> str:
        return type(self).__name__.lower()


class FilterFault(FaultAction):
    """A fault realized as a network interceptor."""

    def __init__(self):
        self._installed: list = []

    def _filter(self, ctx: "FaultInjector") -> Callable:
        raise NotImplementedError

    def start(self, ctx: "FaultInjector") -> None:
        fn = self._filter(ctx)
        ctx.network.add_filter(fn)
        self._installed.append((ctx.network, fn))

    def stop(self, ctx: "FaultInjector") -> None:
        while self._installed:
            network, fn = self._installed.pop()
            try:
                network.remove_filter(fn)
            except ValueError:
                pass


class Drop(FilterFault):
    """Drop matching messages, each independently with ``rate``."""

    def __init__(self, match: Match = ANY, rate: float = 1.0, stream: str = "drop"):
        super().__init__()
        self.match = match
        self.rate = rate
        self.stream = stream

    def _filter(self, ctx):
        rng = ctx.rng(self.stream)

        def fn(src, dst, payload):
            if self.match.matches(src, dst, payload):
                if self.rate >= 1.0 or rng.random() < self.rate:
                    return None
            return payload

        return fn

    def describe(self) -> str:
        return f"drop{self.match.describe()} rate={self.rate:g}"


class Delay(FilterFault):
    """Add ``delay`` (plus uniform jitter) to matching messages.

    FIFO per-link order is preserved, so this models a slow link, not
    reordering (see :class:`Reorder` for that).
    """

    def __init__(
        self,
        match: Match = ANY,
        delay: float = 0.1,
        jitter: float = 0.0,
        stream: str = "delay",
    ):
        super().__init__()
        self.match = match
        self.delay = delay
        self.jitter = jitter
        self.stream = stream

    def _filter(self, ctx):
        rng = ctx.rng(self.stream)

        def fn(src, dst, payload):
            if self.match.matches(src, dst, payload):
                extra = self.delay + (self.jitter * rng.random() if self.jitter else 0.0)
                return Intercept(payload, extra_delay=extra)
            return payload

        return fn

    def describe(self) -> str:
        return f"delay{self.match.describe()} d={self.delay:g} j={self.jitter:g}"


class Duplicate(FilterFault):
    """Deliver ``copies`` copies of each matching message."""

    def __init__(self, match: Match = ANY, copies: int = 2, spacing: float = 0.0):
        super().__init__()
        if copies < 1:
            raise ValueError("copies must be >= 1")
        self.match = match
        self.copies = copies
        self.spacing = spacing

    def _filter(self, ctx):
        def fn(src, dst, payload):
            if self.match.matches(src, dst, payload):
                return Intercept(payload, copies=self.copies, copy_spacing=self.spacing)
            return payload

        return fn

    def describe(self) -> str:
        return f"duplicate{self.match.describe()} copies={self.copies}"


class Reorder(FilterFault):
    """Delay matching messages *past* the per-link FIFO floor.

    Each matching message (selected with ``rate``) is held back
    ``delay`` seconds and exempted from the TCP-like in-order delivery
    rule, so later messages on the link overtake it.
    """

    def __init__(
        self,
        match: Match = ANY,
        delay: float = 0.05,
        rate: float = 1.0,
        stream: str = "reorder",
    ):
        super().__init__()
        self.match = match
        self.delay = delay
        self.rate = rate
        self.stream = stream

    def _filter(self, ctx):
        rng = ctx.rng(self.stream)

        def fn(src, dst, payload):
            if self.match.matches(src, dst, payload):
                if self.rate >= 1.0 or rng.random() < self.rate:
                    return Intercept(payload, extra_delay=self.delay, bypass_fifo=True)
            return payload

        return fn

    def describe(self) -> str:
        return f"reorder{self.match.describe()} d={self.delay:g} rate={self.rate:g}"


class Corrupt(FilterFault):
    """Substitute matching messages via ``mutate(payload, rng)``.

    ``mutate`` returns the replacement payload (or ``None`` to drop).
    The replacement must still be a well-formed message object -- the
    point is semantic corruption the protocol must reject, not crashing
    the simulator.
    """

    def __init__(
        self,
        match: Match,
        mutate: Callable[[Any, Any], Any],
        rate: float = 1.0,
        stream: str = "corrupt",
    ):
        super().__init__()
        self.match = match
        self.mutate = mutate
        self.rate = rate
        self.stream = stream

    def _filter(self, ctx):
        rng = ctx.rng(self.stream)

        def fn(src, dst, payload):
            if self.match.matches(src, dst, payload):
                if self.rate >= 1.0 or rng.random() < self.rate:
                    return self.mutate(payload, rng)
            return payload

        return fn

    def describe(self) -> str:
        return f"corrupt{self.match.describe()} rate={self.rate:g}"


class CorruptWrites(FilterFault):
    """A Byzantine replica WRITE-votes a garbage hash to ``victims``.

    Quorum intersection must render this harmless for up to ``f``
    corrupting replicas (paper section 2's fault model).
    """

    def __init__(self, source, victims: Optional[Iterable] = None):
        super().__init__()
        self.source = source
        self.victims = _id_set(victims)

    def _filter(self, ctx):
        def fn(src, dst, payload):
            if (
                isinstance(payload, Write)
                and src == self.source
                and (self.victims is None or dst in self.victims)
            ):
                return Write(
                    payload.sender,
                    payload.cid,
                    payload.regency,
                    sha256("corrupt-write", self.source, payload.cid),
                )
            return payload

        return fn

    def describe(self) -> str:
        victims = sorted(self.victims, key=repr) if self.victims else "all"
        return f"corrupt-writes src={self.source} victims={victims}"


class EquivocatePropose(FilterFault):
    """An equivocating leader: PROPOSEs a forged batch to ``victims``.

    ``forge(propose, count)`` builds the substitute batch; the default
    forges a poison request (``poison_client``/``poison_op``) that
    invariant checks can look for in execution histories.
    """

    def __init__(
        self,
        leader,
        victims,
        forge: Optional[Callable[[Propose, int], list]] = None,
        poison_client: int = 666,
        poison_op: Any = -999,
    ):
        super().__init__()
        self.leader = leader
        self.victims = _id_set(victims)
        self.forge = forge
        self.poison_client = poison_client
        self.poison_op = poison_op

    def _filter(self, ctx):
        count = [0]

        def fn(src, dst, payload):
            if (
                isinstance(payload, Propose)
                and src == self.leader
                and dst in self.victims
            ):
                if self.forge is not None:
                    fake_batch = self.forge(payload, count[0])
                else:
                    fake_batch = [
                        ClientRequest(
                            client_id=self.poison_client,
                            sequence=count[0],
                            operation=self.poison_op,
                        )
                    ]
                count[0] += 1
                return Propose(
                    sender=payload.sender,
                    cid=payload.cid,
                    regency=payload.regency,
                    batch=fake_batch,
                    value_hash=batch_hash(payload.cid, fake_batch),
                )
            return payload

        return fn

    def describe(self) -> str:
        return (
            f"equivocate leader={self.leader} "
            f"victims={sorted(self.victims, key=repr)}"
        )


class CensorClient(FilterFault):
    """A Byzantine leader silently drops one client's requests.

    Both direct submissions and peer forwards addressed to ``at`` are
    censored; request forwarding plus the regency change must defeat it.
    """

    def __init__(self, client_id: int, at):
        super().__init__()
        self.client_id = client_id
        self.at = at

    def _filter(self, ctx):
        def fn(src, dst, payload):
            if dst != self.at:
                return payload
            if isinstance(payload, ClientRequest) and payload.client_id == self.client_id:
                return None
            if (
                isinstance(payload, ForwardedRequest)
                and payload.request.client_id == self.client_id
            ):
                return None
            return payload

        return fn

    def describe(self) -> str:
        return f"censor client={self.client_id} at={self.at}"


class CensorClients(FaultAction):
    """A SmartBFT node silently ignores requests from ``client_ids``.

    Unlike :class:`CensorClient` (a network filter around a BFT-SMaRt
    leader), this flips the ``censor_clients`` switch of a
    :class:`repro.smart2.node.SmartFaultControls`: the node drops the
    clients' requests *at ingest*, whether submitted directly or
    forwarded by a peer.  Follower censorship timers plus the rotation
    blacklist must defeat it.
    """

    def __init__(self, replica_id, client_ids: Iterable):
        self.replica_id = replica_id
        self.client_ids = frozenset(client_ids)

    def start(self, ctx) -> None:
        replica = ctx.replica(self.replica_id)
        if replica is None:
            raise ValueError(
                f"CensorClients needs replica {self.replica_id!r} "
                "registered with the injector"
            )
        replica.faults.censor_clients |= self.client_ids

    def stop(self, ctx) -> None:
        replica = ctx.replica(self.replica_id)
        if replica is not None:
            replica.faults.censor_clients -= self.client_ids

    def describe(self) -> str:
        clients = sorted(self.client_ids)
        return f"censor-clients replica={self.replica_id} clients={clients}"


class Partition(FaultAction):
    """Split the group: block all links between members of different
    groups, restoring exactly those links on stop."""

    def __init__(self, *groups: Iterable):
        self.groups = tuple(tuple(g) for g in groups)
        self._pairs = []

    def start(self, ctx) -> None:
        self._pairs = []
        for i, group_a in enumerate(self.groups):
            for group_b in self.groups[i + 1 :]:
                for a in group_a:
                    for b in group_b:
                        ctx.network.block(a, b)
                        self._pairs.append((a, b))

    def stop(self, ctx) -> None:
        while self._pairs:
            a, b = self._pairs.pop()
            ctx.network.unblock(a, b)

    def describe(self) -> str:
        groups = " | ".join(str(list(g)) for g in self.groups)
        return f"partition {groups}"


@dataclass
class BlockLink(FaultAction):
    """Block a single (pair of) link(s)."""

    a: Any
    b: Any
    bidirectional: bool = True

    def start(self, ctx) -> None:
        ctx.network.block(self.a, self.b, bidirectional=self.bidirectional)

    def stop(self, ctx) -> None:
        ctx.network.unblock(self.a, self.b, bidirectional=self.bidirectional)

    def describe(self) -> str:
        arrow = "<->" if self.bidirectional else "->"
        return f"block {self.a}{arrow}{self.b}"


@dataclass
class CrashReplica(FaultAction):
    """Crash a replica on start, recover it (with state transfer) on stop.

    The default is crash-*suspend*: volatile state survives and
    recovery simply resumes (historical behaviour, keeps explorer
    seeds reproducible).  With ``amnesia=True`` the crash discards all
    volatile state and recovery runs the full restart protocol from the
    replica's WAL (docs/RECOVERY.md); ``torn_tail`` and ``bitrot``
    additionally damage the simulated disk at crash time
    (:class:`~repro.sim.storage.StorageFaults`).
    """

    replica_id: Any
    amnesia: bool = False
    torn_tail: bool = False
    bitrot: bool = False

    def start(self, ctx) -> None:
        replica = ctx.replica(self.replica_id)
        if replica is not None:
            replica.crash(amnesia=self.amnesia)
            if self.amnesia:
                self._damage_disk(ctx, replica)
        else:
            ctx.network.crash(self.replica_id)

    def _damage_disk(self, ctx, replica) -> None:
        from repro.sim.storage import StorageFaults

        disk = getattr(replica.log, "disk", None)
        if disk is None:
            return
        disk.crash(
            StorageFaults(torn_tail=self.torn_tail, bitrot=self.bitrot),
            ctx.rng(f"storage-{self.replica_id}"),
        )

    def stop(self, ctx) -> None:
        replica = ctx.replica(self.replica_id)
        if replica is not None:
            if replica.crashed:
                replica.recover()
        elif ctx.network.is_crashed(self.replica_id):
            ctx.network.recover(self.replica_id)

    def describe(self) -> str:
        if not self.amnesia:
            return f"crash replica={self.replica_id}"
        flags = "".join(
            [
                " torn-tail" if self.torn_tail else "",
                " bitrot" if self.bitrot else "",
            ]
        )
        return f"crash-restart replica={self.replica_id} amnesia{flags}"


class _ControlFault(FaultAction):
    """Base for actions flipping a ServiceReplica.faults switch."""

    attribute = ""

    def __init__(self, replica_id):
        self.replica_id = replica_id

    def start(self, ctx) -> None:
        replica = ctx.replica(self.replica_id)
        if replica is None:
            raise ValueError(
                f"{type(self).__name__} needs replica {self.replica_id!r} "
                "registered with the injector"
            )
        setattr(replica.faults, self.attribute, True)

    def stop(self, ctx) -> None:
        replica = ctx.replica(self.replica_id)
        if replica is not None:
            setattr(replica.faults, self.attribute, False)

    def describe(self) -> str:
        return f"{self.attribute.replace('_', '-')} replica={self.replica_id}"


class MuteReplica(_ControlFault):
    """The replica stops sending (keeps receiving) -- a silent fault."""

    attribute = "mute"


class SuppressSync(_ControlFault):
    """The replica boycotts the synchronization (leader-change) phase."""

    attribute = "suppress_sync"


class SkipQuorumChecks(_ControlFault):
    """Safety mutation: the replica decides without a quorum.

    Exists so mutation tests can prove the fork invariant has teeth.
    """

    attribute = "skip_quorum_checks"


#: network id the flood attacker registers under -- far outside every
#: replica / frontend / admin / TTC id range
ATTACKER_ID_BASE = 900_000

#: envelope-id block the flood allocates from, far above the pinned
#: workload ids the explorer uses (run digests hash envelope ids, so
#: flood ids must be reproducible and collision-free)
FLOOD_ID_BASE = 10_000_000


class _Attacker:
    """Network endpoint of a flood source (absorbs any replies)."""

    def deliver(self, src, message) -> None:
        pass


class FloodClient(FaultAction):
    """Adversarial submission flood into one frontend.

    While active, injects ``SubmitEnvelope`` messages into the target
    frontend's network inbox at ``rate`` per second -- exactly what a
    botnet of lightweight clients looks like to the ordering service.
    Every ``unique_every``-th envelope carries a fresh identity; the
    rest replay the previous one (a duplicate flood on the wire).
    Envelope ids are pinned from ``id_base`` so fault traces and ledger
    digests stay reproducible run over run.
    """

    def __init__(
        self,
        frontend,
        rate: float = 2000.0,
        channel: str = "ch0",
        payload_size: int = 256,
        submitter: str = "mallory",
        unique_every: int = 4,
        id_base: int = FLOOD_ID_BASE,
        attacker_id=None,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.frontend = frontend
        self.rate = rate
        self.channel = channel
        self.payload_size = payload_size
        self.submitter = submitter
        self.unique_every = max(1, unique_every)
        self.id_base = id_base
        self.attacker_id = (
            attacker_id if attacker_id is not None else ATTACKER_ID_BASE
        )
        self._on = False
        self._registered = False
        self.sent = 0
        self._current_id: Optional[int] = None
        self._next_id = id_base

    def start(self, ctx) -> None:
        # pure-configuration contract: reset all run state on start so
        # the same action object replays identically against a fresh
        # deployment (the shrinker relies on this)
        self._on = True
        self.sent = 0
        self._current_id = None
        self._next_id = self.id_base
        if self.attacker_id not in ctx.network.node_ids():
            ctx.network.register(self.attacker_id, _Attacker())
            self._registered = True
        self._tick(ctx)

    def stop(self, ctx) -> None:
        self._on = False
        if self._registered:
            ctx.network.unregister(self.attacker_id)
            self._registered = False

    def _tick(self, ctx) -> None:
        if not self._on:
            return
        from repro.fabric.api import SubmitEnvelope
        from repro.fabric.envelope import Envelope

        if self._current_id is None or self.sent % self.unique_every == 0:
            self._current_id = self._next_id
            self._next_id += 1
        envelope = Envelope(
            channel_id=self.channel,
            transaction=None,
            payload_size=self.payload_size,
            submitter=self.submitter,
            envelope_id=self._current_id,
        )
        self.sent += 1
        ctx.network.send(
            self.attacker_id,
            self.frontend,
            SubmitEnvelope(envelope),
            size_bytes=self.payload_size,
        )
        ctx.sim.post(1.0 / self.rate, self._tick, ctx)

    def describe(self) -> str:
        return (
            f"flood-client dst={self.frontend} rate={self.rate} "
            f"unique-every={self.unique_every}"
        )
