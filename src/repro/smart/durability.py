"""Durable operation log and checkpoints.

Paper section 5.2: the ordering service's state is tiny (next block
sequence number + previous block hash), so frequent checkpoints are
cheap and the operation log stays short.  This module provides:

- :class:`OperationLog` -- the in-memory decided-batch log with
  checkpoint-based truncation, used by every replica;
- :class:`FileBackedLog` -- the same interface persisted to disk in a
  simple append-only record format, recoverable after a crash (used by
  durability tests and available to deployments that want real
  persistence).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from repro.crypto.hashing import sha256
from repro.sim.storage import LogCorruption, frame_record, scan_records
from repro.smart.messages import ClientRequest


@dataclass
class Checkpoint:
    """A snapshot of application state after executing ``cid``."""

    cid: int
    state: Any
    state_hash: bytes


class OperationLog:
    """Decided batches since the last checkpoint.

    Entries are ``(cid, batch)`` in execution order.  ``truncate`` is
    called when a new checkpoint is stored, discarding all entries the
    checkpoint covers -- exactly BFT-SMaRt's log management.
    """

    def __init__(self):
        self._entries: List[Tuple[int, List[ClientRequest]]] = []
        self.checkpoint: Optional[Checkpoint] = None

    def append(self, cid: int, batch: List[ClientRequest]) -> None:
        if self._entries and cid <= self._entries[-1][0]:
            raise ValueError(f"log must grow monotonically (got cid={cid})")
        self._entries.append((cid, batch))

    def set_checkpoint(self, checkpoint: Checkpoint) -> None:
        """Install a checkpoint and truncate entries it covers."""
        self.checkpoint = checkpoint
        self._entries = [(c, b) for c, b in self._entries if c > checkpoint.cid]

    def entries_after(self, cid: int) -> List[Tuple[int, List[ClientRequest]]]:
        return [(c, b) for c, b in self._entries if c > cid]

    @property
    def entries(self) -> List[Tuple[int, List[ClientRequest]]]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def last_cid(self) -> int:
        if self._entries:
            return self._entries[-1][0]
        if self.checkpoint is not None:
            return self.checkpoint.cid
        return -1

    def clear(self) -> None:
        """Drop all in-memory state (an amnesiac restart's first step)."""
        self._entries = []
        self.checkpoint = None

    # Durability hooks.  The in-memory log has no stable storage, so
    # consensus evidence costs nothing and recovery salvages nothing;
    # ConsensusWAL overrides these with real persistence.

    def log_write(self, cid: int, regency: int, value_hash: bytes) -> float:
        return 0.0

    def log_accept(self, cid: int, regency: int, value_hash: bytes) -> float:
        return 0.0

    def log_regency(self, regency: int) -> float:
        return 0.0

    def recover(self):
        return None


def state_digest(state: Any) -> bytes:
    """Canonical hash of an application-state snapshot."""
    return sha256("state", _jsonable(state))


def _jsonable(value: Any) -> Any:
    """Normalize a snapshot into canonically encodable primitives."""
    if isinstance(value, (bytes, str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


class FileBackedLog(OperationLog):
    """An :class:`OperationLog` that survives process restarts.

    Records are CRC-framed JSON lines (shared framing with the
    consensus WAL, see :func:`repro.sim.storage.frame_record`):
    ``{"cid": ..., "reqs": [...]}`` for batch entries and
    ``{"checkpoint": cid, "state": ...}`` for checkpoints.  Operations
    must be JSON-serializable (or convertible through the
    ``encode_op``/``decode_op`` hooks).

    Recovery tolerates a *torn tail* -- a partial or CRC-mismatched
    final record from a crash mid-write -- by truncating the file at
    the first bad byte.  Damage in the middle of the file (a bad record
    followed by valid ones) cannot come from a torn write and raises
    :class:`~repro.sim.storage.LogCorruption` instead.
    """

    def __init__(
        self,
        path: str,
        encode_op: Optional[Callable[[Any], Any]] = None,
        decode_op: Optional[Callable[[Any], Any]] = None,
    ):
        super().__init__()
        self.path = path
        self._encode_op = encode_op or (lambda op: op)
        self._decode_op = decode_op or (lambda op: op)
        if os.path.exists(path):
            self._recover()

    def append(self, cid: int, batch: List[ClientRequest]) -> None:
        super().append(cid, batch)
        record = {
            "cid": cid,
            "reqs": [
                {
                    "client": r.client_id,
                    "seq": r.sequence,
                    "op": self._encode_op(r.operation),
                    "size": r.size_bytes,
                }
                for r in batch
            ],
        }
        self._write(record)

    def set_checkpoint(self, checkpoint: Checkpoint) -> None:
        super().set_checkpoint(checkpoint)
        self._write(
            {
                "checkpoint": checkpoint.cid,
                "state": _jsonable(checkpoint.state),
                "hash": checkpoint.state_hash.hex(),
            }
        )

    def _write(self, record: dict) -> None:
        with open(self.path, "ab") as fh:
            fh.write(frame_record(record))
            fh.flush()
            os.fsync(fh.fileno())

    def _recover(self) -> None:
        """Rebuild in-memory state from the on-disk record stream.

        A torn tail is truncated in place; mid-file corruption raises
        :class:`LogCorruption` so the operator (or recovery protocol)
        can fall back to state transfer instead of trusting the log.
        """
        with open(self.path, "rb") as fh:
            data = fh.read()
        scan = scan_records(data)
        if scan.error == "corrupt":
            raise LogCorruption(
                f"{self.path}: bad record followed by valid ones "
                f"(first bad byte at offset {scan.valid_bytes})"
            )
        if scan.error == "torn":
            with open(self.path, "r+b") as fh:
                fh.truncate(scan.valid_bytes)
        for record in scan.records:
            if "checkpoint" in record:
                OperationLog.set_checkpoint(
                    self,
                    Checkpoint(
                        cid=record["checkpoint"],
                        state=record["state"],
                        state_hash=bytes.fromhex(record["hash"]),
                    ),
                )
            else:
                batch = [
                    ClientRequest(
                        client_id=r["client"],
                        sequence=r["seq"],
                        operation=self._decode_op(r["op"]),
                        size_bytes=r["size"],
                    )
                    for r in record["reqs"]
                ]
                OperationLog.append(self, record["cid"], batch)
