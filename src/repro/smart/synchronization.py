"""Mod-SMaRt's synchronization phase (leader change) [22].

When progress stalls (a request stays pending past twice the request
timeout), replicas vote to abandon the current *regency*:

1. A replica sends STOP(r+1) to all.  A replica that collects more
   than ``f`` STOPs joins in (so one slow replica cannot trigger a
   change, but a justified change cannot be stopped).
2. On collecting ``2f+1`` STOPs a replica *installs* regency ``r+1``
   and sends STOPDATA to the new leader (``processes[(r+1) mod n]``),
   reporting its last executed instance and, if it observed a WRITE
   quorum for the in-flight instance, that write certificate.
3. The new leader collects ``n-f`` STOPDATAs and picks the *safe*
   value: the write-certified value from the highest regency if any
   certificate exists (such a value may already have been decided by
   someone, so it must be retained), otherwise a fresh batch of the
   reported pending requests.  It broadcasts SYNC carrying the value
   and the STOPDATA proofs.
4. Replicas validate SYNC against the proofs and adopt the value as
   the proposal for the open instance in the new regency; the normal
   WRITE/ACCEPT phases then finish it.

With WHEAT's tentative execution, a replica whose tentative value
differs from the SYNC value rolls back before re-executing (paper
section 4's stated cost of the optimization).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.smart.consensus import batch_hash
from repro.smart.messages import (
    ClientRequest,
    Stop,
    StopData,
    Sync,
    WriteCertificate,
)
from repro.smart.view import byzantine_majority_size


class EmptySyncRound(RuntimeError):
    """A SYNC value selection ran with no STOPDATA reports.

    ``on_stopdata`` only triggers ``_send_sync`` after collecting
    ``n - f`` reports, so an empty report set means the collection
    invariant was bypassed (e.g. a Byzantine-suppressed sync round or
    a harness driving internals directly).  Failing loudly beats the
    bare ``ValueError`` that ``max()`` over an empty generator raises.
    """

if TYPE_CHECKING:
    from repro.smart.replica import ServiceReplica


class Synchronizer:
    """Drives regency changes for one replica."""

    def __init__(self, replica: "ServiceReplica"):
        self.replica = replica
        self._stops: Dict[int, Set[int]] = {}
        self._stopdata: Dict[int, Dict[int, StopData]] = {}
        self._stop_sent: Set[int] = set()
        self._stop_last_sent: Dict[int, float] = {}
        self._sync_sent: Set[int] = set()
        self.changing_regency = False

    # ------------------------------------------------------------------
    # triggers
    # ------------------------------------------------------------------
    def request_regency_change(self, reason: str = "") -> None:
        """Phase 1: vote to leave the current regency.

        Called periodically while the stall persists, so STOPs lost to
        partitions or drops are retransmitted (standing in for the TCP
        retransmission real BFT-SMaRt channels provide).
        """
        if self.replica.faults.suppress_sync:
            return
        target = self.replica.regency + 1
        self._send_stop(target, force=True)

    def on_progress(self) -> None:
        """Called whenever a decision executes: the leader is alive."""
        if not self.changing_regency:
            # drop stale STOP votes for regencies we moved past
            stale = [r for r in self._stops if r <= self.replica.regency]
            for r in stale:
                del self._stops[r]

    # ------------------------------------------------------------------
    # STOP
    # ------------------------------------------------------------------
    def _send_stop(self, target: int, force: bool = False) -> None:
        replica = self.replica
        if target <= replica.regency:
            return
        now = replica.sim.now
        if target in self._stop_sent:
            recently = (
                now - self._stop_last_sent.get(target, 0.0)
                < replica.config.request_timeout
            )
            if not force or recently:
                return
        self._stop_sent.add(target)
        self._stop_last_sent[target] = now
        stop = Stop(replica.replica_id, target)
        replica._broadcast(stop, stop.wire_size())
        if replica.obs is not None:
            replica.obs.on_stop_sent(replica.replica_id, target, now)
        self._record_stop(replica.replica_id, target)

    def on_stop(self, src: int, msg: Stop) -> None:
        if src not in self.replica.view.weights:
            return
        if self.replica.faults.suppress_sync:
            return  # fault injection: boycott the synchronization phase
        if msg.next_regency <= self.replica.regency:
            return
        self._record_stop(src, msg.next_regency)

    def _record_stop(self, src: int, target: int) -> None:
        replica = self.replica
        votes = self._stops.setdefault(target, set())
        votes.add(src)
        f = replica.view.f
        if len(votes) > f:
            self._send_stop(target)  # join the change
        if len(votes) >= byzantine_majority_size(f) and target > replica.regency:
            self._install_regency(target)

    # ------------------------------------------------------------------
    # STOPDATA
    # ------------------------------------------------------------------
    def _install_regency(self, target: int) -> None:
        replica = self.replica
        replica.regency = target
        replica.log.log_regency(target)
        replica.counters.regency_changes += 1
        self.changing_regency = True
        if replica.obs is not None:
            replica.obs.on_sync_started(replica.replica_id, target, replica.sim.now)
        new_leader = replica.view.leader_of(target)
        open_cid = replica.last_executed + 1
        inst = replica.instances.get(open_cid)
        certificate: Optional[WriteCertificate] = None
        if inst is not None and inst.write_certificate is not None:
            certificate = inst.write_certificate
        stopdata = StopData(
            sender=replica.replica_id,
            regency=target,
            last_executed_cid=replica.last_executed,
            write_certificate=certificate,
            pending=replica.pending.peek_all(),
        )
        if new_leader == replica.replica_id:
            self.on_stopdata(replica.replica_id, stopdata)
        else:
            replica._send(new_leader, stopdata, stopdata.wire_size())
        # if the new leader is also faulty and never SYNCs, escalate
        replica.sim.schedule(
            replica.config.request_timeout, self._sync_timeout, target
        )

    def _sync_timeout(self, target: int) -> None:
        replica = self.replica
        if replica.crashed:
            return
        if self.changing_regency and replica.regency == target:
            self._send_stop(target + 1, force=True)
            replica.sim.schedule(
                replica.config.request_timeout, self._sync_timeout, target
            )

    def on_stopdata(self, src: int, msg: StopData) -> None:
        replica = self.replica
        if replica.view.leader_of(msg.regency) != replica.replica_id:
            return
        if msg.regency < replica.regency or msg.regency in self._sync_sent:
            return
        if src not in replica.view.weights:
            return
        if not self._certificate_valid(msg.write_certificate):
            return
        reports = self._stopdata.setdefault(msg.regency, {})
        reports[src] = msg
        view = replica.view
        if len(reports) >= view.n - view.f and msg.regency >= replica.regency:
            self._send_sync(msg.regency, reports)

    def _certificate_valid(self, cert: Optional[WriteCertificate]) -> bool:
        """A certificate must carry a write quorum and a matching batch."""
        if cert is None:
            return True
        view = self.replica.view
        if not view.has_quorum(cert.writers):
            return False
        if cert.batch is not None and batch_hash(cert.cid, cert.batch) != cert.value_hash:
            return False
        return True

    # ------------------------------------------------------------------
    # SYNC
    # ------------------------------------------------------------------
    def _send_sync(self, regency: int, reports: Dict[int, StopData]) -> None:
        replica = self.replica
        if not reports:
            raise EmptySyncRound(
                f"replica {replica.replica_id}: SYNC for regency {regency} "
                "has no STOPDATA reports to select a value from"
            )
        self._sync_sent.add(regency)
        open_cid = max(sd.last_executed_cid for sd in reports.values()) + 1
        open_cid = max(open_cid, replica.last_executed + 1)

        batch = self._select_value(open_cid, reports)
        value_hash = batch_hash(open_cid, batch)
        sync = Sync(
            sender=replica.replica_id,
            regency=regency,
            cid=open_cid,
            batch=batch,
            value_hash=value_hash,
            proofs=[report for _, report in sorted(reports.items())],
        )
        others = [p for p in replica.view.processes if p != replica.replica_id]
        replica.network.broadcast(replica.replica_id, others, sync, sync.wire_size())
        if replica.obs is not None and batch:
            # the SYNC value is the effective proposal for the open instance
            replica.obs.on_propose(replica.replica_id, open_cid, batch, replica.sim.now)
        self.on_sync(replica.replica_id, sync)

    def _select_value(
        self, open_cid: int, reports: Dict[int, StopData]
    ) -> List[ClientRequest]:
        """The Mod-SMaRt value-selection rule."""
        best: Optional[WriteCertificate] = None
        for _, report in sorted(reports.items()):
            cert = report.write_certificate
            if cert is None or cert.cid != open_cid or cert.batch is None:
                continue
            if best is None or cert.regency > best.regency:
                best = cert
        if best is not None:
            return list(best.batch)
        # no certified value: propose the union of reported pending
        # requests (FIFO by submission), capped at the batch limit
        replica = self.replica
        merged: Dict = {}
        for _, report in sorted(reports.items()):
            for request in report.pending:
                if request.request_id in replica._executed_ids:
                    continue
                merged.setdefault(request.request_id, request)
        batch = sorted(merged.values(), key=lambda r: r.uid)
        return batch[: replica.config.max_batch]

    def on_sync(self, src: int, msg: Sync) -> None:
        replica = self.replica
        if src != replica.view.leader_of(msg.regency):
            return
        if msg.regency < replica.regency:
            return
        view = replica.view
        if len({p.sender for p in msg.proofs}) < view.n - view.f:
            return  # insufficient justification
        if not self._sync_respects_certificates(msg):
            return  # leader ignored a certified value: refuse
        if msg.regency > replica.regency:
            replica.regency = msg.regency
            replica.log.log_regency(msg.regency)
            replica.counters.regency_changes += 1
        self.changing_regency = False
        if replica.obs is not None:
            replica.obs.on_sync_completed(replica.replica_id, msg.regency, replica.sim.now)
        self._stop_sent = {r for r in self._stop_sent if r > msg.regency}
        replica._forwarded = False

        if msg.cid <= replica.last_executed:
            # we already executed the open instance; just resume
            replica._maybe_propose()
            return
        if msg.cid > replica.last_executed + 1:
            replica.state_transfer.start()
            return

        inst = replica.instance(msg.cid)
        # roll back a divergent tentative execution before adopting
        if inst.tentative_hash is not None and inst.tentative_hash != msg.value_hash:
            replica._rollback_tentative()
        if msg.batch:
            if batch_hash(msg.cid, msg.batch) != msg.value_hash:
                return
            inst.learn_value(msg.batch)
            inst.proposed_hash[msg.regency] = msg.value_hash
            replica.active_cid = msg.cid
            replica._cast_write(inst, msg.value_hash)
            replica.recheck_instance(inst)
        else:
            # nothing to decide: regency installed, resume normal path
            replica.active_cid = None
            replica._maybe_propose()

    def _sync_respects_certificates(self, msg: Sync) -> bool:
        """The leader must propose any certified value its proofs show."""
        best: Optional[WriteCertificate] = None
        for report in msg.proofs:
            cert = report.write_certificate
            if cert is None or cert.cid != msg.cid or cert.batch is None:
                continue
            if not self._certificate_valid(cert):
                continue
            if best is None or cert.regency > best.regency:
                best = cert
        if best is None:
            return True
        return best.value_hash == msg.value_hash
