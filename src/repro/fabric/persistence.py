"""Ledger persistence: save/load chains as JSON.

Real peers persist their block store; this module serializes a
:class:`~repro.fabric.ledger.Ledger` (including full transactions,
endorsements and signatures) to a JSON file and reloads it with all
digests intact, so a reloaded chain still passes
:func:`repro.fabric.audit.audit_ledger` and signature verification.

Limitations (documented, enforced): chaincode arguments, results and
write-set values must be JSON-representable (which all shipped sample
chaincodes satisfy).
"""

from __future__ import annotations

import json
from typing import Any, Dict


from repro.fabric.block import Block, BlockHeader
from repro.fabric.envelope import (
    ChaincodeProposal,
    Endorsement,
    Envelope,
    ReadSet,
    Transaction,
    WriteSet,
)
from repro.fabric.ledger import Ledger

FORMAT_VERSION = 1


def _transaction_to_dict(tx: Transaction) -> Dict[str, Any]:
    return {
        "tx_id": tx.tx_id,
        "proposal": {
            "channel_id": tx.proposal.channel_id,
            "chaincode_id": tx.proposal.chaincode_id,
            "function": tx.proposal.function,
            "args": list(tx.proposal.args),
            "client": tx.proposal.client,
            "nonce": tx.proposal.nonce,
            "timestamp": tx.proposal.timestamp,
        },
        "reads": {
            key: (list(version) if version is not None else None)
            for key, version in tx.read_set.reads.items()
        },
        "writes": tx.write_set.writes,
        "result": tx.result,
        "endorsements": [
            {"endorser": e.endorser, "org": e.org, "signature": e.signature.hex()}
            for e in tx.endorsements
        ],
        "client_signature": tx.client_signature.hex(),
    }


def _transaction_from_dict(data: Dict[str, Any]) -> Transaction:
    proposal = ChaincodeProposal(
        channel_id=data["proposal"]["channel_id"],
        chaincode_id=data["proposal"]["chaincode_id"],
        function=data["proposal"]["function"],
        args=tuple(data["proposal"]["args"]),
        client=data["proposal"]["client"],
        nonce=data["proposal"]["nonce"],
        timestamp=data["proposal"]["timestamp"],
    )
    tx = Transaction(
        proposal=proposal,
        read_set=ReadSet(
            {
                key: (tuple(version) if version is not None else None)
                for key, version in data["reads"].items()
            }
        ),
        write_set=WriteSet(dict(data["writes"])),
        result=data["result"],
        endorsements=[
            Endorsement(
                endorser=e["endorser"],
                org=e["org"],
                signature=bytes.fromhex(e["signature"]),
            )
            for e in data["endorsements"]
        ],
        client_signature=bytes.fromhex(data["client_signature"]),
    )
    tx.tx_id = data["tx_id"]
    return tx


def envelope_to_dict(envelope: Envelope) -> Dict[str, Any]:
    return {
        "channel_id": envelope.channel_id,
        "payload_size": envelope.payload_size,
        "submitter": envelope.submitter,
        "signature": envelope.signature.hex(),
        "is_config": envelope.is_config,
        "envelope_id": envelope.envelope_id,
        "transaction": (
            _transaction_to_dict(envelope.transaction)
            if envelope.transaction is not None
            else None
        ),
    }


def envelope_from_dict(data: Dict[str, Any]) -> Envelope:
    envelope = Envelope(
        channel_id=data["channel_id"],
        transaction=(
            _transaction_from_dict(data["transaction"])
            if data["transaction"] is not None
            else None
        ),
        payload_size=data["payload_size"],
        submitter=data["submitter"],
        signature=bytes.fromhex(data["signature"]),
        is_config=data["is_config"],
    )
    envelope.envelope_id = data["envelope_id"]
    return envelope


def block_to_dict(block: Block) -> Dict[str, Any]:
    return {
        "number": block.header.number,
        "previous_hash": block.header.previous_hash.hex(),
        "data_hash": block.header.data_hash.hex(),
        "channel_id": block.channel_id,
        "signatures": {
            signer: signature.hex() for signer, signature in block.signatures.items()
        },
        "envelopes": [envelope_to_dict(e) for e in block.envelopes],
    }


def block_from_dict(data: Dict[str, Any]) -> Block:
    header = BlockHeader(
        number=data["number"],
        previous_hash=bytes.fromhex(data["previous_hash"]),
        data_hash=bytes.fromhex(data["data_hash"]),
    )
    return Block(
        header=header,
        envelopes=[envelope_from_dict(e) for e in data["envelopes"]],
        signatures={
            signer: bytes.fromhex(signature)
            for signer, signature in data["signatures"].items()
        },
        channel_id=data["channel_id"],
    )


def save_ledger(ledger: Ledger, path: str) -> None:
    """Write the whole chain to ``path`` as JSON."""
    payload = {
        "format": FORMAT_VERSION,
        "channel_id": ledger.channel_id,
        "blocks": [block_to_dict(block) for block in ledger],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)


def load_ledger(path: str) -> Ledger:
    """Reload a chain; every chain/data invariant is re-checked on
    append, so a tampered file fails loudly."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported ledger format {payload.get('format')!r}")
    ledger = Ledger(payload["channel_id"])
    for block_data in payload["blocks"]:
        ledger.append(block_from_dict(block_data))
    return ledger
