"""Application profiles: what a tenant's envelopes look like.

Drawn from "Evaluating Blockchain Application Requirements and their
Satisfaction in Hyperledger Fabric" (arXiv:2111.15399): token-transfer
apps with skewed key popularity (the MVCC-conflict generator),
supply-chain provenance (deep reads, fat read-sets, thin writes) and
multi-channel tenants whose traffic fans out over several ordering
channels.

A profile's job is to produce the tenant's *next envelope* -- channel,
payload size, key choices -- from the tenant's seeded RNG.  The
ordering service never looks inside an envelope, so key choices are
tracked as profile statistics (``hot_touches``/``conflict_candidates``)
rather than materialized read/write sets: that is what the committing
peers would contend on, reported without paying per-envelope object
churn in the ordering path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Optional, Sequence, Tuple

from repro.fabric.envelope import Envelope


class ApplicationProfile:
    """Builds one tenant's envelopes.

    ``make(rng, tenant, envelope_id)`` returns the next envelope; a
    pinned ``envelope_id`` (or None for the process-global counter)
    keeps explorer digests reproducible across in-process reruns.
    """

    def make(
        self, rng: Random, tenant: str, envelope_id: Optional[int] = None
    ) -> Envelope:
        raise NotImplementedError

    def _envelope(
        self,
        channel: str,
        size: int,
        tenant: str,
        envelope_id: Optional[int],
    ) -> Envelope:
        if envelope_id is None:
            return Envelope.raw(channel, size, submitter=tenant)
        return Envelope(
            channel_id=channel,
            transaction=None,
            payload_size=size,
            submitter=tenant,
            envelope_id=envelope_id,
        )


@dataclass
class RawProfile(ApplicationProfile):
    """Size-only envelopes on one channel -- the paper's microworkload."""

    channel: str = "channel0"
    envelope_size: int = 1024

    def make(self, rng, tenant, envelope_id=None):
        return self._envelope(self.channel, self.envelope_size, tenant, envelope_id)


@dataclass
class TokenTransferProfile(ApplicationProfile):
    """Token transfers with hot keys: the MVCC-conflict storm maker.

    Each transfer reads and writes two account keys.  With probability
    ``hot_fraction`` a key is drawn from the small ``hot_keys`` set
    (everyone fighting over the same accounts -- exchange wallets,
    popular NFTs); otherwise from a ``cold_keys``-sized cold space.
    Two transfers touching one hot key in the same block are an MVCC
    conflict at the committing peers, so the profile's
    ``conflict_candidates`` counter estimates the conflict pressure
    this tenant generates.
    """

    channel: str = "channel0"
    envelope_size: int = 200  # three endorsement signatures (§6.1)
    hot_keys: int = 16
    cold_keys: int = 1_000_000
    hot_fraction: float = 0.5
    #: profile statistics (cumulative, cheap ints)
    envelopes: int = field(default=0, init=False)
    hot_touches: int = field(default=0, init=False)
    conflict_candidates: int = field(default=0, init=False)

    def pick_keys(self, rng: Random) -> Tuple[int, int]:
        keys = []
        for _ in range(2):
            if rng.random() < self.hot_fraction:
                keys.append(rng.randrange(self.hot_keys))
            else:
                keys.append(self.hot_keys + rng.randrange(self.cold_keys))
        return keys[0], keys[1]

    def make(self, rng, tenant, envelope_id=None):
        src, dst = self.pick_keys(rng)
        hot = sum(1 for key in (src, dst) if key < self.hot_keys)
        self.envelopes += 1
        self.hot_touches += hot
        if hot:
            self.conflict_candidates += 1
        return self._envelope(self.channel, self.envelope_size, tenant, envelope_id)

    def conflict_fraction(self) -> float:
        """Fraction of transfers touching at least one hot key."""
        return self.conflict_candidates / self.envelopes if self.envelopes else 0.0


@dataclass
class ProvenanceProfile(ApplicationProfile):
    """Supply-chain provenance: deep read chains, fat envelopes.

    Each transaction walks ``read_depth`` provenance links and appends
    one record, so the endorsement result set (and with it the
    envelope) grows with the chain depth -- the read-heavy, large-
    envelope end of the application spectrum.
    """

    channel: str = "channel0"
    base_size: int = 512
    per_read_bytes: int = 96
    read_depth_min: int = 4
    read_depth_max: int = 32
    reads: int = field(default=0, init=False)
    envelopes: int = field(default=0, init=False)

    def make(self, rng, tenant, envelope_id=None):
        depth = rng.randint(self.read_depth_min, self.read_depth_max)
        self.reads += depth
        self.envelopes += 1
        size = self.base_size + depth * self.per_read_bytes
        return self._envelope(self.channel, size, tenant, envelope_id)


@dataclass
class MultiChannelProfile(ApplicationProfile):
    """A tenant spreading traffic over several channels (per-channel
    ordering, §3: the service gathers envelopes from all channels)."""

    channels: Sequence[str] = ("channel0",)
    envelope_size: int = 1024
    #: relative channel weights (uniform when empty)
    weights: Sequence[float] = ()

    def make(self, rng, tenant, envelope_id=None):
        if self.weights:
            channel = rng.choices(list(self.channels), weights=list(self.weights))[0]
        else:
            channel = self.channels[rng.randrange(len(self.channels))]
        return self._envelope(channel, self.envelope_size, tenant, envelope_id)
