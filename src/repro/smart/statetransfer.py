"""State transfer for recovering, lagging and joining replicas.

Paper section 5.2: because the ordering service's state is tiny (next
block number + previous block hash), checkpoints are cheap, logs stay
short, and bringing a new node up to date is fast.

Protocol (BFT-SMaRt's CST, simplified to its essential structure): the
fetching replica asks every peer for its checkpoint + log suffix; it
waits for ``f+1`` replies agreeing on the checkpoint digest and the
last decided instance, installs the checkpoint, replays the log, and
resumes normal processing.  Replies that disagree (from Byzantine or
stale peers) are simply never matched by ``f+1`` others.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple


from repro.smart.durability import Checkpoint, state_digest
from repro.smart.messages import StateReply, StateRequest
from repro.smart.view import one_correct_size

if TYPE_CHECKING:
    from repro.smart.replica import ServiceReplica

#: Seconds between retries while a transfer is unsatisfied.
RETRY_INTERVAL = 1.0


class StateTransfer:
    """Catch-up driver for one replica."""

    def __init__(self, replica: "ServiceReplica"):
        self.replica = replica
        self.in_progress = False
        self._replies: Dict[Tuple[int, bytes, int], Dict[int, StateReply]] = {}
        self.transfers_completed = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin (or restart) a state transfer; idempotent while active."""
        if self.in_progress:
            return
        self.in_progress = True
        self._replies.clear()
        self._ask()

    def _ask(self) -> None:
        replica = self.replica
        if not self.in_progress or replica.crashed:
            return
        request = StateRequest(replica.replica_id, replica.last_executed + 1)
        peers = [p for p in replica.view.processes if p != replica.replica_id]
        replica.network.broadcast(
            replica.replica_id, peers, request, request.wire_size()
        )
        replica.sim.schedule(RETRY_INTERVAL, self._retry)

    def _retry(self) -> None:
        if self.in_progress:
            self._replies.clear()
            self._ask()

    # ------------------------------------------------------------------
    def on_state_request(self, src: int, msg: StateRequest) -> None:
        replica = self.replica
        checkpoint = replica.log.checkpoint
        if checkpoint is None:
            checkpoint = Checkpoint(cid=-1, state=None, state_hash=state_digest(None))
        reply = StateReply(
            sender=replica.replica_id,
            checkpoint_cid=checkpoint.cid,
            state=checkpoint.state,
            state_hash=checkpoint.state_hash,
            log=replica.log.entries_after(checkpoint.cid),
            last_cid=replica.last_executed,
            view_snapshot=replica.view,
        )
        replica._send(src, reply, reply.wire_size())

    def on_state_reply(self, src: int, msg: StateReply) -> None:
        replica = self.replica
        if not self.in_progress:
            return
        stats = replica.recovery_stats
        if stats is not None and stats["rejoined_at"] is None:
            stats["state_transfer_bytes"] += msg.wire_size()
        if msg.last_cid <= replica.last_executed:
            # peer is no further along than we are; nothing to install.
            # If f+1 peers agree we are actually up to date, stop asking.
            key = (msg.checkpoint_cid, msg.state_hash, msg.last_cid)
            group = self._replies.setdefault(key, {})
            group[src] = msg
            if (
                msg.last_cid == replica.last_executed
                and len(group) >= one_correct_size(replica.view.f)
            ):
                self._adopt_view(group)
                self._finish()
            return
        key = (msg.checkpoint_cid, msg.state_hash, msg.last_cid)
        group = self._replies.setdefault(key, {})
        group[src] = msg
        if len(group) >= one_correct_size(replica.view.f):
            self._install(group)

    # ------------------------------------------------------------------
    def _install(self, group: Dict[int, StateReply]) -> None:
        replica = self.replica
        # double-check the claimed digest against the shipped state, and
        # take the verified reply from the lowest replica id: the group
        # agrees on (checkpoint_cid, state_hash, last_cid), so any
        # verified member works, but the choice must not depend on dict
        # arrival order or the replay below diverges across seeds
        candidates = [
            reply
            for _, reply in sorted(group.items())
            if state_digest(reply.state) == reply.state_hash
        ]
        if not candidates:
            return
        sample = candidates[0]
        if sample.checkpoint_cid > replica.last_executed:
            replica.app.set_state(sample.state)
            replica.last_executed = sample.checkpoint_cid
            replica.log.set_checkpoint(
                Checkpoint(
                    cid=sample.checkpoint_cid,
                    state=sample.state,
                    state_hash=sample.state_hash,
                )
            )
        for cid, batch in sorted(sample.log, key=lambda entry: entry[0]):
            if cid != replica.last_executed + 1:
                continue
            inst = replica.instance(cid)
            inst.learn_value(batch)
            replica._execute_batch(inst, batch, replica.regency, tentative=False)
            replica.last_executed = cid
            replica.log.append(cid, batch)
        if sample.view_snapshot is not None:
            view = sample.view_snapshot
            if view.view_id > replica.view.view_id:
                replica.install_view(view)
        # drop stale consensus bookkeeping
        for cid in [c for c in replica.instances if c <= replica.last_executed]:
            del replica.instances[cid]
        replica.active_cid = None
        self._finish()

    def _adopt_view(self, group: Dict[int, StateReply]) -> None:
        """Adopt a newer view from an agreeing reply group.

        Same trust model as :meth:`_install`: the lowest-id member of a
        group that already satisfied the agreement threshold.  Matters
        for a replica that is log-current but was reconfigured out (or
        in) while unreachable.
        """
        replica = self.replica
        sample = group[min(group)]
        if sample.view_snapshot is not None:
            if sample.view_snapshot.view_id > replica.view.view_id:
                replica.install_view(sample.view_snapshot)

    def _finish(self) -> None:
        self.in_progress = False
        self._replies.clear()
        self.transfers_completed += 1
        replica = self.replica
        stats = replica.recovery_stats
        if stats is not None and stats["rejoined_at"] is None:
            stats["rejoined_at"] = replica.sim.now
            if replica.obs is not None:
                replica.obs.on_recovery_completed(
                    replica.replica_id,
                    bytes_received=stats["state_transfer_bytes"],
                    now=replica.sim.now,
                )
        replica._maybe_propose()
