"""Figure 8: geo-distributed latency, blocks of 10 envelopes.

Paper results reproduced as shapes, at >1,000 tx/s with ordering nodes
in Oregon/Ireland/Sydney/São Paulo (+Virginia for WHEAT) and frontends
in Canada/Oregon/Virginia/São Paulo:

- WHEAT's latency is consistently lower than BFT-SMaRt's across all
  frontends, by roughly half;
- envelope size has a minor impact (<~30 ms between 40 B and 4 KB);
- frontend placement matters more: São Paulo (Vmin side) is slower
  than the Vmax-collocated frontends under WHEAT;
- absolute medians sit around half a second or below.

Runs the registered ``fig8_geo`` matrix through the harness.
"""

import pytest

from repro.bench.figures import ENVELOPE_SIZES, GEO_FRONTEND_SITES

pytestmark = pytest.mark.bench


def test_figure8_geo_latency(bench_result):
    result = bench_result("fig8_geo")

    for es in ENVELOPE_SIZES:
        bft = result.point(protocol="bftsmart", envelope_size=es).metrics
        wheat = result.point(protocol="wheat", envelope_size=es).metrics
        for region in GEO_FRONTEND_SITES:
            # shape 1: WHEAT consistently beats BFT-SMaRt
            assert wheat[f"{region}_median_s"].median < bft[f"{region}_median_s"].median
            assert wheat[f"{region}_p90_s"].median < bft[f"{region}_p90_s"].median
            # sanity: enough samples and sustained >1000 tx/s
            assert bft[f"{region}_samples"].median > 1000
            assert bft[f"{region}_tx_per_sec"].median > 1000
            assert wheat[f"{region}_tx_per_sec"].median > 1000

    # shape 2: WHEAT's improvement is large (paper: almost 50%)
    for es in ENVELOPE_SIZES:
        bft = result.point(protocol="bftsmart", envelope_size=es).metrics
        wheat = result.point(protocol="wheat", envelope_size=es).metrics
        bft_median = min(
            bft[f"{r}_median_s"].median for r in GEO_FRONTEND_SITES
        )
        wheat_median = min(
            wheat[f"{r}_median_s"].median for r in GEO_FRONTEND_SITES
        )
        assert wheat_median < 0.75 * bft_median

    # shape 3: envelope size has minor impact on latency
    for protocol in ("bftsmart", "wheat"):
        for region in GEO_FRONTEND_SITES:
            medians = [
                result.value(
                    f"{region}_median_s", protocol=protocol, envelope_size=es
                )
                for es in ENVELOPE_SIZES
            ]
            assert max(medians) - min(medians) < 0.120

    # shape 4: half-a-second medians with WHEAT (paper's headline)
    for es in ENVELOPE_SIZES:
        wheat = result.point(protocol="wheat", envelope_size=es).metrics
        assert all(
            wheat[f"{region}_median_s"].median < 0.55
            for region in GEO_FRONTEND_SITES
        )
