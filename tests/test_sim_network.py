"""Unit tests for the simulated network."""

import pytest

from repro.sim import ConstantLatency, MatrixLatency, Network
from repro.sim.network import MESSAGE_OVERHEAD_BYTES, NIC


class Inbox:
    def __init__(self):
        self.messages = []

    def deliver(self, src, payload):
        self.messages.append((src, payload))


@pytest.fixture
def net(sim):
    return Network(sim, ConstantLatency(0.010), default_bandwidth_bps=1e9)


def wire(net, *names):
    inboxes = {}
    for name in names:
        inbox = Inbox()
        net.register(name, inbox)
        inboxes[name] = inbox
    return inboxes


class TestDelivery:
    def test_message_arrives_with_latency(self, sim, net):
        boxes = wire(net, "a", "b")
        net.send("a", "b", "hello", size_bytes=0)
        sim.run()
        assert boxes["b"].messages == [("a", "hello")]
        assert sim.now == pytest.approx(
            0.010 + MESSAGE_OVERHEAD_BYTES * 8 / 1e9, rel=1e-6
        )

    def test_transmission_time_scales_with_size(self, sim, net):
        wire(net, "a", "b")
        net.send("a", "b", "big", size_bytes=1_000_000)
        sim.run()
        expected = 0.010 + (1_000_000 + MESSAGE_OVERHEAD_BYTES) * 8 / 1e9
        assert sim.now == pytest.approx(expected, rel=1e-6)

    def test_nic_serializes_transmissions(self, sim, net):
        boxes = wire(net, "a", "b")
        for _ in range(3):
            net.send("a", "b", "m", size_bytes=1_000_000)
        sim.run()
        expected = 0.010 + 3 * (1_000_000 + MESSAGE_OVERHEAD_BYTES) * 8 / 1e9
        assert sim.now == pytest.approx(expected, rel=1e-6)
        assert len(boxes["b"].messages) == 3

    def test_self_send_bypasses_nic(self, sim, net):
        boxes = wire(net, "a")
        net.send("a", "a", "loop", size_bytes=10_000_000)
        sim.run()
        assert boxes["a"].messages == [("a", "loop")]
        assert sim.now < 0.001

    def test_broadcast_reaches_all(self, sim, net):
        boxes = wire(net, "a", "b", "c", "d")
        net.broadcast("a", ["b", "c", "d"], "hi", size_bytes=100)
        sim.run()
        for name in ("b", "c", "d"):
            assert boxes[name].messages == [("a", "hi")]

    def test_send_to_unknown_destination_dropped(self, sim, net):
        wire(net, "a")
        net.send("a", "ghost", "m")
        sim.run()
        assert net.stats.messages_dropped == 1

    def test_duplicate_registration_rejected(self, net):
        wire(net, "a")
        with pytest.raises(ValueError):
            net.register("a", Inbox())

    def test_stats_track_bytes(self, sim, net):
        wire(net, "a", "b")
        net.send("a", "b", "m", size_bytes=100)
        sim.run()
        assert net.stats.bytes_sent == 100 + MESSAGE_OVERHEAD_BYTES
        assert net.stats.messages_delivered == 1


class TestFaults:
    def test_crashed_sender_sends_nothing(self, sim, net):
        boxes = wire(net, "a", "b")
        net.crash("a")
        net.send("a", "b", "m")
        sim.run()
        assert boxes["b"].messages == []

    def test_crashed_receiver_gets_nothing(self, sim, net):
        boxes = wire(net, "a", "b")
        net.crash("b")
        net.send("a", "b", "m")
        sim.run()
        assert boxes["b"].messages == []

    def test_recover_restores_delivery(self, sim, net):
        boxes = wire(net, "a", "b")
        net.crash("b")
        net.send("a", "b", "lost")
        net.recover("b")
        net.send("a", "b", "found")
        sim.run()
        assert boxes["b"].messages == [("a", "found")]

    def test_message_in_flight_to_crashing_node_lost(self, sim, net):
        boxes = wire(net, "a", "b")
        net.send("a", "b", "m")
        sim.schedule(0.001, net.crash, "b")
        sim.run()
        assert boxes["b"].messages == []

    def test_in_flight_message_not_delivered_to_new_incarnation(self, sim, net):
        """A message sent toward the pre-crash incarnation must not
        arrive stale after the node recovers (incarnation epochs)."""
        boxes = wire(net, "a", "b")
        net.send("a", "b", "stale")
        # crash and recover while the message is still in flight
        sim.schedule(0.0001, net.crash, "b")
        sim.schedule(0.0002, net.recover, "b")
        sim.run()
        assert boxes["b"].messages == []
        # the recovered incarnation receives fresh messages normally
        net.send("a", "b", "fresh")
        sim.run()
        assert boxes["b"].messages == [("a", "fresh")]

    def test_blocked_link_drops(self, sim, net):
        boxes = wire(net, "a", "b")
        net.block("a", "b")
        net.send("a", "b", "m")
        sim.run()
        assert boxes["b"].messages == []

    def test_block_is_bidirectional_by_default(self, sim, net):
        boxes = wire(net, "a", "b")
        net.block("a", "b")
        net.send("b", "a", "m")
        sim.run()
        assert boxes["a"].messages == []

    def test_unblock_restores(self, sim, net):
        boxes = wire(net, "a", "b")
        net.block("a", "b")
        net.unblock("a", "b")
        net.send("a", "b", "m")
        sim.run()
        assert boxes["b"].messages == [("a", "m")]

    def test_partition_separates_groups(self, sim, net):
        boxes = wire(net, "a", "b", "c", "d")
        net.partition(["a", "b"], ["c", "d"])
        net.send("a", "c", "cross")
        net.send("a", "b", "within")
        sim.run()
        assert boxes["c"].messages == []
        assert boxes["b"].messages == [("a", "within")]

    def test_heal_removes_partition(self, sim, net):
        boxes = wire(net, "a", "b")
        net.partition(["a"], ["b"])
        net.heal()
        net.send("a", "b", "m")
        sim.run()
        assert boxes["b"].messages == [("a", "m")]

    def test_drop_rate_one_drops_everything(self, sim, net):
        boxes = wire(net, "a", "b")
        net.set_drop_rate("a", "b", 1.0)
        for _ in range(10):
            net.send("a", "b", "m")
        sim.run()
        assert boxes["b"].messages == []

    def test_filter_can_drop(self, sim, net):
        boxes = wire(net, "a", "b")
        net.add_filter(lambda src, dst, payload: None if payload == "bad" else payload)
        net.send("a", "b", "bad")
        net.send("a", "b", "good")
        sim.run()
        assert boxes["b"].messages == [("a", "good")]

    def test_filter_can_mutate(self, sim, net):
        boxes = wire(net, "a", "b")
        net.add_filter(lambda src, dst, payload: payload.upper())
        net.send("a", "b", "quiet")
        sim.run()
        assert boxes["b"].messages == [("a", "QUIET")]

    def test_remove_filter(self, sim, net):
        boxes = wire(net, "a", "b")
        drop_all = lambda src, dst, payload: None
        net.add_filter(drop_all)
        net.remove_filter(drop_all)
        net.send("a", "b", "m")
        sim.run()
        assert boxes["b"].messages == [("a", "m")]


class TestLatencyModels:
    def test_constant_latency_no_jitter(self):
        model = ConstantLatency(0.05)
        assert model.delay("x", "y", None) == 0.05

    def test_constant_latency_jitter_bounded(self):
        import random

        model = ConstantLatency(0.05, jitter_fraction=0.1)
        rng = random.Random(1)
        for _ in range(100):
            delay = model.delay("x", "y", rng)
            assert 0.05 <= delay <= 0.055

    def test_matrix_symmetric_fill(self):
        model = MatrixLatency({("a", "b"): 0.1})
        assert model.delay("b", "a", None) == 0.1

    def test_matrix_local_delay(self):
        model = MatrixLatency({("a", "b"): 0.1}, local_delay=0.001)
        assert model.delay("a", "a", None) == 0.001

    def test_matrix_unknown_pair_raises(self):
        model = MatrixLatency({("a", "b"): 0.1})
        with pytest.raises(KeyError):
            model.delay("a", "z", None)

    def test_sites_affect_delay(self, sim):
        net = Network(sim, MatrixLatency({("east", "west"): 0.2}))
        boxes = {}
        for name, site in [("a", "east"), ("b", "west")]:
            inbox = Inbox()
            net.register(name, inbox, site=site)
            boxes[name] = inbox
        net.send("a", "b", "far", size_bytes=0)
        sim.run()
        assert sim.now >= 0.2


class TestNIC:
    def test_queue_delay_builds_up(self, sim):
        nic = NIC(sim, bandwidth_bps=8e6)  # 1 MB/s
        nic.transmit(1_000_000)
        assert nic.queue_delay == pytest.approx(1.0)

    def test_utilization(self, sim):
        nic = NIC(sim, bandwidth_bps=8e6)
        nic.transmit(500_000)
        assert nic.utilization(1.0) == pytest.approx(0.5)

    def test_invalid_bandwidth(self, sim):
        with pytest.raises(ValueError):
            NIC(sim, bandwidth_bps=0)
