"""Tests for ledger persistence (save/load with digests intact)."""

import pytest

from repro.fabric.audit import audit_ledger
from repro.fabric.persistence import (
    block_from_dict,
    block_to_dict,
    load_ledger,
    save_ledger,
)


def committed_pipeline(tmp_path=None):
    """Run a few real transactions through the full stack and return
    the committing peer + registry."""
    from repro.fabric import (
        ChannelConfig,
        CommittingPeer,
        EndorsingPeer,
        FabricClient,
        KVChaincode,
        SignedBy,
    )
    from repro.ordering import OrderingServiceConfig, build_ordering_service

    policy = SignedBy("org1")
    channel = ChannelConfig(
        "ch0", max_message_count=2, batch_timeout=0.3, endorsement_policy=policy
    )
    service = build_ordering_service(
        OrderingServiceConfig(
            f=1, channel=channel, physical_cores=None, enable_batch_timeout=True
        )
    )
    sim, network, registry = service.sim, service.network, service.registry
    registry.enroll("peer0", org="org1")
    committer = CommittingPeer(
        sim, network, "peer0", channel,
        registry=registry,
        orderer_names={n.name for n in service.nodes},
        required_block_signatures=2,
    )
    network.register("peer0", committer)
    service.frontends[0].attach_peer("peer0")
    identity = registry.enroll("endorser0", org="org1")
    endorser = EndorsingPeer(
        network, "endorser0", identity,
        state_provider=lambda _ch: committer.state,
        chaincodes={"kv": KVChaincode()},
    )
    network.register("endorser0", endorser)
    client_identity = registry.enroll("alice", org="clients")
    client = FabricClient(
        sim, network, client_identity, registry,
        endorsers=["endorser0"],
        orderer_endpoint=service.frontends[0].name,
        default_policy=policy,
    )
    futures = [
        client.submit_transaction("ch0", "kv", "put", (f"key{i}", {"n": i}))
        for i in range(5)
    ]
    assert sim.drain(futures, 30.0)
    return committer, registry, service


class TestPersistence:
    def test_roundtrip_preserves_chain(self, tmp_path):
        committer, registry, _service = committed_pipeline()
        path = str(tmp_path / "chain.json")
        save_ledger(committer.ledger, path)
        reloaded = load_ledger(path)
        assert reloaded.height == committer.ledger.height
        assert reloaded.verify_chain()
        assert reloaded.last_hash == committer.ledger.last_hash

    def test_reloaded_chain_passes_full_audit(self, tmp_path):
        committer, registry, service = committed_pipeline()
        path = str(tmp_path / "chain.json")
        save_ledger(committer.ledger, path)
        reloaded = load_ledger(path)
        report = audit_ledger(
            reloaded, registry, orderer_names={n.name for n in service.nodes}
        )
        assert report.ok
        assert report.min_signatures >= 2  # f+1 orderer signatures survive

    def test_endorsement_signatures_survive_reload(self, tmp_path):
        committer, registry, _service = committed_pipeline()
        path = str(tmp_path / "chain.json")
        save_ledger(committer.ledger, path)
        reloaded = load_ledger(path)
        checked = 0
        for block in reloaded:
            for envelope in block.envelopes:
                tx = envelope.transaction
                if tx is None:
                    continue
                payload = tx.response_payload()
                for endorsement in tx.endorsements:
                    verifier = registry.verifier_of(endorsement.endorser)
                    assert verifier.verify(payload, endorsement.signature)
                    checked += 1
        assert checked >= 5

    def test_tampered_file_rejected_on_load(self, tmp_path):
        import json

        committer, _registry, _service = committed_pipeline()
        path = str(tmp_path / "chain.json")
        save_ledger(committer.ledger, path)
        with open(path) as fh:
            payload = json.load(fh)
        # change a committed value inside a transaction
        for block in payload["blocks"]:
            for envelope in block["envelopes"]:
                if envelope["transaction"] is not None:
                    envelope["transaction"]["writes"] = {"key0": {"n": 666}}
                    break
        with open(path, "w") as fh:
            json.dump(payload, fh)
        from repro.fabric.ledger import LedgerError

        with pytest.raises(LedgerError):
            load_ledger(path)

    def test_wrong_format_version_rejected(self, tmp_path):
        import json

        path = str(tmp_path / "bad.json")
        with open(path, "w") as fh:
            json.dump({"format": 999, "channel_id": "x", "blocks": []}, fh)
        with pytest.raises(ValueError):
            load_ledger(path)

    def test_block_dict_roundtrip(self, tmp_path):
        committer, _registry, _service = committed_pipeline()
        block = committer.ledger.get(0)
        clone = block_from_dict(block_to_dict(block))
        assert clone.header.digest() == block.header.digest()
        assert clone.verify_data()
        assert [e.digest() for e in clone.envelopes] == [
            e.digest() for e in block.envelopes
        ]
