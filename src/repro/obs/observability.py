"""The observability hub: one object the whole deployment reports to.

An :class:`Observability` instance bundles a
:class:`~repro.obs.registry.MetricsRegistry` and a
:class:`~repro.obs.spans.SpanTracer` and exposes the ``on_*`` hook
methods that the instrumented components call.  Components hold
``self.obs = None`` by default and guard every call with
``if self.obs is not None`` -- with no hub attached the hot paths pay a
single attribute test.

The hub reconstructs the paper's end-to-end pipeline per envelope as a
*telescoping milestone chain*::

    submitted -> received -> proposed -> write_quorum -> decided
              -> block_cut -> signed -> frontend_received -> delivered

Each milestone is recorded first-wins (the earliest actor to reach it
stamps it), and every phase is the delta between two consecutive
milestones -- so the sum of the phase means equals the mean end-to-end
latency *exactly*, which is what lets ``python -m repro.obs report``
cross-check itself against the bench harness's latency recorder.

Span taxonomy (exported to Chrome trace / Perfetto):

- track ``consensus`` -- one root span per consensus instance
  (``consensus cid=N``) with ``write`` and ``accept`` phase children;
- track ``ordering`` -- one root span per block (``block ch#N``) with
  ``signing``, ``dissemination`` and ``match`` phase children;
- track ``replica.<id>`` -- one ``sync r<target>`` span per regency
  change attempt; a change that never completes shows up as an orphan.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.fabric.envelope import Envelope
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Span, SpanTracer

#: The milestone chain, in pipeline order.
MILESTONES = (
    "submitted",
    "received",
    "proposed",
    "write_quorum",
    "decided",
    "block_cut",
    "signed",
    "frontend_received",
    "delivered",
)

#: ``(phase label, from-milestone, to-milestone)`` -- consecutive
#: milestone pairs, so the phases telescope to the end-to-end latency.
PHASES = (
    ("transport.submit", "submitted", "received"),
    ("batching", "received", "proposed"),
    ("consensus.write", "proposed", "write_quorum"),
    ("consensus.accept", "write_quorum", "decided"),
    ("execution.cut", "decided", "block_cut"),
    ("signing", "block_cut", "signed"),
    ("dissemination", "signed", "frontend_received"),
    ("frontend.match", "frontend_received", "delivered"),
)


@dataclass
class PhaseBreakdown:
    """Per-phase latency samples over every completed envelope chain."""

    phases: Dict[str, List[float]]
    end_to_end: List[float]
    complete: int
    incomplete: int

    def mean(self, phase: str) -> float:
        samples = self.phases.get(phase, [])
        return sum(samples) / len(samples) if samples else 0.0

    def means(self) -> Dict[str, float]:
        return {label: self.mean(label) for label, _, _ in PHASES}

    @property
    def end_to_end_mean(self) -> float:
        if not self.end_to_end:
            return 0.0
        return sum(self.end_to_end) / len(self.end_to_end)

    @property
    def phase_sum(self) -> float:
        return sum(self.means().values())


class Observability:
    """Metrics + spans + the milestone pipeline, for one deployment."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer(clock)
        self._service: Any = None
        # milestone tables, all first-wins
        self._env: Dict[int, Dict[str, Any]] = {}            # envelope_id ->
        self._inst: Dict[int, Dict[str, Any]] = {}           # cid ->
        self._blk: Dict[Tuple[str, int], Dict[str, Any]] = {}  # (channel, number) ->
        self._first_copy: Dict[Tuple[Any, Tuple[str, int]], float] = {}
        self._seen_write_quorum: set[Tuple[int, int]] = set()
        self._seen_decided: set[Tuple[int, int]] = set()
        self._sync_spans: Dict[Tuple[int, int], Span] = {}
        # recovery spans: replica_id -> (root "recovery" span, open child)
        self._recovery_spans: Dict[int, Tuple[Span, Optional[Span]]] = {}

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self.tracer.bind_clock(clock)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, service: Any) -> "Observability":
        """Wire every component of an ``OrderingService`` to this hub."""
        self._service = service
        self.bind_clock(lambda: service.sim.now)
        service.network.obs = self
        for replica in service.replicas:
            replica.obs = self
        for node in service.nodes:
            node.obs = self
        for frontend in service.frontends:
            frontend.obs = self
            frontend.proxy.obs = self
            admission = getattr(frontend, "admission", None)
            if admission is not None:
                # queue-depth / shed-count gauges for the backpressure
                # loop (docs/WORKLOADS.md): sampled, not event-driven,
                # so the hot submit path stays counter-free
                name = frontend.name
                self.registry.gauge(
                    f"ordering.frontend.{name}.in_flight"
                ).track(lambda a=admission: a.in_flight)
                self.registry.gauge(
                    f"ordering.frontend.{name}.shed_count"
                ).track(lambda a=admission: a.shed_count)
                self.registry.gauge(
                    f"ordering.frontend.{name}.admission_fairness"
                ).track(lambda a=admission: a.fairness_index())
        for i, cpu in enumerate(service.cpus):
            if cpu is None:
                continue
            sim = service.sim
            self.registry.gauge(f"sim.cpu.{i}.utilization").track(
                lambda cpu=cpu, sim=sim: cpu.utilization(sim.now)
            )
            self.registry.gauge(f"sim.cpu.{i}.busy_core_seconds").track(
                lambda cpu=cpu: cpu.busy_core_seconds
            )
        return self

    def close(self) -> List[Span]:
        """Stop tracing; still-open spans become orphans."""
        return self.tracer.close()

    # ------------------------------------------------------------------
    # frontend / proxy hooks
    # ------------------------------------------------------------------
    def on_submit(self, frontend_name: Any, envelope: Envelope, now: float) -> None:
        rec = self._env.setdefault(envelope.envelope_id, {})
        rec.setdefault("submitted", now)
        self.registry.counter(
            f"ordering.frontend.{frontend_name}.envelopes_submitted"
        ).increment()

    def on_reject(
        self, frontend_name: Any, tenant: str, reason: str, now: float
    ) -> None:
        """Admission control refused an envelope (explicit shed)."""
        self.registry.counter(
            f"ordering.frontend.{frontend_name}.rejected.{reason}"
        ).increment()
        self.registry.counter(
            f"ordering.frontend.{frontend_name}.rejected_total"
        ).increment()

    def on_invoke(self, client_id: int, asynchronous: bool) -> None:
        kind = "async_invocations" if asynchronous else "invocations"
        self.registry.counter(f"smart.proxy.{client_id}.{kind}").increment()

    def on_retry(self, client_id: int) -> None:
        self.registry.counter(f"smart.proxy.{client_id}.retries").increment()

    def on_reply(self, client_id: int, latency: float) -> None:
        self.registry.histogram(
            f"smart.proxy.{client_id}.invoke_latency"
        ).observe(latency)

    # ------------------------------------------------------------------
    # replica hooks (consensus lifecycle)
    # ------------------------------------------------------------------
    def on_request(self, replica_id: int, request: Any, now: float) -> None:
        self.registry.counter(
            f"smart.replica.{replica_id}.requests_received"
        ).increment()
        operation = getattr(request, "operation", None)
        if isinstance(operation, Envelope):
            rec = self._env.setdefault(operation.envelope_id, {})
            rec.setdefault("received", now)

    def on_propose(
        self, replica_id: int, cid: int, batch: List[Any], now: float
    ) -> None:
        self.registry.counter(f"smart.replica.{replica_id}.proposes").increment()
        inst = self._inst.get(cid)
        if inst is None:
            root = self.tracer.begin(
                f"consensus cid={cid}",
                track="consensus",
                category="consensus",
                root=True,
                at=now,
                cid=cid,
            )
            inst = {
                "proposed": now,
                "_root": root,
                "_phase": self.tracer.begin(
                    "write", track="consensus", category="consensus",
                    parent=root, at=now,
                ),
            }
            self._inst[cid] = inst
        for request in batch:
            operation = getattr(request, "operation", None)
            if isinstance(operation, Envelope):
                rec = self._env.setdefault(operation.envelope_id, {})
                rec.setdefault("cid", cid)

    def _advance(
        self,
        rec: Dict[str, Any],
        milestone: str,
        now: float,
        next_phase: Optional[str],
        track: str,
    ) -> bool:
        """First-wins milestone + span phase transition for one record."""
        if milestone in rec:
            return False
        rec[milestone] = now
        phase = rec.pop("_phase", None)
        if phase is not None and phase.open:
            self.tracer.end(phase, at=now)
        root = rec.get("_root")
        if root is not None and root.open:
            if next_phase is not None:
                rec["_phase"] = self.tracer.begin(
                    next_phase, track=track, category=track, parent=root, at=now
                )
            else:
                self.tracer.end(root, at=now)
        return True

    def on_write_quorum(self, replica_id: int, cid: int, now: float) -> None:
        key = (replica_id, cid)
        if key in self._seen_write_quorum:
            return
        self._seen_write_quorum.add(key)
        inst = self._inst.get(cid)
        if inst is not None and "proposed" in inst:
            self.registry.histogram(
                f"smart.replica.{replica_id}.consensus.write_quorum_wait"
            ).observe(now - inst["proposed"])
        if inst is not None:
            self._advance(inst, "write_quorum", now, "accept", "consensus")

    def on_decided(self, replica_id: int, cid: int, now: float) -> None:
        key = (replica_id, cid)
        if key in self._seen_decided:
            return
        self._seen_decided.add(key)
        self.registry.counter(f"smart.replica.{replica_id}.decided").increment()
        inst = self._inst.get(cid)
        if inst is not None:
            if "write_quorum" in inst:
                self.registry.histogram(
                    f"smart.replica.{replica_id}.consensus.accept_quorum_wait"
                ).observe(now - inst["write_quorum"])
            self._advance(inst, "decided", now, None, "consensus")

    def on_executed(
        self, replica_id: int, cid: int, batch_size: int, now: float
    ) -> None:
        self.registry.counter(
            f"smart.replica.{replica_id}.executed_batches"
        ).increment()
        self.registry.counter(
            f"smart.replica.{replica_id}.executed_requests"
        ).increment(batch_size)

    # ------------------------------------------------------------------
    # synchronization hooks (regency changes)
    # ------------------------------------------------------------------
    def on_stop_sent(self, replica_id: int, target: int, now: float) -> None:
        self.registry.counter(f"smart.replica.{replica_id}.stops_sent").increment()

    def on_sync_started(self, replica_id: int, target: int, now: float) -> None:
        self.registry.counter(
            f"smart.replica.{replica_id}.regency_installs"
        ).increment()
        key = (replica_id, target)
        if key not in self._sync_spans:
            self._sync_spans[key] = self.tracer.begin(
                f"sync r{target}",
                track=f"replica.{replica_id}",
                category="sync",
                root=True,
                at=now,
                target=target,
            )

    def on_sync_completed(self, replica_id: int, regency: int, now: float) -> None:
        self.registry.counter(
            f"smart.replica.{replica_id}.syncs_completed"
        ).increment()
        for key in [
            k
            for k in self._sync_spans
            if k[0] == replica_id and k[1] <= regency
        ]:
            span = self._sync_spans.pop(key)
            if span.open:
                self.tracer.end(span, at=now)

    # ------------------------------------------------------------------
    # recovery hooks (amnesiac restart, docs/RECOVERY.md)
    # ------------------------------------------------------------------
    def on_recovery_started(self, replica_id: int, now: float) -> None:
        self.registry.counter(f"smart.replica.{replica_id}.restarts").increment()
        root = self.tracer.begin(
            "recovery",
            track=f"replica.{replica_id}",
            category="recovery",
            root=True,
            at=now,
        )
        replay = self.tracer.begin(
            "replay",
            track=f"replica.{replica_id}",
            category="recovery",
            parent=root,
            at=now,
        )
        self._recovery_spans[replica_id] = (root, replay)

    def on_recovery_replayed(
        self,
        replica_id: int,
        batches: int,
        replay_s: float,
        truncated_bytes: int,
        corrupt: bool,
        now: float,
    ) -> None:
        prefix = f"smart.replica.{replica_id}.recovery"
        self.registry.histogram(f"{prefix}.replay_time").observe(replay_s)
        self.registry.counter(f"{prefix}.replayed_batches").increment(batches)
        if truncated_bytes:
            self.registry.counter(f"{prefix}.truncated_bytes").increment(
                truncated_bytes
            )
        if corrupt:
            self.registry.counter(f"{prefix}.corruptions").increment()
        entry = self._recovery_spans.get(replica_id)
        if entry is not None:
            root, child = entry
            if child is not None and child.open:
                self.tracer.end(child, at=now)
            rejoin = self.tracer.begin(
                "rejoin",
                track=f"replica.{replica_id}",
                category="recovery",
                parent=root,
                at=now,
            )
            self._recovery_spans[replica_id] = (root, rejoin)

    def on_recovery_completed(
        self, replica_id: int, bytes_received: int, now: float
    ) -> None:
        prefix = f"smart.replica.{replica_id}.recovery"
        self.registry.counter(f"{prefix}.state_transfer_bytes").increment(
            bytes_received
        )
        entry = self._recovery_spans.pop(replica_id, None)
        if entry is not None:
            root, child = entry
            if child is not None and child.open:
                self.tracer.end(child, at=now)
            if root.open:
                self.registry.histogram(f"{prefix}.rejoin_time").observe(
                    now - root.start
                )
                self.tracer.end(root, at=now)

    # ------------------------------------------------------------------
    # ordering-node hooks (blocks)
    # ------------------------------------------------------------------
    def on_block_cut(self, node_name: str, block: Any, now: float) -> None:
        self.registry.counter(f"ordering.node.{node_name}.blocks_cut").increment()
        key = (block.channel_id, block.header.number)
        rec = self._blk.get(key)
        if rec is None:
            root = self.tracer.begin(
                f"block {key[0]}#{key[1]}",
                track="ordering",
                category="ordering",
                root=True,
                at=now,
                channel=key[0],
                number=key[1],
            )
            rec = {
                "block_cut": now,
                "_root": root,
                "_phase": self.tracer.begin(
                    "signing", track="ordering", category="ordering",
                    parent=root, at=now,
                ),
            }
            self._blk[key] = rec
        for envelope in block.envelopes:
            env = self._env.setdefault(envelope.envelope_id, {})
            env.setdefault("block", key)

    def on_block_signed(
        self, node_name: str, block: Any, cut_time: float, now: float
    ) -> None:
        self.registry.counter(f"ordering.node.{node_name}.blocks_signed").increment()
        self.registry.histogram(
            f"ordering.node.{node_name}.sign_time"
        ).observe(now - cut_time)
        rec = self._blk.get((block.channel_id, block.header.number))
        if rec is not None:
            self._advance(rec, "signed", now, "dissemination", "ordering")

    def on_block_copy(
        self, frontend_name: Any, channel: str, number: int, now: float
    ) -> None:
        key = (channel, number)
        self._first_copy.setdefault((frontend_name, key), now)
        self.registry.counter(
            f"ordering.frontend.{frontend_name}.block_copies"
        ).increment()
        rec = self._blk.get(key)
        if rec is not None:
            self._advance(rec, "frontend_received", now, "match", "ordering")

    def on_block_delivered(self, frontend_name: Any, block: Any, now: float) -> None:
        self.registry.counter(
            f"ordering.frontend.{frontend_name}.blocks_matched"
        ).increment()
        self.registry.counter(
            f"ordering.frontend.{frontend_name}.envelopes_delivered"
        ).increment(len(block.envelopes))
        key = (block.channel_id, block.header.number)
        first = self._first_copy.get((frontend_name, key))
        if first is not None:
            self.registry.histogram(
                f"ordering.frontend.{frontend_name}.match_wait"
            ).observe(now - first)
        rec = self._blk.get(key)
        if rec is not None:
            self._advance(rec, "delivered", now, None, "ordering")
        for envelope in block.envelopes:
            env = self._env.setdefault(envelope.envelope_id, {})
            env.setdefault("delivered", now)
            env.setdefault("block", key)

    # ------------------------------------------------------------------
    # network hook
    # ------------------------------------------------------------------
    def on_message(
        self, src: Any, dst: Any, payload: Any, wire_bytes: int
    ) -> None:
        self.registry.counter("sim.network.messages_sent").increment()
        self.registry.counter("sim.network.bytes_sent").increment(wire_bytes)
        self.registry.counter(
            f"sim.network.kind.{type(payload).__name__}"
        ).increment()

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def _chain_of(self, rec: Dict[str, Any]) -> Optional[Dict[str, float]]:
        """The full milestone chain for one envelope, or None if any
        milestone is missing or the chain is non-monotone."""
        chain: Dict[str, float] = {}
        for name in ("submitted", "received", "delivered"):
            if name in rec:
                chain[name] = rec[name]
        inst = self._inst.get(rec["cid"]) if "cid" in rec else None
        if inst is not None:
            for name in ("proposed", "write_quorum", "decided"):
                if name in inst:
                    chain[name] = inst[name]
        blk = self._blk.get(rec["block"]) if "block" in rec else None
        if blk is not None:
            for name in ("block_cut", "signed", "frontend_received"):
                if name in blk:
                    chain[name] = blk[name]
        if any(name not in chain for name in MILESTONES):
            return None
        times = [chain[name] for name in MILESTONES]
        if any(b < a for a, b in zip(times, times[1:])):
            return None
        return chain

    def phase_breakdown(self) -> PhaseBreakdown:
        """Per-phase latency over every envelope with a complete chain."""
        phases: Dict[str, List[float]] = {label: [] for label, _, _ in PHASES}
        end_to_end: List[float] = []
        complete = 0
        incomplete = 0
        for rec in self._env.values():
            chain = self._chain_of(rec)
            if chain is None:
                incomplete += 1
                continue
            complete += 1
            end_to_end.append(chain["delivered"] - chain["submitted"])
            for label, start, stop in PHASES:
                phases[label].append(chain[stop] - chain[start])
        return PhaseBreakdown(
            phases=phases,
            end_to_end=end_to_end,
            complete=complete,
            incomplete=incomplete,
        )

    def instance_timeline(self, cid: int) -> List[Tuple[str, float]]:
        """Ordered ``(milestone, time)`` pairs for one consensus
        instance, using the earliest envelope ordered in it (the ASCII
        critical-path view of the export module renders this)."""
        candidates = [
            rec
            for rec in self._env.values()
            if rec.get("cid") == cid and "submitted" in rec
        ]
        if not candidates:
            return []
        rec = min(candidates, key=lambda r: r["submitted"])
        chain = self._chain_of(rec)
        if chain is None:
            # fall back to whatever milestones exist, in order
            partial: Dict[str, float] = {}
            inst = self._inst.get(cid, {})
            blk = self._blk.get(rec.get("block"), {}) if "block" in rec else {}
            for name in MILESTONES:
                for source in (rec, inst, blk):
                    if name in source:
                        partial[name] = source[name]
                        break
            return [(n, partial[n]) for n in MILESTONES if n in partial]
        return [(name, chain[name]) for name in MILESTONES]

    def decided_cids(self) -> List[int]:
        return sorted(c for c, rec in self._inst.items() if "decided" in rec)
