"""Invariant-checker tests, including mutation tests proving teeth.

A checker that never fires is worthless: the mutation tests disable a
safety check inside one replica (``SkipQuorumChecks``) while a
Byzantine leader equivocates, and assert the fork invariants *do*
flag the resulting divergence.  The clean-cluster tests establish the
baseline: no faults, no violations.
"""

import pytest

from repro.faults import (
    BlockRecorder,
    EquivocatePropose,
    FaultInjector,
    SkipQuorumChecks,
    check_history_prefixes,
    check_liveness,
    check_log_agreement,
    replica_log_digests,
)
from tests.conftest import Cluster

pytestmark = pytest.mark.faults


class TestHistoryPrefixes:
    def test_identical_histories_pass(self):
        histories = {0: [1, 2, 3], 1: [1, 2, 3], 2: [1, 2]}
        assert check_history_prefixes(histories) == []

    def test_divergence_flagged_with_position(self):
        histories = {0: [1, 2, 3], 1: [1, 9, 3]}
        (violation,) = check_history_prefixes(histories)
        assert violation.invariant == "fork"
        assert "position 1" in violation.detail

    def test_exclude_skips_byzantine_replicas(self):
        histories = {0: [1, 2], 1: [1, 2], 3: [7, 7]}
        assert check_history_prefixes(histories, exclude=[3]) == []


class TestLogAgreement:
    def test_agreeing_logs_pass(self):
        logs = {0: {0: b"a", 1: b"b"}, 1: {0: b"a"}, 2: {1: b"b"}}
        assert check_log_agreement(logs) == []

    def test_conflicting_instance_flagged(self):
        logs = {0: {5: b"a"}, 1: {5: b"DIFFERENT"}}
        (violation,) = check_log_agreement(logs)
        assert violation.invariant == "fork"
        assert "instance 5" in violation.detail


class TestBlockRecorder:
    def make_delivery(self, source, number, data):
        from repro.fabric.api import BlockDelivery
        from repro.fabric.block import Block, BlockHeader

        header = BlockHeader(number=number, previous_hash=b"p", data_hash=data)
        block = Block(header=header, envelopes=[], channel_id="ch0")
        return BlockDelivery(block=block, source=source)

    def test_agreement_passes(self):
        recorder = BlockRecorder()
        for node in ("a", "b", "c"):
            recorder("x", "fe", self.make_delivery(node, 0, b"same"))
        assert recorder.check() == []

    def test_equivocation_flagged(self):
        recorder = BlockRecorder()
        recorder("x", "fe", self.make_delivery("a", 0, b"one"))
        recorder("x", "fe", self.make_delivery("a", 0, b"two"))
        violations = recorder.check()
        assert any(v.invariant == "block-equivocation" for v in violations)

    def test_cross_node_fork_flagged(self):
        recorder = BlockRecorder()
        recorder("x", "fe", self.make_delivery("a", 0, b"one"))
        recorder("x", "fe", self.make_delivery("b", 0, b"two"))
        violations = recorder.check()
        assert any(v.invariant == "block-fork" for v in violations)

    def test_passthrough_returns_payload(self):
        recorder = BlockRecorder()
        assert recorder("x", "y", "anything") == "anything"


class TestLiveness:
    def test_all_delivered_passes(self):
        assert check_liveness(10, 10) == []
        assert check_liveness(10, 12) == []  # duplicates are not a stall

    def test_shortfall_flagged(self):
        (violation,) = check_liveness(10, 8)
        assert violation.invariant == "liveness"
        assert "8 of 10" in violation.detail


class TestCleanCluster:
    def test_no_faults_no_violations(self):
        cluster = Cluster()
        proxy = cluster.proxy()
        futures = [proxy.invoke(i + 1) for i in range(6)]
        assert cluster.drain(futures)
        histories = {
            r.replica_id: app.history
            for r, app in zip(cluster.replicas, cluster.apps)
        }
        assert check_history_prefixes(histories) == []
        assert check_log_agreement(replica_log_digests(cluster.replicas)) == []


class TestMutationFork:
    """Disable a replica's quorum checks under an equivocating leader:
    the fork MUST be caught.  This proves the invariant checkers can
    actually see the failure they exist for."""

    def run_poisoned_cluster(self):
        cluster = Cluster(request_timeout=0.4)
        injector = FaultInjector(cluster.network, cluster.replicas)
        # leader 0 sends forged batches to replica 1, which (mutated)
        # no longer waits for quorums before deciding
        injector.start(EquivocatePropose(leader=0, victims=1))
        injector.start(SkipQuorumChecks(1))
        proxy = cluster.proxy(invoke_timeout=4.0, max_retries=10)
        futures = [proxy.invoke(i + 1) for i in range(3)]
        cluster.drain(futures, deadline=30.0)
        return cluster

    def test_fork_caught_by_history_invariant(self):
        cluster = self.run_poisoned_cluster()
        histories = {
            r.replica_id: app.history
            for r, app in zip(cluster.replicas, cluster.apps)
        }
        # the mutated replica executed the poison operation...
        assert -999 in histories[1]
        # ...and the invariant checker flags the divergence
        violations = check_history_prefixes(histories)
        assert any(v.invariant == "fork" for v in violations)

    def test_fork_caught_by_log_agreement(self):
        cluster = self.run_poisoned_cluster()
        violations = check_log_agreement(replica_log_digests(cluster.replicas))
        assert any(v.invariant == "fork" for v in violations)

    def test_excluding_the_byzantine_replica_restores_agreement(self):
        """Correct replicas never fork even while 1 is compromised."""
        cluster = self.run_poisoned_cluster()
        histories = {
            r.replica_id: app.history
            for r, app in zip(cluster.replicas, cluster.apps)
        }
        assert check_history_prefixes(histories, exclude=[1]) == []
        assert (
            check_log_agreement(replica_log_digests(cluster.replicas), exclude=[1])
            == []
        )
