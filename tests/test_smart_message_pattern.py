"""Protocol conformance: the failure-free message pattern of Figure 3.

For one consensus instance with a correct leader, BFT-SMaRt exchanges
exactly: one PROPOSE from the leader to the n-1 other replicas, then
every replica broadcasts one WRITE and one ACCEPT to the n-1 others.
"""

import pytest

from repro.smart.messages import Accept, ClientRequest, Propose, Reply, Write
from tests.conftest import Cluster


class MessageCounter:
    def __init__(self, network):
        self.counts = {}
        self.by_link = {}
        network.add_filter(self)

    def __call__(self, src, dst, payload):
        kind = type(payload).__name__
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.by_link.setdefault(kind, []).append((src, dst))
        return payload


class TestMessagePattern:
    def run_one_consensus(self, n=4, f=1):
        cluster = Cluster(n=n, f=f)
        counter = MessageCounter(cluster.network)
        proxy = cluster.proxy()
        future = proxy.invoke(1)
        assert cluster.drain([future])
        cluster.run(1.0)  # drain stragglers
        return cluster, counter

    @pytest.mark.parametrize("n,f", [(4, 1), (7, 2), (10, 3)])
    def test_exact_phase_counts(self, n, f):
        cluster, counter = self.run_one_consensus(n, f)
        assert counter.counts["Propose"] == n - 1
        assert counter.counts["Write"] == n * (n - 1)
        assert counter.counts["Accept"] == n * (n - 1)
        # client request reached all replicas once
        assert counter.counts["ClientRequest"] == n
        # every replica replied once
        assert counter.counts["Reply"] == n

    def test_propose_only_from_leader(self):
        cluster, counter = self.run_one_consensus()
        assert all(src == 0 for src, _dst in counter.by_link["Propose"])

    def test_writes_are_all_to_all(self):
        cluster, counter = self.run_one_consensus()
        links = set(counter.by_link["Write"])
        expected = {(a, b) for a in range(4) for b in range(4) if a != b}
        assert links == expected

    def test_no_synchronization_messages_without_faults(self):
        cluster, counter = self.run_one_consensus()
        for kind in ("Stop", "StopData", "Sync", "StateRequest", "ValueRequest"):
            assert kind not in counter.counts

    def test_two_instances_double_the_pattern(self):
        cluster = Cluster()
        counter = MessageCounter(cluster.network)
        proxy = cluster.proxy()
        first = proxy.invoke(1)
        assert cluster.drain([first])
        second = proxy.invoke(2)
        assert cluster.drain([second])
        cluster.run(1.0)
        assert counter.counts["Propose"] == 2 * 3
        assert counter.counts["Write"] == 2 * 12

    def test_batching_collapses_proposals(self):
        """A burst submitted together rides at most two consensus
        instances (one in flight + one batched behind it)."""
        cluster = Cluster()
        counter = MessageCounter(cluster.network)
        proxy = cluster.proxy()
        futures = [proxy.invoke(i) for i in range(30)]
        assert cluster.drain(futures)
        cluster.run(1.0)
        assert counter.counts["Propose"] <= 2 * 3

    def test_wheat_tentative_same_vote_pattern(self):
        """Tentative execution changes *when* results are delivered,
        not which consensus messages flow."""
        cluster = Cluster(n=5, f=1, delta=1, tentative=True, vmax_holders=(0, 1))
        counter = MessageCounter(cluster.network)
        proxy = cluster.proxy(accept_tentative=True)
        future = proxy.invoke(1)
        assert cluster.drain([future])
        cluster.run(1.0)
        assert counter.counts["Propose"] == 4
        assert counter.counts["Write"] == 5 * 4
        assert counter.counts["Accept"] == 5 * 4
