"""Tenant-aggregated arrival processes.

The central trick that makes million-session scenarios cheap: the
superposition of ``S`` independent Poisson session processes of rate
``r`` is one Poisson process of rate ``S * r``.  A tenant is therefore
modelled as a *single* arrival process with the aggregate rate -- one
pending timer and O(1) state no matter how many sessions it stands
for.  The bursty and diurnal processes modulate that aggregate rate
over time (correlated session behaviour: everyone trades at the open,
sleeps at night), which superposition alone cannot express.

Every process draws exclusively from the RNG handed to it -- a named
:class:`repro.sim.randomness.RandomStreams` stream -- so arrival
sequences are seed-reproducible (DET002-clean).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random

#: floor on inter-arrival delays: keeps a mis-parameterized process
#: from scheduling zero-delay event storms that stall the simulator
MIN_DELAY = 1e-9


class ArrivalProcess:
    """One tenant's aggregate arrival process.

    ``next_delay(rng, now)`` returns the seconds until the tenant's
    next submission.  ``rate`` is the long-run average aggregate rate
    in envelopes/second.
    """

    rate: float

    def next_delay(self, rng: Random, now: float) -> float:
        raise NotImplementedError


@dataclass
class FixedArrivals(ArrivalProcess):
    """Evenly spaced arrivals, optionally jittered.

    Exactly the historical ``OpenLoopGenerator`` spacing: the base
    interval stretched by a single uniform draw in
    ``±jitter_fraction`` -- and *no* draw at all when the jitter is
    zero, so unjittered schedules consume no randomness.
    """

    rate: float
    jitter_fraction: float = 0.0

    def next_delay(self, rng: Random, now: float) -> float:
        delay = 1.0 / self.rate
        if self.jitter_fraction > 0:
            delay *= 1.0 + self.jitter_fraction * (2.0 * rng.random() - 1.0)
        return max(delay, MIN_DELAY)


@dataclass
class PoissonArrivals(ArrivalProcess):
    """Memoryless aggregate arrivals -- the superposition of many
    independent client sessions."""

    rate: float

    def next_delay(self, rng: Random, now: float) -> float:
        return max(rng.expovariate(self.rate), MIN_DELAY)


@dataclass
class BurstyArrivals(ArrivalProcess):
    """On/off modulated Poisson arrivals (correlated session bursts).

    Sessions all wake in the first ``on_fraction`` of every ``period``
    and go quiet for the rest; the on-phase rate is scaled by
    ``1 / on_fraction`` so the long-run average stays ``rate``.  This
    is the workload that stresses the admission window: the burst's
    instantaneous rate is far above the service rate even when the
    average is comfortably below it.
    """

    rate: float
    period: float = 1.0
    on_fraction: float = 0.25

    def next_delay(self, rng: Random, now: float) -> float:
        on_window = self.period * self.on_fraction
        burst_rate = self.rate / self.on_fraction
        phase = now % self.period
        if phase < on_window:
            step = rng.expovariate(burst_rate)
            if phase + step < on_window:
                return max(step, MIN_DELAY)
            # the draw fell into the silent phase: carry the overshoot
            # into the next burst
            overshoot = (phase + step) - on_window
            return max((self.period - phase) + overshoot, MIN_DELAY)
        # silent phase: wait for the next burst, then draw within it
        until_on = self.period - phase
        return max(until_on + rng.expovariate(burst_rate), MIN_DELAY)


@dataclass
class DiurnalArrivals(ArrivalProcess):
    """Sinusoidally modulated arrivals (day/night load swing).

    The instantaneous rate is
    ``rate * (1 + amplitude * sin(2*pi*now/period))``; each delay is an
    exponential draw at the current instantaneous rate -- the standard
    piecewise approximation of a non-homogeneous Poisson process, exact
    in the limit of rates high relative to ``1/period``.
    """

    rate: float
    period: float = 86400.0
    amplitude: float = 0.5

    def next_delay(self, rng: Random, now: float) -> float:
        phase = math.sin(2.0 * math.pi * (now % self.period) / self.period)
        instantaneous = self.rate * (1.0 + self.amplitude * phase)
        floor = self.rate * max(1.0 - abs(self.amplitude), 0.01)
        return max(rng.expovariate(max(instantaneous, floor * 0.1)), MIN_DELAY)


def make_arrivals(kind: str, rate: float, **kwargs) -> ArrivalProcess:
    """Build an arrival process by name ("fixed"/"poisson"/"bursty"/
    "diurnal") -- the string form TOML specs and tenant tables use."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    if kind == "fixed":
        return FixedArrivals(rate=rate, **kwargs)
    if kind == "poisson":
        return PoissonArrivals(rate=rate, **kwargs)
    if kind == "bursty":
        return BurstyArrivals(rate=rate, **kwargs)
    if kind == "diurnal":
        return DiurnalArrivals(rate=rate, **kwargs)
    raise ValueError(f"unknown arrival kind {kind!r}")
