"""Bit-for-bit reproducibility of whole experiments.

The simulator is the instrument of this reproduction: identical seeds
must produce identical measurements, and different seeds must sample
the same distribution (close but not identical latencies).

The golden-equivalence tests pin the instrument itself: committed
digests of the full trace/span/metric views from two seeded smoke
scenarios.  Any kernel "optimization" that reorders events, perturbs a
timestamp, or shifts an RNG draw fails here byte-for-byte, so the fast
path can only ever be a faster encoding of the same computation.
"""

import json
import pathlib

import pytest

from repro.analysis.detsan import capture_record
from repro.bench.figures import geo_latency_experiment, simulate_lan_throughput
from repro.fabric.channel import ChannelConfig
from repro.fabric.envelope import Envelope
from repro.ordering import OrderingServiceConfig, build_ordering_service

GOLDEN_DIR = pathlib.Path(__file__).parent / "data" / "golden"


class TestSeededReproducibility:
    def test_geo_experiment_identical_for_same_seed(self):
        runs = [
            geo_latency_experiment(
                "wheat", envelope_size=1024, block_size=10,
                rate=900, duration=3.0, warmup=1.0, seed=7,
            )
            for _ in range(2)
        ]
        for a, b in zip(*runs):
            assert a.median == b.median
            assert a.p90 == b.p90
            assert a.samples == b.samples
            assert a.throughput == b.throughput

    def test_geo_experiment_differs_across_seeds(self):
        a = geo_latency_experiment(
            "wheat", envelope_size=1024, block_size=10,
            rate=900, duration=3.0, warmup=1.0, seed=1,
        )
        b = geo_latency_experiment(
            "wheat", envelope_size=1024, block_size=10,
            rate=900, duration=3.0, warmup=1.0, seed=2,
        )
        assert any(x.median != y.median for x, y in zip(a, b))
        # ... but they sample the same distribution
        for x, y in zip(a, b):
            assert x.median == pytest.approx(y.median, rel=0.15)

    def test_lan_simulation_identical_for_same_seed(self):
        first = simulate_lan_throughput(
            4, 10, 1024, 2, duration=0.5, warmup=0.2, seed=3
        )
        second = simulate_lan_throughput(
            4, 10, 1024, 2, duration=0.5, warmup=0.2, seed=3
        )
        assert first.generated_rate == second.generated_rate
        assert first.delivered_rate == second.delivered_rate

    def test_service_block_chain_identical_for_same_seed(self):
        def run(seed):
            service = build_ordering_service(
                OrderingServiceConfig(
                    f=1,
                    channel=ChannelConfig("ch0", max_message_count=5),
                    physical_cores=None,
                    latency=None,  # default LAN with no jitter
                    seed=seed,
                )
            )
            structure = []
            service.frontends[0].on_block.append(
                lambda b: structure.append(
                    (b.number, [e.payload_size for e in b.envelopes])
                )
            )
            for i in range(20):
                service.submit(Envelope.raw("ch0", 100 + i))
            service.run(3.0)
            return structure, service.nodes[0].blocks_created

        # envelope ids differ between runs (global counter), so compare
        # the delivered structure: block numbers and payload sizes
        assert run(5) == run(5)


class TestGoldenEquivalence:
    """The committed digests are the semantic contract of the kernel.

    ``capture_record`` (the DetSan harness) runs the seeded smoke
    scenario with tracing on and digests three independent views:
    the full event stream (time/kind/src/dst/detail rows in emission
    order), the span tree, and the metrics snapshot.  The digests are
    hash-seed independent (DetSan double-runs under different
    ``PYTHONHASHSEED`` values in CI), so they must match here under
    whatever hash seed pytest happens to run with.

    To refresh after an *intentional* semantic change:
    ``PYTHONHASHSEED=1 PYTHONPATH=src python tools/write_golden.py``
    (and justify the change in the PR).
    """

    @pytest.mark.parametrize("name", ["smoke_seed0", "smoke_seed7"])
    def test_digests_match_golden(self, name):
        golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        scenario = golden["scenario"]
        record = capture_record(
            seed=scenario["seed"],
            duration=scenario["duration"],
            rate=scenario["rate"],
        )
        # locate the first divergent event row before comparing digests:
        # "digest mismatch" alone is undebuggable
        if record["digests"]["events"] != golden["digests"]["events"]:
            for index, (got, want) in enumerate(
                zip(record["events"], golden["events"])
            ):
                assert got == want, f"first divergent event at index {index}"
            assert len(record["events"]) == len(golden["events"])
        for view in ("events", "metrics", "span_tree"):
            assert record["digests"][view] == golden["digests"][view], (
                f"{name}: {view} digest diverged from the committed golden; "
                "the kernel's observable behavior changed"
            )
