"""Figure 6: signature generation for Fabric blocks.

Paper result: ECDSA signing throughput scales with worker threads on
the dual quad-core Xeon E5520 (8 cores / 16 HT threads), peaking at
~8,400 signatures/second with 16 workers; with 10 envelopes per block
this bounds the ordering service at 84,000 tx/s.  §6.1 also notes the
rate is independent of envelope/block size (only the header is
signed).

Runs the registered ``fig6_signing`` / ``fig6_invariance`` matrices
through the harness (see ``repro.bench.suite``).
"""

import pytest

pytestmark = pytest.mark.bench


def test_figure6_signature_scaling(bench_result):
    result = bench_result("fig6_signing")

    measured = {
        p.params["workers"]: p.metrics["sig_per_sec"].median for p in result.points
    }
    # paper shape 1: monotone scaling with workers
    ordered = [measured[w] for w in sorted(measured)]
    assert all(a <= b * 1.001 for a, b in zip(ordered, ordered[1:]))
    # paper shape 2: the peak lands at ~8,400 sig/s
    assert measured[16] == pytest.approx(8400, rel=0.05)
    # paper shape 3: near-linear up to the 8 physical cores, then a knee
    assert measured[8] == pytest.approx(8 * measured[1], rel=0.05)
    gain_per_thread_low = (measured[8] - measured[1]) / 7.0
    gain_per_thread_high = (measured[16] - measured[8]) / 8.0
    assert gain_per_thread_high < 0.5 * gain_per_thread_low
    # paper headline: 84,000 tx/s theoretical bound at 10 env/block
    assert result.value("tx_per_sec_bound", workers=16) == pytest.approx(
        84000, rel=0.05
    )
    # simulation agrees with the closed-form model
    for point in result.points:
        assert point.metrics["sig_per_sec"].median == pytest.approx(
            point.metrics["model_sig_per_sec"].median, rel=0.02
        )


def test_figure6_rate_independent_of_sizes(bench_result):
    """§6.1: header-only signing makes the rate size-invariant."""
    result = bench_result("fig6_invariance")
    rates = {p.metrics["sig_per_sec"].median for p in result.points}
    assert len(rates) == 1
