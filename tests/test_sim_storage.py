"""Tests for the simulated stable-storage device and record framing."""

import random

import pytest

from repro.sim.storage import (
    SECTOR_SIZE,
    ScanResult,
    SimDisk,
    StorageFaults,
    frame_record,
    scan_records,
)


class TestSimDisk:
    def test_append_is_volatile_until_sync(self):
        disk = SimDisk()
        disk.append(b"hello")
        assert disk.read() == b""
        assert disk.contents() == b"hello"
        assert disk.unsynced_size == 5
        disk.sync()
        assert disk.read() == b"hello"
        assert disk.durable_size == 5
        assert disk.unsynced_size == 0

    def test_sync_returns_latency_and_counts(self):
        disk = SimDisk(fsync_latency=0.002)
        disk.append(b"x")
        assert disk.sync() == 0.002
        assert disk.fsyncs == 1
        assert disk.bytes_appended == 1

    def test_sync_flushes_whole_cache_in_order(self):
        disk = SimDisk()
        disk.append(b"a")
        disk.append(b"b")
        disk.sync()
        disk.append(b"c")
        disk.sync()
        assert disk.read() == b"abc"

    def test_crash_loses_unsynced_suffix(self):
        disk = SimDisk()
        disk.append(b"durable")
        disk.sync()
        disk.append(b"volatile")
        disk.crash(StorageFaults(), random.Random(0))
        assert disk.read() == b"durable"
        assert disk.unsynced_size == 0
        assert disk.crashes == 1

    def test_crash_torn_tail_keeps_sector_aligned_prefix(self):
        disk = SimDisk()
        disk.append(b"d" * 100)
        disk.sync()
        disk.append(b"t" * (3 * SECTOR_SIZE))
        rng = random.Random(7)
        disk.crash(StorageFaults(torn_tail=True), rng)
        kept = disk.durable_size - 100
        assert kept % SECTOR_SIZE == 0
        assert 0 <= kept <= 3 * SECTOR_SIZE
        assert disk.read()[:100] == b"d" * 100

    def test_crash_bitrot_flips_one_bit(self):
        disk = SimDisk()
        disk.append(b"\x00" * 64)
        disk.sync()
        disk.crash(StorageFaults(lose_unsynced=False, bitrot=True), random.Random(3))
        image = disk.read()
        assert len(image) == 64
        flipped = [b for b in image if b != 0]
        assert len(flipped) == 1
        assert bin(flipped[0]).count("1") == 1

    def test_truncate_discards_tail(self):
        disk = SimDisk()
        disk.append(b"0123456789")
        disk.sync()
        disk.truncate(4)
        assert disk.read() == b"0123"

    def test_read_latency_scales_with_size(self):
        disk = SimDisk(fsync_latency=0.0, read_bandwidth=100.0)
        disk.append(b"x" * 200)
        disk.sync()
        assert disk.read_latency() == pytest.approx(2.0)


class TestFraming:
    def test_frame_roundtrip(self):
        framed = frame_record({"t": "reg", "reg": 3})
        scan = scan_records(framed)
        assert scan.error is None
        assert scan.records == [{"t": "reg", "reg": 3}]
        assert scan.valid_bytes == len(framed)

    def test_frame_is_canonical(self):
        assert frame_record({"b": 1, "a": 2}) == frame_record({"a": 2, "b": 1})

    def test_scan_empty(self):
        assert scan_records(b"") == ScanResult(records=[], valid_bytes=0)

    def test_unterminated_tail_is_torn(self):
        good = frame_record({"n": 1})
        scan = scan_records(good + b"deadbeef {\"n\":")
        assert scan.error == "torn"
        assert scan.records == [{"n": 1}]
        assert scan.valid_bytes == len(good)

    def test_crc_mismatch_at_end_is_torn(self):
        good = frame_record({"n": 1})
        bad = bytearray(frame_record({"n": 2}))
        bad[12] ^= 0xFF  # corrupt the payload, keep the line framing
        scan = scan_records(good + bytes(bad))
        assert scan.error == "torn"
        assert scan.records == [{"n": 1}]
        assert scan.valid_bytes == len(good)

    def test_bad_record_before_valid_one_is_corrupt(self):
        first = frame_record({"n": 1})
        middle = bytearray(frame_record({"n": 2}))
        middle[12] ^= 0xFF
        last = frame_record({"n": 3})
        scan = scan_records(first + bytes(middle) + last)
        assert scan.error == "corrupt"
        assert scan.records == [{"n": 1}]
        assert scan.valid_bytes == len(first)

    def test_short_line_is_damage(self):
        scan = scan_records(frame_record({"n": 1}) + b"x\n")
        assert scan.error == "torn"

    def test_torn_write_of_framed_stream_recovers_prefix(self):
        records = [{"t": "batch", "cid": i} for i in range(20)]
        stream = b"".join(frame_record(r) for r in records)
        cut = len(stream) - 17  # mid-record
        scan = scan_records(stream[:cut])
        assert scan.error == "torn"
        assert scan.records == records[: len(scan.records)]
        # truncating at valid_bytes then rescanning is clean
        rescan = scan_records(stream[: scan.valid_bytes])
        assert rescan.error is None
        assert rescan.records == scan.records
