"""Per-backend block-validity policies for committing peers.

Every ordering backend hands blocks to the same
:class:`~repro.fabric.committer.CommittingPeer`, but what makes a block
*trustworthy* differs by backend:

- **solo / Kafka** orderers are trusted individually (crash-fault
  model): any well-formed block is accepted
  (:class:`AcceptAllBlocks`);
- **BFT-SMaRt** frontends gather ``2f+1`` matching block copies and
  merge their signatures, so the committer only needs ``f+1`` valid
  signatures to know a correct node vouched for the block
  (:class:`SignatureCountPolicy`);
- **SmartBFT-style** nodes disseminate a *single* copy carrying a
  ``2f+1`` signature quorum, so the committer itself verifies the
  quorum (:class:`SignatureQuorumPolicy`).

Factoring this into policy objects gives all backends one verified
entry point (``CommittingPeer.receive_block``) instead of the historic
copy-matching assumption baked into the committer.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.crypto.keys import KeyRegistry
from repro.fabric.block import Block
from repro.smart.view import byzantine_majority_size


class BlockValidityPolicy:
    """Decides whether a delivered block may be committed."""

    def check(self, block: Block) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class AcceptAllBlocks(BlockValidityPolicy):
    """Crash-fault backends (solo, Kafka): the orderer is trusted."""

    def check(self, block: Block) -> bool:
        return True

    def describe(self) -> str:
        return "accept-all"


def count_valid_signatures(
    block: Block,
    registry: Optional[KeyRegistry],
    orderer_names: Optional[Set[str]] = None,
) -> int:
    """Distinct valid ordering-node signatures on ``block``.

    Signers outside ``orderer_names`` (when given) or unknown to the
    registry never count.  Without a registry, signatures cannot be
    verified and every attached signature counts -- callers opt into
    that weaker mode explicitly by passing ``registry=None``.
    """
    if registry is None:
        if orderer_names:
            return sum(1 for name in block.signatures if name in orderer_names)
        return len(block.signatures)
    payload = block.header.signing_payload()
    valid = 0
    for signer, signature in sorted(block.signatures.items()):
        if orderer_names and signer not in orderer_names:
            continue
        if signer not in registry:
            continue
        if registry.verifier_of(signer).verify(payload, signature):
            valid += 1
    return valid


class SignatureCountPolicy(BlockValidityPolicy):
    """At least ``required`` valid ordering-node signatures.

    The BFT-SMaRt committer policy (paper section 5.1): the frontend's
    ``2f+1`` copy matching already happened upstream, and the merged
    block carries at least ``f+1`` honest signatures, so peers check a
    configured count.  ``required <= 0`` disables the check (the
    historic ``required_block_signatures=0`` default).
    """

    def __init__(
        self,
        required: int,
        registry: Optional[KeyRegistry] = None,
        orderer_names: Optional[Set[str]] = None,
    ):
        self.required = required
        self.registry = registry
        self.orderer_names = orderer_names or set()

    def check(self, block: Block) -> bool:
        if self.required <= 0:
            return True
        return (
            count_valid_signatures(block, self.registry, self.orderer_names)
            >= self.required
        )

    def describe(self) -> str:
        return f"signature-count>={self.required}"


class SignatureQuorumPolicy(BlockValidityPolicy):
    """A Byzantine-majority signature quorum travels *on* the block.

    The SmartBFT committer policy (arXiv:2107.06922): a single block
    copy is only trustworthy if it carries ``2f+1`` valid signatures
    from distinct ordering nodes, which guarantees a majority of the
    correct nodes agreed on exactly this block.
    """

    def __init__(
        self,
        f: int,
        registry: Optional[KeyRegistry] = None,
        orderer_names: Optional[Set[str]] = None,
    ):
        self.f = f
        self.quorum = byzantine_majority_size(f)
        self.registry = registry
        self.orderer_names = orderer_names or set()

    def check(self, block: Block) -> bool:
        return (
            count_valid_signatures(block, self.registry, self.orderer_names)
            >= self.quorum
        )

    def describe(self) -> str:
        return f"signature-quorum>={self.quorum}"
