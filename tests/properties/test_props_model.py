"""Property-based tests for the capacity model.

The model must behave like a physical system for *any* parameters: all
bounds positive and finite, monotone in load-increasing dimensions,
and Equation 1 an upper bound everywhere.
"""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.model import (
    OrderingCapacityModel,
    SignatureThroughputModel,
    eq1_bound,
)

cluster_sizes = st.sampled_from([4, 7, 10, 13])
envelope_sizes = st.integers(min_value=1, max_value=64 * 1024)
block_sizes = st.integers(min_value=1, max_value=1000)
receiver_counts = st.integers(min_value=1, max_value=64)


class TestCapacityModelProperties:
    @given(cluster_sizes, envelope_sizes, block_sizes, receiver_counts)
    @settings(max_examples=100)
    def test_throughput_positive_and_finite(self, n, es, bs, r):
        throughput = OrderingCapacityModel(n=n).throughput(es, bs, r)
        assert 0 < throughput < 1e9

    @given(cluster_sizes, envelope_sizes, block_sizes, st.data())
    @settings(max_examples=60)
    def test_monotone_nonincreasing_in_receivers(self, n, es, bs, data):
        r1 = data.draw(receiver_counts)
        r2 = data.draw(receiver_counts)
        low, high = sorted((r1, r2))
        model = OrderingCapacityModel(n=n)
        assert model.throughput(es, bs, high) <= model.throughput(es, bs, low) * 1.0001

    @given(cluster_sizes, block_sizes, receiver_counts, st.data())
    @settings(max_examples=60)
    def test_monotone_nonincreasing_in_envelope_size(self, n, bs, r, data):
        e1 = data.draw(envelope_sizes)
        e2 = data.draw(envelope_sizes)
        small, large = sorted((e1, e2))
        model = OrderingCapacityModel(n=n)
        assert model.throughput(large, bs, r) <= model.throughput(small, bs, r) * 1.0001

    @given(envelope_sizes, block_sizes, receiver_counts, st.data())
    @settings(max_examples=60)
    def test_monotone_nonincreasing_in_cluster_size(self, es, bs, r, data):
        n1 = data.draw(cluster_sizes)
        n2 = data.draw(cluster_sizes)
        small, large = sorted((n1, n2))
        assert (
            OrderingCapacityModel(n=large).throughput(es, bs, r)
            <= OrderingCapacityModel(n=small).throughput(es, bs, r) * 1.0001
        )

    @given(cluster_sizes, envelope_sizes, block_sizes, receiver_counts)
    @settings(max_examples=100)
    def test_eq1_upper_bounds_full_model(self, n, es, bs, r):
        full = OrderingCapacityModel(n=n).throughput(es, bs, r)
        assert full <= eq1_bound(bs, es, r, n=n) * 1.0001

    @given(cluster_sizes, envelope_sizes, receiver_counts, st.data())
    @settings(max_examples=60)
    def test_block_rate_consistent(self, n, es, r, data):
        bs = data.draw(block_sizes)
        model = OrderingCapacityModel(n=n)
        assert model.block_rate(es, bs, r) * bs == pytest.approx(
            model.throughput(es, bs, r)
        )

    @given(st.integers(1, 400), st.integers(1, 400))
    @settings(max_examples=40)
    def test_bigger_batches_never_hurt(self, b1, b2):
        small, large = sorted((b1, b2))
        assert (
            OrderingCapacityModel(n=4, batch_limit=large).throughput(200, 10, 2)
            >= OrderingCapacityModel(n=4, batch_limit=small).throughput(200, 10, 2)
            * 0.9999
        )


class TestSignatureModelProperties:
    @given(st.integers(1, 64))
    @settings(max_examples=40)
    def test_rate_positive_and_bounded_by_hw(self, workers):
        model = SignatureThroughputModel()
        rate = model.throughput(workers)
        assert 0 < rate <= model.peak * 1.0001

    @given(st.integers(1, 15))
    @settings(max_examples=30)
    def test_monotone_in_workers(self, workers):
        model = SignatureThroughputModel()
        assert model.throughput(workers + 1) >= model.throughput(workers)

    @given(st.integers(16, 64))
    @settings(max_examples=20)
    def test_saturates_at_hardware_threads(self, workers):
        model = SignatureThroughputModel()
        assert model.throughput(workers) == model.peak
