"""Analytic capacity model of the ordering service (Equation 1 and §6).

The paper bounds ordering throughput by

    TP_os <= min(TP_sign * bs,  TP_bftsmart(bs, es, r))        (Eq. 1)

This module makes every term concrete for the paper's testbed (Dell
PowerEdge R410: two quad-core 2.27 GHz Xeon E5520 with HT = 8 physical
cores / 16 hardware threads, Gigabit Ethernet) and decomposes
``TP_bftsmart`` into the resource bounds the evaluation discusses:

- **signing CPU** -- one ECDSA signature costs ``SIGN_COST`` core-
  seconds; 16 workers on 8 HT cores yield ~8.4 k sig/s (Figure 6);
- **replication protocol CPU** -- BFT-SMaRt's per-request processing
  (Java serialization, MACs, queues).  The paper reports BFT-SMaRt
  alone takes up to 60 % of the machine for a void service, which at
  its ~80-90 k req/s small-message peak gives ~75 us of core time per
  request; both effects emerge from one shared core budget;
- **block dissemination** -- each node transmits every block to all
  ``r`` receivers (a per-copy CPU cost plus egress bandwidth), which
  is what bends the curves of Figure 7 downward as receivers grow;
- **leader egress bandwidth** -- the PROPOSE carries each envelope to
  the other ``n-1`` replicas.

All constants are calibrated once, documented here, and asserted
against the paper's headline numbers by the benchmark suite.  We
reproduce *shapes* (who wins, where curves cross and flatten), not the
testbed's exact figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

# ----------------------------------------------------------------------
# calibration constants (the paper's hardware)
# ----------------------------------------------------------------------

#: Physical cores / hardware threads of the Dell R410.
PHYSICAL_CORES = 8
HARDWARE_THREADS = 16

#: Total speed of one core running two hyper-threads (vs 1.0 for one).
HT_YIELD = 1.3

#: Core-seconds per ECDSA P-256 signature, fitted so that 16 workers
#: produce ~8,400 signatures/second (Figure 6's peak).
SIGN_COST = (PHYSICAL_CORES * HT_YIELD) / 8400.0  # ~1.238 ms

#: Core-seconds of replication-protocol work per ordered request
#: (fixed part) and per payload byte.  Fitted to BFT-SMaRt's reported
#: small-message peak (~90-120 k req/s on this class of machine) and
#: to its "60% CPU for a void service" footprint (paper §6.2).
ORDER_COST_FIXED = 70e-6
ORDER_COST_PER_BYTE = 8e-9

#: Core-seconds to serialize/push one block copy to one receiver, plus
#: the per-byte share.  Fitted to the receiver-count degradation in
#: Figure 7 (a 2009-era Xeon spending ~0.15 ms per Java-serialized
#: block transmission makes 32 receivers cost ~5 ms of CPU per block,
#: which is what bends the small-envelope curves down).
BLOCK_COPY_COST = 150e-6
BLOCK_COPY_COST_PER_BYTE = 3e-9

#: Effective leader egress available to PROPOSE traffic, bits/second.
#: Fitted to BFT-SMaRt's measured large-request throughput (~4.5-6 k
#: req/s at 4 KB with n=4 [4]; ~2.2 k at n=10 -- the paper's floor).
ORDERING_BANDWIDTH = 0.6e9

#: Effective egress for block dissemination, bits/second.  The paper's
#: own floor (2,200 tx/s of 4 KB envelopes to 32 receivers = 2.3 Gb/s
#: leaving each node) implies more than one Gigabit NIC's worth of
#: effective egress (full-duplex + switched fan-out); we use 2.4 Gb/s.
DISSEMINATION_BANDWIDTH = 2.4e9

#: Core-seconds to process one WRITE/ACCEPT vote (MAC + dispatch) and
#: the fixed per-PROPOSE cost; amortized over the consensus batch.
VOTE_COST = 20e-6
PROPOSE_FIXED_COST = 50e-6

#: Wire overhead added to each envelope (request framing, §5 messages).
ENVELOPE_WIRE_OVERHEAD = 100

#: Block header + per-envelope framing bytes.
BLOCK_HEADER_BYTES = 152
ENVELOPE_FRAMING_BYTES = 8

#: The paper's BFT-SMaRt batch limit.
BATCH_LIMIT = 400


def cpu_capacity(workers: int, physical: int = PHYSICAL_CORES,
                 threads: int = HARDWARE_THREADS, ht_yield: float = HT_YIELD) -> float:
    """Aggregate core-equivalents delivered by ``workers`` busy threads."""
    active = min(workers, threads)
    base = min(active, physical)
    doubled = max(0, active - physical)
    return base + doubled * (ht_yield - 1.0)


@dataclass
class SignatureThroughputModel:
    """Figure 6: ECDSA signatures/second vs. signing worker threads."""

    physical_cores: int = PHYSICAL_CORES
    hardware_threads: int = HARDWARE_THREADS
    ht_yield: float = HT_YIELD
    sign_cost: float = SIGN_COST

    def throughput(self, workers: int) -> float:
        if workers < 1:
            raise ValueError("need at least one worker")
        capacity = cpu_capacity(
            workers, self.physical_cores, self.hardware_threads, self.ht_yield
        )
        return capacity / self.sign_cost

    def sweep(self, workers: Sequence[int] = tuple(range(1, 17))) -> Dict[int, float]:
        return {w: self.throughput(w) for w in workers}

    @property
    def peak(self) -> float:
        return self.throughput(self.hardware_threads)


@dataclass
class ThroughputBreakdown:
    """Every bound (tx/s) and the resulting prediction."""

    bounds: Dict[str, float]

    @property
    def throughput(self) -> float:
        return min(self.bounds.values())

    @property
    def binding_resource(self) -> str:
        return min(self.bounds, key=self.bounds.get)


@dataclass
class OrderingCapacityModel:
    """Throughput of one ordering node (measured at the leader, §6.2)."""

    n: int = 4
    signing_workers: int = 16
    core_budget: float = field(
        default_factory=lambda: cpu_capacity(HARDWARE_THREADS)
    )
    sign_cost: float = SIGN_COST
    order_cost_fixed: float = ORDER_COST_FIXED
    order_cost_per_byte: float = ORDER_COST_PER_BYTE
    block_copy_cost: float = BLOCK_COPY_COST
    block_copy_cost_per_byte: float = BLOCK_COPY_COST_PER_BYTE
    ordering_bandwidth: float = ORDERING_BANDWIDTH
    dissemination_bandwidth: float = DISSEMINATION_BANDWIDTH
    double_sign: bool = False
    #: BFT-SMaRt's consensus batch limit (400 in the paper); smaller
    #: batches amortize the per-consensus vote traffic over fewer
    #: requests (the batching ablation sweeps this)
    batch_limit: int = BATCH_LIMIT
    vote_cost: float = VOTE_COST
    propose_fixed_cost: float = PROPOSE_FIXED_COST

    # ------------------------------------------------------------------
    def breakdown(
        self, envelope_size: int, block_size: int, receivers: int
    ) -> ThroughputBreakdown:
        """All per-transaction resource bounds for one configuration."""
        es_wire = envelope_size + ENVELOPE_WIRE_OVERHEAD
        block_bytes = (
            BLOCK_HEADER_BYTES
            + block_size * (envelope_size + ENVELOPE_FRAMING_BYTES)
        )
        per_tx_block_bytes = block_bytes / block_size

        sign_cost = self.sign_cost * (2 if self.double_sign else 1)

        # per-consensus overhead (leader handles 2(n-1) votes and one
        # PROPOSE per batch) amortized over the batch
        per_batch_cpu = (
            2 * (self.n - 1) * self.vote_cost + self.propose_fixed_cost
        ) / max(1, self.batch_limit)

        # one shared core budget: ordering work + signing + block copies
        cpu_per_tx = (
            self.order_cost_fixed
            + self.order_cost_per_byte * es_wire
            + per_batch_cpu
            + sign_cost / block_size
            + receivers
            * (
                self.block_copy_cost / block_size
                + self.block_copy_cost_per_byte * per_tx_block_bytes
            )
        )
        cpu_bound = self.core_budget / cpu_per_tx

        # the signing pool alone cannot exceed its own capacity
        sign_capacity = cpu_capacity(self.signing_workers)
        sign_pool_bound = (sign_capacity / sign_cost) * block_size

        # leader egress: PROPOSE carries every envelope to n-1 replicas
        propose_bound = self.ordering_bandwidth / (8.0 * es_wire * (self.n - 1))

        # node egress: every block goes to every receiver
        if receivers > 0:
            dissemination_bound = self.dissemination_bandwidth / (
                8.0 * per_tx_block_bytes * receivers
            )
        else:
            dissemination_bound = float("inf")

        return ThroughputBreakdown(
            bounds={
                "cpu": cpu_bound,
                "signing_pool": sign_pool_bound,
                "propose_bandwidth": propose_bound,
                "dissemination_bandwidth": dissemination_bound,
            }
        )

    def throughput(
        self, envelope_size: int, block_size: int, receivers: int
    ) -> float:
        return self.breakdown(envelope_size, block_size, receivers).throughput

    def block_rate(
        self, envelope_size: int, block_size: int, receivers: int
    ) -> float:
        """Blocks signed per second at this operating point (§6.2
        reports ~1,100 blocks/s for 100-envelope blocks)."""
        return self.throughput(envelope_size, block_size, receivers) / block_size


def eq1_bound(
    block_size: int,
    envelope_size: int,
    receivers: int,
    n: int = 4,
    double_sign: bool = False,
) -> float:
    """The paper's Equation 1: ``min(TP_sign * bs, TP_bftsmart)``.

    ``TP_sign`` is the stand-alone Figure 6 rate (the micro-benchmark
    ran without the replication protocol competing for the CPU), so
    this is an upper bound the full system stays below.
    """
    signature_model = SignatureThroughputModel()
    tp_sign = signature_model.peak / (2 if double_sign else 1)
    capacity = OrderingCapacityModel(n=n, double_sign=double_sign)
    bounds = capacity.breakdown(envelope_size, block_size, receivers).bounds
    tp_bftsmart = min(bounds["propose_bandwidth"], bounds["dissemination_bandwidth"])
    return min(tp_sign * block_size, tp_bftsmart)
