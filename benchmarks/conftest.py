"""Shared helpers for the benchmark suite.

Each bench regenerates one table/figure of the paper, asserts the
*shape* properties the paper reports, and writes the rendered rows to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can be checked
against fresh numbers at any time.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write a rendered result table to benchmarks/results/."""

    def _record(name: str, text: str) -> None:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record
