#!/usr/bin/env python
"""Regenerate the golden experiment-report markdown.

The golden pins the exact rendering of
:func:`repro.bench.report.render_markdown` over the deterministic
scenario defined in ``tests/test_bench_report.py`` (the scenario and
this golden must only change together).  Usage::

    PYTHONPATH=src python tools/write_report_golden.py

then review the diff of ``tests/data/golden/bench_report.md``.
"""

import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "tests"))


def main() -> int:
    from test_bench_report import build_golden_report

    from repro.bench.report import render_markdown

    golden = REPO / "tests" / "data" / "golden" / "bench_report.md"
    golden.parent.mkdir(parents=True, exist_ok=True)
    golden.write_text(render_markdown(build_golden_report()), encoding="utf-8")
    print(f"wrote {golden}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
