"""Tests for the baseline orderers: solo and Kafka-like CFT."""

import pytest

from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import SimulatedECDSA
from repro.fabric.channel import ChannelConfig
from repro.fabric.envelope import Envelope
from repro.fabric.orderers import KafkaCluster, KafkaOrderer, SoloOrderer
from repro.sim import ConstantLatency, Network, Simulator


class Sink:
    def __init__(self):
        self.blocks = []

    def deliver(self, src, message):
        self.blocks.append(message.block)


@pytest.fixture
def env():
    sim = Simulator()
    network = Network(sim, ConstantLatency(0.0005))
    registry = KeyRegistry(scheme=SimulatedECDSA())
    return sim, network, registry


class TestSoloOrderer:
    def _solo(self, env, max_count=5, timeout=0.5):
        sim, network, registry = env
        identity = registry.enroll("solo")
        channel = ChannelConfig("ch0", max_message_count=max_count, batch_timeout=timeout)
        orderer = SoloOrderer(sim, network, "solo", identity, channel)
        network.register("solo", orderer)
        sink = Sink()
        network.register("sink", sink)
        orderer.attach_receiver("sink")
        return orderer, sink

    def test_cuts_full_blocks(self, env):
        sim, _network, _registry = env
        orderer, sink = self._solo(env)
        for _ in range(10):
            orderer.submit(Envelope.raw("ch0", 100))
        sim.run(until=1.0)
        assert orderer.blocks_created == 2
        assert [b.number for b in sink.blocks] == [0, 1]

    def test_timeout_cut(self, env):
        sim, _network, _registry = env
        orderer, sink = self._solo(env)
        orderer.submit(Envelope.raw("ch0", 100))
        sim.run(until=2.0)
        assert orderer.blocks_created == 1
        assert len(sink.blocks[0].envelopes) == 1

    def test_blocks_chained(self, env):
        sim, _network, _registry = env
        orderer, sink = self._solo(env)
        for _ in range(10):
            orderer.submit(Envelope.raw("ch0", 100))
        sim.run(until=1.0)
        assert sink.blocks[1].header.previous_hash == sink.blocks[0].header.digest()

    def test_blocks_signed(self, env):
        sim, _network, registry = env
        orderer, sink = self._solo(env)
        for _ in range(5):
            orderer.submit(Envelope.raw("ch0", 100))
        sim.run(until=1.0)
        block = sink.blocks[0]
        assert registry.verifier_of("solo").verify(
            block.header.signing_payload(), block.signatures["solo"]
        )

    def test_single_point_of_failure(self, env):
        """The paper's point: the solo orderer has no fault tolerance."""
        sim, _network, _registry = env
        orderer, sink = self._solo(env)
        orderer.crash()
        for _ in range(10):
            orderer.submit(Envelope.raw("ch0", 100))
        sim.run(until=2.0)
        assert sink.blocks == []


class TestKafkaOrderer:
    def _kafka(self, env, orderers=2, brokers=3, max_count=5):
        sim, network, registry = env
        channel = ChannelConfig("ch0", max_message_count=max_count, batch_timeout=0.5)
        cluster = KafkaCluster(sim, network, num_brokers=brokers)
        nodes = []
        sink = Sink()
        network.register("sink", sink)
        for i in range(orderers):
            identity = registry.enroll(f"korderer{i}")
            node = KafkaOrderer(
                sim, network, f"korderer{i}", identity, cluster, channel
            )
            node.attach_receiver("sink")
            nodes.append(node)
        return cluster, nodes, sink

    def test_all_orderers_cut_identical_chains(self, env):
        sim, _n, _r = env
        cluster, nodes, _sink = self._kafka(env)
        for i in range(10):
            nodes[i % 2].submit(Envelope.raw("ch0", 100))
        sim.run(until=2.0)
        assert nodes[0].blocks_created == nodes[1].blocks_created == 2
        assert nodes[0].previous_hash == nodes[1].previous_hash

    def test_timeout_produces_ttc_cut(self, env):
        sim, _n, _r = env
        cluster, nodes, _sink = self._kafka(env)
        nodes[0].submit(Envelope.raw("ch0", 100))
        sim.run(until=3.0)
        assert nodes[0].blocks_created == 1
        assert nodes[1].blocks_created == 1
        assert nodes[0].previous_hash == nodes[1].previous_hash

    def test_leader_broker_crash_tolerated(self, env):
        sim, _n, _r = env
        cluster, nodes, _sink = self._kafka(env)
        for _ in range(5):
            nodes[0].submit(Envelope.raw("ch0", 100))
        sim.run(until=1.0)
        cluster.brokers[cluster.leader_name].crash()
        for _ in range(5):
            nodes[1].submit(Envelope.raw("ch0", 100))
        sim.run(until=3.0)
        assert cluster.leader_elections == 1
        assert nodes[0].blocks_created == 2
        assert nodes[0].previous_hash == nodes[1].previous_hash

    def test_majority_broker_loss_halts(self, env):
        sim, _n, _r = env
        cluster, nodes, _sink = self._kafka(env)
        cluster.brokers["kafka1"].crash()
        cluster.brokers["kafka2"].crash()
        before = nodes[0].blocks_created
        for _ in range(10):
            nodes[0].submit(Envelope.raw("ch0", 100))
        sim.run(until=2.0)
        # alive = 1, majority of original 3 unreachable -> commits
        # require majority of alive (=1) which succeeds; but with 2 of
        # 3 crashed the ensemble is below the original quorum -- our
        # model commits with majority of *alive* brokers, mirroring
        # Kafka's min.insync.replicas=1 degenerate config; the
        # important property is crash (not Byzantine) tolerance.
        assert nodes[0].blocks_created >= before

    def test_byzantine_leader_broker_forks_orderers(self, env):
        """The motivating attack: Kafka's leader is trusted.  A
        Byzantine leader broker sends different records to different
        consumers and the orderers cut conflicting chains -- exactly
        what the BFT ordering service prevents."""
        sim, network, _r = env
        cluster, nodes, _sink = self._kafka(env, max_count=2)

        from repro.fabric.orderers.kafka import Consume

        poison = Envelope.raw("ch0", 66)

        def equivocate(src, dst, payload):
            if (
                isinstance(payload, Consume)
                and src == cluster.leader_name
                and dst == "korderer1"
            ):
                return Consume(payload.offset, poison, 66)
            return payload

        network.add_filter(equivocate)
        for _ in range(4):
            nodes[0].submit(Envelope.raw("ch0", 100))
        sim.run(until=2.0)
        assert nodes[0].blocks_created >= 1
        # the chains have forked: same heights, different hashes
        assert nodes[0].previous_hash != nodes[1].previous_hash
