"""Benchmark harness: one entry point per table/figure of the paper.

- :mod:`repro.bench.model` -- the analytic capacity model (Equation 1
  generalized to every resource bound) with the calibration constants
  for the paper's Dell R410 / Gigabit testbed;
- :mod:`repro.bench.topology` -- LAN and AWS WAN latency models;
- :mod:`repro.bench.workload` -- envelope load generators;
- :mod:`repro.bench.figures` -- the experiments: ``figure6`` through
  ``figure9`` plus the conclusion table and our ablations;
- :mod:`repro.bench.tables` -- ASCII rendering of results.
"""

from repro.bench.model import (
    OrderingCapacityModel,
    SignatureThroughputModel,
    eq1_bound,
)
from repro.bench.topology import (
    AWS_REGIONS,
    aws_latency_model,
    aws_oneway_seconds,
    lan_latency_model,
)
from repro.bench.workload import OpenLoopGenerator, envelope_stream

__all__ = [
    "AWS_REGIONS",
    "OpenLoopGenerator",
    "OrderingCapacityModel",
    "SignatureThroughputModel",
    "aws_latency_model",
    "aws_oneway_seconds",
    "envelope_stream",
    "eq1_bound",
    "lan_latency_model",
]
