"""Statistical comparison of benchmark result documents.

Fuzzbench-style regression gating over the JSON documents that
:mod:`repro.bench.harness` writes: load a stored *baseline*, load a
fresh *candidate*, match (benchmark, matrix point, metric) triples, and
decide per metric whether the candidate regressed.  The rank / U-test /
effect-size kernels live in :mod:`repro.bench.stats`, shared with the
N-way ranking engine (:mod:`repro.bench.report`).

Decision rule, per metric:

1. the median-of-repeats moves in the metric's *bad* direction
   (``direction`` comes from the result document) by more than
   ``tolerance`` (relative) — otherwise the metric is ``ok`` or
   ``improved``;
2. when both sides carry >= ``MIN_SAMPLES_FOR_TEST`` repeats, a
   two-sided Mann-Whitney U test must also reject the no-change null
   (p < ``alpha``), so repeat noise cannot trip the gate;  with fewer
   repeats the median delta alone decides (the deterministic simulator
   makes single-repeat runs bit-stable, so this is still sound).

:func:`gate` maps a report to a process exit code: ``0`` clean,
``1`` at least one regression.  Missing benchmarks/points/metrics in
the candidate are reported as ``missing`` and only fail the gate in
``strict_missing`` mode (matrix subsets — e.g. smoke vs full — are
routine, silently dropped coverage should still be visible).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bench.stats import a12, mann_whitney_u

__all__ = [
    "MIN_SAMPLES_FOR_TEST",
    "DEFAULT_TOLERANCE",
    "DEFAULT_ALPHA",
    "mann_whitney_u",  # re-exported from repro.bench.stats (the shared kernel)
    "MetricComparison",
    "CompareReport",
    "compare_results",
    "gate",
]

#: Minimum per-side repeats before the Mann-Whitney test is consulted.
MIN_SAMPLES_FOR_TEST = 5

#: Default relative tolerance on the median delta (5%).
DEFAULT_TOLERANCE = 0.05

#: Default significance level for the Mann-Whitney test.
DEFAULT_ALPHA = 0.05


@dataclass
class MetricComparison:
    """Verdict for one (benchmark, point, metric) triple."""

    benchmark: str
    params: Dict[str, Any]
    metric: str
    direction: str
    status: str  # "ok" | "improved" | "regression" | "missing"
    baseline_median: Optional[float] = None
    candidate_median: Optional[float] = None
    delta_relative: Optional[float] = None
    p_value: Optional[float] = None
    #: Vargha-Delaney A12 of the candidate sample over the baseline
    #: sample (probability a candidate repeat exceeds a baseline
    #: repeat); only computed when both sides are testable.
    effect_a12: Optional[float] = None
    detail: str = ""
    #: per-phase deltas when both sides carry a ``phases`` breakdown
    #: (``--phases`` runs) and this metric regressed: maps phase label
    #: to ``{"baseline": s, "candidate": s, "delta": s}`` (mean over
    #: repeats), localizing the regression to a protocol phase.
    phase_deltas: Optional[Dict[str, Dict[str, float]]] = None

    def describe(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.params.items()) or "-"
        head = f"{self.status.upper():<10} {self.benchmark}[{params}] {self.metric}"
        if self.status == "missing":
            return f"{head}: {self.detail}"
        delta = (
            "n/a"
            if self.delta_relative is None
            else f"{self.delta_relative * +100:+.1f}%"
        )
        p = "" if self.p_value is None else f", p={self.p_value:.4f}"
        if self.effect_a12 is not None:
            p += f", A12={self.effect_a12:.2f}"
        line = (
            f"{head}: {self.baseline_median:.6g} -> "
            f"{self.candidate_median:.6g} ({delta}{p}, {self.direction} is better)"
        )
        if self.phase_deltas:
            worst = sorted(
                self.phase_deltas.items(),
                key=lambda item: abs(item[1]["delta"]),
                reverse=True,
            )[:3]
            moved = "; ".join(
                f"{label} {entry['baseline'] * 1e3:.3f}ms -> "
                f"{entry['candidate'] * 1e3:.3f}ms"
                for label, entry in worst
            )
            line += f"\n             phases most moved: {moved}"
        return line


@dataclass
class CompareReport:
    """All verdicts of one baseline/candidate comparison."""

    baseline_name: str
    candidate_name: str
    tolerance: float
    alpha: float
    comparisons: List[MetricComparison] = field(default_factory=list)

    def by_status(self, status: str) -> List[MetricComparison]:
        return [c for c in self.comparisons if c.status == status]

    @property
    def regressions(self) -> List[MetricComparison]:
        return self.by_status("regression")

    @property
    def missing(self) -> List[MetricComparison]:
        return self.by_status("missing")

    def summary_counts(self) -> Dict[str, int]:
        counts = {"ok": 0, "improved": 0, "regression": 0, "missing": 0}
        for comparison in self.comparisons:
            counts[comparison.status] += 1
        return counts

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro-bench-compare/1",
            "baseline": self.baseline_name,
            "candidate": self.candidate_name,
            "tolerance": self.tolerance,
            "alpha": self.alpha,
            "counts": self.summary_counts(),
            "comparisons": [
                {
                    "benchmark": c.benchmark,
                    "params": c.params,
                    "metric": c.metric,
                    "direction": c.direction,
                    "status": c.status,
                    "baseline_median": c.baseline_median,
                    "candidate_median": c.candidate_median,
                    "delta_relative": c.delta_relative,
                    "p_value": c.p_value,
                    "effect_a12": c.effect_a12,
                    "detail": c.detail,
                    "phase_deltas": c.phase_deltas,
                }
                for c in self.comparisons
            ],
        }

    def render(self) -> str:
        counts = self.summary_counts()
        lines = [
            f"bench-compare: baseline={self.baseline_name} "
            f"candidate={self.candidate_name} "
            f"tolerance={self.tolerance:.1%} alpha={self.alpha}",
            f"  {counts['ok']} ok, {counts['improved']} improved, "
            f"{counts['regression']} regressions, {counts['missing']} missing",
        ]
        for comparison in self.comparisons:
            if comparison.status != "ok":
                lines.append("  " + comparison.describe())
        return "\n".join(lines)


def _point_key(params: Mapping[str, Any]) -> Tuple:
    return tuple(sorted((k, repr(v)) for k, v in params.items()))


def _index_points(document: Mapping[str, Any]) -> Dict[str, Dict[Tuple, Mapping]]:
    index: Dict[str, Dict[Tuple, Mapping]] = {}
    for bench in document["benchmarks"]:
        points = index.setdefault(bench["benchmark"], {})
        for point in bench["points"]:
            points[_point_key(point["params"])] = point
    return index


def _finite(values: Sequence[Optional[float]]) -> List[float]:
    return [v for v in values if isinstance(v, (int, float)) and math.isfinite(v)]


def compare_results(
    baseline: Mapping[str, Any],
    candidate: Mapping[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    alpha: float = DEFAULT_ALPHA,
) -> CompareReport:
    """Compare two validated result documents (baseline perspective:
    every baseline triple must appear in the candidate or is reported
    ``missing``; extra candidate coverage is ignored)."""
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    report = CompareReport(
        baseline_name=baseline.get("run_name", "baseline"),
        candidate_name=candidate.get("run_name", "candidate"),
        tolerance=tolerance,
        alpha=alpha,
    )
    candidate_index = _index_points(candidate)
    for bench in baseline["benchmarks"]:
        name = bench["benchmark"]
        cand_points = candidate_index.get(name)
        for point in bench["points"]:
            params = dict(point["params"])
            key = _point_key(params)
            cand_point = None if cand_points is None else cand_points.get(key)
            for metric, summary in point["metrics"].items():
                direction = summary["direction"]
                if cand_point is None or metric not in cand_point["metrics"]:
                    why = (
                        "benchmark absent from candidate"
                        if cand_points is None
                        else "matrix point absent from candidate"
                        if cand_point is None
                        else "metric absent from candidate"
                    )
                    report.comparisons.append(
                        MetricComparison(
                            benchmark=name,
                            params=params,
                            metric=metric,
                            direction=direction,
                            status="missing",
                            detail=why,
                        )
                    )
                    continue
                cand_summary = cand_point["metrics"][metric]
                # a metric may declare its own (wider) tolerance in the
                # result document -- wall-clock metrics like the
                # kernel_speed benchmark's sim-seconds-per-wall-second
                # are real-time measurements that legitimately wobble
                # far more than the bit-deterministic simulator metrics
                declared = summary.get("tolerance")
                effective = (
                    max(tolerance, declared)
                    if isinstance(declared, (int, float))
                    else tolerance
                )
                comparison = _compare_metric(
                    name, params, metric, summary, cand_summary,
                    effective, alpha,
                )
                if comparison.status == "regression":
                    comparison.phase_deltas = _phase_deltas(point, cand_point)
                report.comparisons.append(comparison)
    return report


def _phase_deltas(
    base_point: Mapping[str, Any], cand_point: Mapping[str, Any]
) -> Optional[Dict[str, Dict[str, float]]]:
    """Mean per-phase movement between two points that both carry a
    ``phases`` breakdown (``--phases`` runs); None otherwise."""
    base_phases = base_point.get("phases")
    cand_phases = cand_point.get("phases")
    if not base_phases or not cand_phases:
        return None
    deltas: Dict[str, Dict[str, float]] = {}
    for label in base_phases:
        base_values = _finite(base_phases[label])
        cand_values = _finite(cand_phases.get(label, []))
        if not base_values or not cand_values:
            continue
        base_mean = sum(base_values) / len(base_values)
        cand_mean = sum(cand_values) / len(cand_values)
        deltas[label] = {
            "baseline": base_mean,
            "candidate": cand_mean,
            "delta": cand_mean - base_mean,
        }
    return deltas or None


def _compare_metric(
    benchmark: str,
    params: Dict[str, Any],
    metric: str,
    base: Mapping[str, Any],
    cand: Mapping[str, Any],
    tolerance: float,
    alpha: float,
) -> MetricComparison:
    direction = base["direction"]
    base_median = base["median"]
    cand_median = cand["median"]
    result = MetricComparison(
        benchmark=benchmark,
        params=params,
        metric=metric,
        direction=direction,
        status="ok",
        baseline_median=base_median,
        candidate_median=cand_median,
    )
    if base_median is None or cand_median is None:
        result.status = "missing"
        result.detail = "median is null (non-finite measurement)"
        return result
    if base_median == 0:
        delta = 0.0 if cand_median == 0 else math.inf
    else:
        delta = (cand_median - base_median) / abs(base_median)
    result.delta_relative = delta if math.isfinite(delta) else None

    worse = delta > tolerance if direction == "lower" else delta < -tolerance
    better = delta < -tolerance if direction == "lower" else delta > tolerance

    base_values = _finite(base["values"])
    cand_values = _finite(cand["values"])
    testable = (
        len(base_values) >= MIN_SAMPLES_FOR_TEST
        and len(cand_values) >= MIN_SAMPLES_FOR_TEST
    )
    if testable:
        _, p_value = mann_whitney_u(base_values, cand_values)
        result.p_value = p_value
        result.effect_a12 = a12(cand_values, base_values)
        if worse and p_value >= alpha:
            # the median moved, but the distributions are not
            # distinguishable: treat as noise
            worse = False
            result.detail = "median delta beyond tolerance but p >= alpha"
        if better and p_value >= alpha:
            better = False

    if worse:
        result.status = "regression"
        result.detail = result.detail or (
            f"median moved {delta:+.1%} in the bad direction "
            f"(tolerance {tolerance:.1%})"
        )
    elif better:
        result.status = "improved"
    return result


def gate(report: CompareReport, strict_missing: bool = False) -> int:
    """Process exit code for a comparison report."""
    if report.regressions:
        return 1
    if strict_missing and report.missing:
        return 1
    return 0
