"""Measurement instruments for simulated experiments.

These mirror what the paper measures: throughput at the leader ordering
node (transactions and blocks per second) and client-observed latency
percentiles at each frontend.  The module-level helpers
(:func:`percentile_of_sorted`, :func:`sample_stdev`, :func:`summarize`)
are shared with the benchmark harness (:mod:`repro.bench.harness`),
which records per-repeat metric samples through these instruments and
emits the same summary statistics into its JSON result schema.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, List, Optional, Sequence


def percentile_of_sorted(data: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile of an already-sorted sample.

    ``p`` is in [0, 100].  Empty input yields NaN; a single sample is
    every percentile of itself.
    """
    if not 0.0 <= p <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    if not data:
        return math.nan
    if len(data) == 1:
        return data[0]
    rank = (p / 100.0) * (len(data) - 1)
    low = int(rank)
    high = min(low + 1, len(data) - 1)
    frac = rank - low
    return data[low] * (1.0 - frac) + data[high] * frac


def sample_stdev(data: Sequence[float], mean: Optional[float] = None) -> float:
    """Bessel-corrected sample standard deviation; NaN below 2 samples."""
    n = len(data)
    if n < 2:
        return math.nan
    if mean is None:
        mean = sum(data) / n
    return math.sqrt(sum((x - mean) ** 2 for x in data) / (n - 1))


def summarize(samples: Iterable[float]) -> Dict[str, float]:
    """Summary statistics over a sample set.

    The keys are the per-metric statistics of the benchmark result
    schema: count, mean, median, p95, stdev, min, max.
    """
    data = sorted(samples)
    n = len(data)
    if n == 0:
        mean = math.nan
    else:
        mean = sum(data) / n
    return {
        "count": float(n),
        "mean": mean,
        "median": percentile_of_sorted(data, 50.0),
        "p95": percentile_of_sorted(data, 95.0),
        "stdev": sample_stdev(data, mean if n else None),
        "min": data[0] if data else math.nan,
        "max": data[-1] if data else math.nan,
    }


class Counter:
    """A monotonically increasing event counter."""

    def __init__(self, name: str = "counter"):
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class LatencyRecorder:
    """Collects individual latency samples; reports percentiles.

    Samples are appended in O(1) and kept in *insertion order*; the
    sorted view needed by percentile queries is a separate cached list,
    rebuilt lazily on the first query after an insertion.  (An earlier
    revision sorted ``_samples`` in place, which destroyed arrival
    order and made order-sensitive statistics depend on whether a
    percentile had been queried mid-run -- see
    ``tests/test_sim_monitor.py``.)
    """

    def __init__(self, name: str = "latency"):
        self.name = name
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None
        self._sum = 0.0

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)
        self._sorted = None  # invalidate the cached sorted view
        self._sum += seconds

    def reset(self) -> None:
        """Discard all samples (used to trim experiment warm-up)."""
        self._samples = []
        self._sorted = None
        self._sum = 0.0

    def extend(self, samples: Iterable[float]) -> None:
        for sample in samples:
            self.record(sample)

    @property
    def samples(self) -> List[float]:
        """The raw samples, in insertion (arrival) order."""
        return list(self._samples)

    def _sorted_samples(self) -> List[float]:
        cached = self._sorted
        if cached is None:
            cached = self._sorted = sorted(self._samples)
        return cached

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        return self._sum / len(self._samples) if self._samples else math.nan

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, ``p`` in [0, 100]."""
        return percentile_of_sorted(self._sorted_samples(), p)

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    @property
    def p90(self) -> float:
        return self.percentile(90.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def stdev(self) -> float:
        # summed over the sorted view so the float accumulation order
        # is stable regardless of sample arrival order / query history
        return sample_stdev(
            self._sorted_samples(), self.mean if self._samples else None
        )

    @property
    def minimum(self) -> float:
        data = self._sorted_samples()
        return data[0] if data else math.nan

    @property
    def maximum(self) -> float:
        data = self._sorted_samples()
        return data[-1] if data else math.nan

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "median": self.median,
            "p90": self.p90,
            "p95": self.p95,
            "stdev": self.stdev,
            "min": self.minimum,
            "max": self.maximum,
        }


class ThroughputMeter:
    """Counts weighted events over time and reports rates.

    ``record(t, n)`` registers ``n`` events at simulated time ``t``.
    ``rate(start, end)`` gives events/second over a window, allowing
    warm-up trimming exactly like the paper's 5-minute runs.
    """

    def __init__(self, name: str = "throughput"):
        self.name = name
        self._times: List[float] = []
        self._weights: List[float] = []
        self.total = 0.0

    def record(self, time: float, count: float = 1.0) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError("throughput samples must be recorded in time order")
        self._times.append(time)
        self._weights.append(count)
        self.total += count

    def rate(self, start: Optional[float] = None, end: Optional[float] = None) -> float:
        """Events per second within ``[start, end]``."""
        times = self._times
        if not times:
            return 0.0
        start = times[0] if start is None else start
        end = times[-1] if end is None else end
        if end <= start:
            return 0.0
        # times are recorded in ascending order, so the window is a
        # contiguous slice; bisect + slice-sum keeps the exact same
        # left-to-right float accumulation as a full linear scan
        lo = bisect_left(times, start)
        hi = bisect_right(times, end)
        return sum(self._weights[lo:hi]) / (end - start)

    @property
    def first_time(self) -> Optional[float]:
        return self._times[0] if self._times else None

    @property
    def last_time(self) -> Optional[float]:
        return self._times[-1] if self._times else None


class StatsRegistry:
    """A named bag of instruments shared by an experiment's components."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._latencies: Dict[str, LatencyRecorder] = {}
        self._meters: Dict[str, ThroughputMeter] = {}

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter(name))

    def latency(self, name: str) -> LatencyRecorder:
        return self._latencies.setdefault(name, LatencyRecorder(name))

    def meter(self, name: str) -> ThroughputMeter:
        return self._meters.setdefault(name, ThroughputMeter(name))

    def summary(self) -> Dict[str, Dict[str, float]]:
        report: Dict[str, Dict[str, float]] = {}
        for name, counter in sorted(self._counters.items()):
            report[name] = {"count": float(counter.value)}
        for name, recorder in sorted(self._latencies.items()):
            report[name] = recorder.summary()
        for name, meter in sorted(self._meters.items()):
            report[name] = {"total": meter.total, "rate": meter.rate()}
        return report
