"""The SmartBFT-style ordering node (arXiv:2107.06922, simplified).

One class plays both roles that the paper's service splits between a
BFT-SMaRt replica and its ordering-node application: consensus runs
directly *on blocks*.

Protocol (PBFT-shaped, one in-flight instance):

1. clients (frontends) submit requests to any node; non-leaders
   forward them to the current leader;
2. the leader runs the shared :class:`BlockCutter` and pre-prepares the
   next block (sequence number, channel position, batch);
3. every node prepares (hash echo), and -- once a quorum prepared --
   signs the block header and broadcasts the signature as its COMMIT
   vote;
4. ``2f+1`` valid COMMIT signatures decide the block; the collected
   votes *are* the block's signature quorum, and each subscribed
   frontend receives exactly one copy.

Leader rotation: the leader heartbeats (signed); followers suspect it
on heartbeat timeout or when a forwarded request is not committed in
time (censorship).  ``f+1`` suspicions amplify; ``2f+1`` signed
VIEW-CHANGE votes let the next leader install the view.  A deposed
leader suspected by ``f+1`` distinct voters is blacklisted for
``blacklist_window`` views and skipped by the rotation.  Prepared
certificates carried in VIEW-CHANGE votes are re-proposed by the new
leader, which preserves safety across views exactly as in PBFT.

Fault-injection surface mirrors :class:`repro.smart.replica.ServiceReplica`
(``crash``/``recover``/``faults``/``view``/``log``), so the explorer,
injector and invariant checkers drive both backends unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.crypto.keys import Identity, KeyRegistry
from repro.fabric.api import BlockDelivery
from repro.fabric.block import (
    GENESIS_PREVIOUS_HASH,
    Block,
    BlockHeader,
    compute_data_hash,
)
from repro.fabric.channel import ChannelConfig
from repro.fabric.envelope import Envelope
from repro.ordering.blockcutter import BlockCutter
from repro.sim.core import Simulator
from repro.sim.cpu import CPU, ThreadPool
from repro.sim.monitor import StatsRegistry
from repro.sim.network import Network
from repro.smart.durability import OperationLog
from repro.smart.messages import ClientRequest
from repro.smart.replica import FaultControls
from repro.smart.view import View, one_correct_size
from repro.smart2.messages import (
    BlockPull,
    BlockPush,
    Commit,
    Forward,
    Heartbeat,
    NewView,
    Preprepare,
    Prepare,
    Subscribe,
    ViewChange,
)

#: Decided blocks served per catch-up reply (the puller re-pulls).
CATCHUP_BATCH = 64


def preprepare_payload(view_number: int, seq: int, header_digest: bytes) -> bytes:
    """What the leader signs over a pre-prepare."""
    from repro.crypto.hashing import sha256

    return sha256("smart2-preprepare", view_number, seq, header_digest)


@dataclass
class SmartFaultControls(FaultControls):
    """Byzantine switches of a SmartBFT node.

    Adds leader-side *censorship* to the shared controls: a censoring
    leader silently drops requests (direct or forwarded) from the
    client ids in ``censor_clients``.
    """

    censor_clients: Set[int] = field(default_factory=set)

    def any_active(self) -> bool:
        return bool(self.censor_clients) or super().any_active()

    def reset(self) -> None:
        super().reset()
        self.censor_clients = set()


@dataclass
class _ChainState:
    """Per-channel block chain position (tiny, like the paper's §5.2)."""

    cutter: BlockCutter
    next_number: int = 0
    previous_hash: bytes = GENESIS_PREVIOUS_HASH


@dataclass
class _Round:
    """Consensus state for one sequence number in the current view."""

    preprepare: Optional[Preprepare] = None
    header: Optional[BlockHeader] = None
    #: header digest -> distinct prepare voters
    prepares: Dict[bytes, Set[int]] = field(default_factory=dict)
    #: header digest -> {voter: header signature}
    commits: Dict[bytes, Dict[int, bytes]] = field(default_factory=dict)
    prepared: bool = False
    prepared_voters: Tuple[int, ...] = ()
    committed: bool = False


@dataclass
class _Decision:
    """One decided block, with its quorum signatures and raw batch."""

    seq: int
    channel_id: str
    block: Block
    batch: List[ClientRequest]


class SmartBFTNode:
    """One member of the SmartBFT-style ordering cluster."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        replica_id: int,
        name: str,
        identity: Identity,
        registry: KeyRegistry,
        membership: View,
        channels: Dict[str, ChannelConfig],
        peer_names: Dict[int, str],
        log: Optional[OperationLog] = None,
        cpu: Optional[CPU] = None,
        signing_workers: int = 16,
        sign_cost: Optional[float] = None,
        stats: Optional[StatsRegistry] = None,
        request_timeout: float = 2.0,
        heartbeat_interval: float = 0.5,
        blacklist_window: Optional[int] = None,
    ):
        self.sim = sim
        self.network = network
        self.replica_id = replica_id
        self.name = name
        self.identity = identity
        self.registry = registry
        #: the replica-group membership (``view`` by injector convention;
        #: the *view number* of the rotation protocol is ``view_number``)
        self.view = membership
        self.view_number = 0
        self.peer_names = dict(peer_names)
        self.log = log if log is not None else OperationLog()
        self.cpu = cpu
        self.signing_pool = ThreadPool(cpu, signing_workers) if cpu else None
        self.sign_cost = (
            sign_cost if sign_cost is not None else identity.signer.sign_cost
        )
        self.stats = stats
        self.request_timeout = request_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = max(heartbeat_interval * 4, request_timeout)
        self.blacklist_window = (
            blacklist_window if blacklist_window is not None else membership.n
        )
        self.faults = SmartFaultControls()
        self.crashed = False
        self.obs = None

        self._channels: Dict[str, _ChainState] = {
            channel_id: _ChainState(cutter=BlockCutter(config))
            for channel_id, config in channels.items()
        }
        self._channel_configs = dict(channels)
        self._others: List[int] = [
            p for p in membership.processes if p != replica_id
        ]

        # consensus state
        self._rounds: Dict[int, _Round] = {}
        self.next_commit_seq = 0
        self._proposing_seq: Optional[int] = None
        self._decisions: List[_Decision] = []
        self._committed_ids: Set[Tuple[int, int]] = set()

        # request bookkeeping
        self._pending: Dict[Tuple[int, int], Tuple[ClientRequest, float]] = {}
        self._batch_queue: List[Tuple[str, List[ClientRequest]]] = []
        self._req_by_env: Dict[int, ClientRequest] = {}
        self._leader_seen: Set[Tuple[int, int]] = set()

        # view change state
        self._changing = False
        self._change_started = 0.0
        self._highest_vc_sent = 0
        self._view_changes: Dict[int, Dict[int, ViewChange]] = {}
        self._blacklist: Dict[int, int] = {}
        self._last_new_view: Optional[NewView] = None
        self._last_leader_alive = 0.0
        #: (leader, view) per installed view -- property-test probe
        self.installed_views: List[Tuple[int, int]] = [(self.leader, 0)]
        #: (replica, from_view, until_view) per adopted blacklist entry
        self.blacklist_events: List[Tuple[int, int, int]] = []

        # subscribers: frontend id -> next decision index to send
        self._subscribers: Dict[Any, int] = {}

        # counters
        self.blocks_created = 0
        self.envelopes_processed = 0
        self.view_changes_sent = 0

        self._timer_epoch = 0
        self._cut_epoch = 0
        self._cut_armed: Set[str] = set()
        self._amnesia_pending = False
        self._arm_watchdog()
        if self.is_leader:
            self._arm_heartbeat()

    # ------------------------------------------------------------------
    # leadership and blacklisting
    # ------------------------------------------------------------------
    def _blacklisted(self, pid: int, view_number: int, blacklist=None) -> bool:
        until = (blacklist if blacklist is not None else self._blacklist).get(pid)
        return until is not None and view_number < until

    def leader_for(self, view_number: int, blacklist=None) -> int:
        """Round-robin over the membership, skipping blacklisted nodes.

        Falls back to the raw rotation slot if every member is
        blacklisted (cannot happen with ``f+1``-vote blacklisting and
        at most ``f`` Byzantine nodes, but keeps the function total).
        """
        processes = self.view.processes
        n = len(processes)
        start = view_number % n
        for k in range(n):
            candidate = processes[(start + k) % n]
            if not self._blacklisted(candidate, view_number, blacklist):
                return candidate
        return processes[start]

    @property
    def leader(self) -> int:
        return self.leader_for(self.view_number)

    @property
    def is_leader(self) -> bool:
        return self.leader == self.replica_id and not self._changing

    # ------------------------------------------------------------------
    # wire helpers
    # ------------------------------------------------------------------
    def _send(self, dst: Any, message: Any) -> None:
        if self.faults.mute:
            return
        self.network.send(self.replica_id, dst, message, message.wire_size())

    def _broadcast(self, message: Any) -> None:
        if self.faults.mute:
            return
        self.network.broadcast(
            self.replica_id, self._others, message, message.wire_size()
        )

    def _verifier_of(self, pid: int):
        name = self.peer_names.get(pid)
        if name is None or name not in self.registry:
            return None
        return self.registry.verifier_of(name)

    # ------------------------------------------------------------------
    # crash / recovery (fault-injection surface)
    # ------------------------------------------------------------------
    def crash(self, amnesia: bool = False) -> None:
        if self.crashed:
            return
        self.crashed = True
        self._timer_epoch += 1
        if amnesia:
            self._amnesia_pending = True
        self.network.crash(self.replica_id)

    def recover(self) -> None:
        if not self.crashed:
            return
        self.crashed = False
        self.network.recover(self.replica_id)
        if self._amnesia_pending:
            self._amnesia_pending = False
            self._reset_to_genesis()
        self._timer_epoch += 1
        self._cut_epoch += 1
        self._cut_armed.clear()
        # grace period before suspecting anyone, then resume timers
        self._last_leader_alive = self.sim.now
        self._changing = False
        self._arm_watchdog()
        if self.is_leader:
            self._arm_heartbeat()
        # catch up on decisions (and the latest NewView) from the peers
        self._broadcast(BlockPull(sender=self.replica_id, from_seq=self.next_commit_seq))

    def _reset_to_genesis(self) -> None:
        """Amnesiac restart: drop volatile state, rejoin via catch-up.

        The rebuilt history comes from peers' signed decisions (state
        transfer), so the durable log is cleared and regrows in commit
        order as :class:`BlockPush` catch-up re-applies each decision.
        """
        self._channels = {
            channel_id: _ChainState(cutter=BlockCutter(config))
            for channel_id, config in self._channel_configs.items()
        }
        self._rounds = {}
        self.next_commit_seq = 0
        self._proposing_seq = None
        self._decisions = []
        self._committed_ids = set()
        self._pending = {}
        self._batch_queue = []
        self._req_by_env = {}
        self._leader_seen = set()
        self._view_changes = {}
        self._subscribers = {}
        self.log.clear()

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------
    def deliver(self, src: Any, message: Any) -> None:
        if self.crashed:
            return
        kind = message.__class__
        if kind is ClientRequest:
            self._on_request(message, forwarded=False)
        elif kind is Forward:
            self._on_request(message.request, forwarded=True)
        elif kind is Preprepare:
            self.on_preprepare(src, message)
        elif kind is Prepare:
            self._on_prepare(src, message)
        elif kind is Commit:
            self.on_commit(src, message)
        elif kind is Heartbeat:
            self.on_heartbeat(src, message)
        elif kind is ViewChange:
            self.on_viewchange(src, message)
        elif kind is NewView:
            self.on_newview(src, message)
        elif kind is BlockPull:
            self._on_blockpull(src, message)
        elif kind is BlockPush:
            self.on_blockpush(src, message)
        elif kind is Subscribe:
            self._on_subscribe(src, message)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def _on_request(self, request: ClientRequest, forwarded: bool) -> None:
        if self.faults.censor_clients and request.client_id in self.faults.censor_clients:
            return  # Byzantine leader-side censorship
        rid = request.request_id
        if rid in self._committed_ids:
            return
        if rid not in self._pending:
            self._pending[rid] = (request, self.sim.now)
        if self.is_leader:
            self._leader_ingest(request)
        elif not forwarded:
            self._send(self.leader, Forward(sender=self.replica_id, request=request))

    def _leader_ingest(self, request: ClientRequest) -> None:
        rid = request.request_id
        if rid in self._committed_ids or rid in self._leader_seen:
            return
        envelope = request.operation
        if not isinstance(envelope, Envelope):
            return
        state = self._channels.get(envelope.channel_id)
        if state is None:
            return
        self._leader_seen.add(rid)
        self._req_by_env[envelope.envelope_id] = request
        self.envelopes_processed += 1
        batches = state.cutter.ordered(envelope)
        for batch in batches:
            self._enqueue_batch(envelope.channel_id, batch)
        if len(state.cutter) > 0:
            self._arm_cut_timer(envelope.channel_id)
        self._maybe_propose()

    def _enqueue_batch(self, channel_id: str, batch: List[Envelope]) -> None:
        if not batch:
            return
        requests = [self._req_by_env.pop(e.envelope_id) for e in batch]
        self._batch_queue.append((channel_id, requests))

    def _arm_cut_timer(self, channel_id: str) -> None:
        if channel_id in self._cut_armed:
            return
        self._cut_armed.add(channel_id)
        config = self._channel_configs[channel_id]
        self.sim.schedule(
            config.batch_timeout, self._timeout_cut, channel_id, self._cut_epoch
        )

    def _timeout_cut(self, channel_id: str, epoch: int) -> None:
        if epoch != self._cut_epoch or self.crashed:
            return
        self._cut_armed.discard(channel_id)
        if not self.is_leader:
            return
        state = self._channels[channel_id]
        if len(state.cutter) > 0:
            self._enqueue_batch(channel_id, state.cutter.cut())
            self._maybe_propose()

    # ------------------------------------------------------------------
    # consensus: propose
    # ------------------------------------------------------------------
    def _maybe_propose(self) -> None:
        if (
            self.crashed
            or self._changing
            or not self.is_leader
            or self._proposing_seq is not None
            or not self._batch_queue
        ):
            return
        channel_id, batch = self._batch_queue.pop(0)
        self._propose(channel_id, batch)

    def _propose(self, channel_id: str, batch: List[ClientRequest]) -> None:
        seq = self.next_commit_seq
        state = self._channels[channel_id]
        self._proposing_seq = seq
        message = Preprepare(
            sender=self.replica_id,
            view_number=self.view_number,
            seq=seq,
            channel_id=channel_id,
            number=state.next_number,
            previous_hash=state.previous_hash,
            batch=batch,
        )
        header = BlockHeader(
            number=message.number,
            previous_hash=message.previous_hash,
            data_hash=compute_data_hash([r.operation for r in batch]),
        )
        message.signature = self.identity.sign(
            preprepare_payload(message.view_number, seq, header.digest())
        )
        if self.obs is not None:
            self.obs.on_block_cut(
                self.name,
                Block(header=header, envelopes=[r.operation for r in batch],
                      channel_id=channel_id),
                self.sim.now,
            )
        self._broadcast(message)
        self._accept_preprepare(message, header)

    def on_preprepare(self, src: int, msg: Preprepare) -> None:
        if self._changing or msg.view_number != self.view_number:
            return
        if msg.sender != src or src != self.leader_for(self.view_number):
            return
        if msg.seq != self.next_commit_seq:
            if msg.seq > self.next_commit_seq:
                # we are behind: fetch the decided prefix from the leader
                self._send(src, BlockPull(
                    sender=self.replica_id, from_seq=self.next_commit_seq
                ))
            return
        state = self._channels.get(msg.channel_id)
        if state is None:
            return
        if msg.number != state.next_number or msg.previous_hash != state.previous_hash:
            return
        if not msg.batch:
            return
        if any(r.request_id in self._committed_ids for r in msg.batch):
            return  # replayed request: an honest leader never does this
        verifier = self._verifier_of(msg.sender)
        if verifier is None:
            return
        header = BlockHeader(
            number=msg.number,
            previous_hash=msg.previous_hash,
            data_hash=compute_data_hash([r.operation for r in msg.batch]),
        )
        if not verifier.verify(
            preprepare_payload(msg.view_number, msg.seq, header.digest()),
            msg.signature,
        ):
            return
        self._accept_preprepare(msg, header)

    def _accept_preprepare(self, msg: Preprepare, header: BlockHeader) -> None:
        round_ = self._rounds.setdefault(msg.seq, _Round())
        if round_.preprepare is not None:
            return  # already accepted one for this (view, seq)
        round_.preprepare = msg
        round_.header = header
        delay = self.log.log_write(msg.seq, msg.view_number, header.digest())
        prepare = Prepare(
            sender=self.replica_id,
            view_number=msg.view_number,
            seq=msg.seq,
            header_digest=header.digest(),
        )
        if delay > 0:
            self.sim.schedule(delay, self._send_prepare, prepare, self._timer_epoch)
        else:
            self._send_prepare(prepare, self._timer_epoch)

    def _send_prepare(self, prepare: Prepare, epoch: int) -> None:
        if epoch != self._timer_epoch or self.crashed:
            return
        if self._changing or prepare.view_number != self.view_number:
            return
        self._broadcast(prepare)
        self._record_prepare(self.replica_id, prepare)

    def _on_prepare(self, src: int, msg: Prepare) -> None:
        if self._changing or msg.view_number != self.view_number:
            return
        if msg.sender != src:
            return
        self._record_prepare(src, msg)

    def _record_prepare(self, src: int, msg: Prepare) -> None:
        if msg.seq < self.next_commit_seq:
            return
        round_ = self._rounds.setdefault(msg.seq, _Round())
        round_.prepares.setdefault(msg.header_digest, set()).add(src)
        self._maybe_prepared(msg.seq)

    def _maybe_prepared(self, seq: int) -> None:
        round_ = self._rounds.get(seq)
        if (
            round_ is None
            or round_.prepared
            or round_.header is None
        ):
            return
        digest = round_.header.digest()
        voters = round_.prepares.get(digest, set())
        if not self.view.has_quorum(voters):
            return
        round_.prepared = True
        round_.prepared_voters = tuple(sorted(voters))
        delay = self.log.log_accept(seq, self.view_number, digest)
        view_number = self.view_number
        if self.signing_pool is not None and self.sign_cost > 0:
            self.signing_pool.submit(
                self.sign_cost,
                self._sign_and_commit,
                seq,
                view_number,
                digest,
                activity="sign",
            )
        elif delay > 0:
            self.sim.schedule(
                delay, self._sign_and_commit, seq, view_number, digest
            )
        else:
            self._sign_and_commit(seq, view_number, digest)

    def _sign_and_commit(self, seq: int, view_number: int, digest: bytes) -> None:
        if self.crashed or view_number != self.view_number or self._changing:
            return
        signature = self.identity.sign(digest)
        commit = Commit(
            sender=self.replica_id,
            view_number=view_number,
            seq=seq,
            header_digest=digest,
            signature=signature,
        )
        self._broadcast(commit)
        self._record_commit(self.replica_id, commit)

    def on_commit(self, src: int, msg: Commit) -> None:
        if self._changing or msg.view_number != self.view_number:
            return
        if msg.sender != src or msg.seq < self.next_commit_seq:
            return
        verifier = self._verifier_of(src)
        if verifier is None or not verifier.verify(msg.header_digest, msg.signature):
            return
        self._record_commit(src, msg)

    def _record_commit(self, src: int, msg: Commit) -> None:
        round_ = self._rounds.setdefault(msg.seq, _Round())
        round_.commits.setdefault(msg.header_digest, {})[src] = msg.signature
        self._maybe_decide(msg.seq)

    def _maybe_decide(self, seq: int) -> None:
        round_ = self._rounds.get(seq)
        if (
            round_ is None
            or round_.committed
            or round_.header is None
            or round_.preprepare is None
        ):
            return
        digest = round_.header.digest()
        votes = round_.commits.get(digest, {})
        if not self.view.has_quorum(votes.keys()):
            return
        round_.committed = True
        self._apply_ready_decisions()

    def _apply_ready_decisions(self) -> None:
        while True:
            round_ = self._rounds.get(self.next_commit_seq)
            if round_ is None or not round_.committed:
                break
            seq = self.next_commit_seq
            msg = round_.preprepare
            header = round_.header
            digest = header.digest()
            signatures = {
                self.peer_names[voter]: sig
                for voter, sig in sorted(round_.commits.get(digest, {}).items())
                if voter in self.peer_names
            }
            block = Block(
                header=header,
                envelopes=[r.operation for r in msg.batch],
                signatures=signatures,
                channel_id=msg.channel_id,
            )
            del self._rounds[seq]
            self._commit_decision(
                _Decision(seq=seq, channel_id=msg.channel_id, block=block,
                          batch=list(msg.batch))
            )

    def _commit_decision(self, decision: _Decision) -> None:
        """Apply one decided block (from consensus or catch-up)."""
        state = self._channels[decision.channel_id]
        state.next_number = decision.block.header.number + 1
        state.previous_hash = decision.block.header.digest()
        self.log.append(decision.seq, decision.batch)
        self.next_commit_seq = decision.seq + 1
        self._decisions.append(decision)
        self.blocks_created += 1
        for request in decision.batch:
            rid = request.request_id
            self._committed_ids.add(rid)
            self._pending.pop(rid, None)
            self._leader_seen.discard(rid)
        if self._proposing_seq == decision.seq:
            self._proposing_seq = None
        if self.obs is not None:
            self.obs.on_block_signed(
                self.name, decision.block, self.sim.now, self.sim.now
            )
        if self.stats is not None:
            now = self.sim.now
            self.stats.meter(f"{self.name}.blocks").record(now, 1.0)
            self.stats.meter(f"{self.name}.envelopes").record(
                now, float(len(decision.block.envelopes))
            )
        self._push_to_subscribers()
        self._maybe_propose()

    # ------------------------------------------------------------------
    # dissemination: one signed copy per subscriber
    # ------------------------------------------------------------------
    def _push_to_subscribers(self) -> None:
        if self.faults.mute:
            return
        total = len(self._decisions)
        for frontend_id in sorted(self._subscribers, key=repr):
            cursor = self._subscribers[frontend_id]
            while cursor < total:
                decision = self._decisions[cursor]
                delivery = BlockDelivery(block=decision.block, source=self.name)
                self.network.send(
                    self.replica_id, frontend_id, delivery, delivery.wire_size()
                )
                cursor += 1
            self._subscribers[frontend_id] = cursor

    def _on_subscribe(self, src: Any, msg: Subscribe) -> None:
        self._subscribers[src] = min(max(msg.next_seq, 0), len(self._decisions))
        self._push_to_subscribers()

    # ------------------------------------------------------------------
    # heartbeats and failure detection
    # ------------------------------------------------------------------
    def _arm_heartbeat(self) -> None:
        self.sim.schedule(
            self.heartbeat_interval, self._heartbeat_tick, self._timer_epoch
        )

    def _heartbeat_tick(self, epoch: int) -> None:
        if epoch != self._timer_epoch or self.crashed:
            return
        if not self.is_leader:
            return
        beat = Heartbeat(
            sender=self.replica_id,
            view_number=self.view_number,
            seq=self.next_commit_seq,
            signature=b"",
        )
        beat.signature = self.identity.sign(beat.signing_payload())
        self._broadcast(beat)
        self._arm_heartbeat()

    def on_heartbeat(self, src: int, msg: Heartbeat) -> None:
        if msg.sender != src:
            return
        verifier = self._verifier_of(src)
        if verifier is None or not verifier.verify(msg.signing_payload(), msg.signature):
            return
        if msg.view_number == self.view_number and src == self.leader:
            self._last_leader_alive = self.sim.now
        if msg.view_number > self.view_number or msg.seq > self.next_commit_seq:
            # behind on views and/or decisions: pull (the reply also
            # retransmits the latest NewView)
            self._send(src, BlockPull(sender=self.replica_id,
                                      from_seq=self.next_commit_seq))

    def _arm_watchdog(self) -> None:
        self.sim.schedule(
            self.heartbeat_interval, self._watchdog_tick, self._timer_epoch
        )

    def _watchdog_tick(self, epoch: int) -> None:
        if epoch != self._timer_epoch or self.crashed:
            return
        now = self.sim.now
        if not self._changing and not self.is_leader:
            if now - self._last_leader_alive > self.heartbeat_timeout:
                self._suspect("timeout")
            elif self._pending:
                oldest = min(arrived for _req, arrived in self._pending.values())
                if now - oldest > 2 * self.request_timeout:
                    self._suspect("censorship")
                elif now - oldest > self.request_timeout:
                    # retry before escalating: the forward may have been lost
                    for rid in sorted(self._pending):
                        request, _arrived = self._pending[rid]
                        self._send(
                            self.leader,
                            Forward(sender=self.replica_id, request=request),
                        )
        elif self._changing and now - self._change_started > self.heartbeat_timeout:
            # the view change itself stalled (e.g. next leader crashed):
            # escalate to the view after the highest one we voted for
            self._suspect("stalled-change")
        if self.is_leader and self._pending and not self._changing:
            # a leader with pending-but-uncut requests nudges its cutter
            for channel_id in sorted(self._channels):
                if len(self._channels[channel_id].cutter) > 0:
                    self._arm_cut_timer(channel_id)
        self._arm_watchdog()

    # ------------------------------------------------------------------
    # view change
    # ------------------------------------------------------------------
    def _suspect(self, reason: str) -> None:
        if self.crashed:
            return
        target = max(self.view_number, self._highest_vc_sent) + 1
        self._vote_view_change(target, reason)

    def _vote_view_change(self, target: int, reason: str) -> None:
        self._changing = True
        self._change_started = self.sim.now
        self._highest_vc_sent = target
        prepared = None
        round_ = self._rounds.get(self.next_commit_seq)
        if round_ is not None and round_.prepared and round_.preprepare is not None:
            prepared = (round_.preprepare, round_.prepared_voters)
        vote = ViewChange(
            sender=self.replica_id,
            new_view=target,
            last_seq=self.next_commit_seq - 1,
            suspected=self.leader_for(self.view_number),
            reason=reason,
            prepared=prepared,
        )
        vote.signature = self.identity.sign(vote.signing_payload())
        self.view_changes_sent += 1
        self._broadcast(vote)
        self._store_view_change(vote)

    def on_viewchange(self, src: int, msg: ViewChange) -> None:
        if msg.sender != src:
            return
        verifier = self._verifier_of(src)
        if verifier is None or not verifier.verify(msg.signing_payload(), msg.signature):
            return
        if msg.new_view <= self.view_number:
            # stale voter: help it catch up with the latest installed view
            if self._last_new_view is not None:
                self._send(src, self._last_new_view)
            return
        self._store_view_change(msg)

    def _store_view_change(self, msg: ViewChange) -> None:
        votes = self._view_changes.setdefault(msg.new_view, {})
        votes[msg.sender] = msg
        # f+1 amplification: join the highest view change a correct
        # node could be driving, even without local suspicion
        if not self._changing:
            joinable = [
                view
                for view, view_votes in sorted(self._view_changes.items())
                if view > self.view_number
                and len(view_votes) >= one_correct_size(self.view.f)
            ]
            if joinable:
                self._vote_view_change(max(joinable), "amplified")
                return
        self._try_lead(msg.new_view)

    def _blacklist_additions(
        self, votes: Dict[int, ViewChange], new_view: int
    ) -> Dict[int, int]:
        """Ids suspected by at least ``f+1`` distinct voters."""
        counts: Dict[int, int] = {}
        for sender in sorted(votes):
            suspected = votes[sender].suspected
            counts[suspected] = counts.get(suspected, 0) + 1
        threshold = one_correct_size(self.view.f)
        return {
            pid: new_view + self.blacklist_window
            for pid, count in sorted(counts.items())
            if count >= threshold
        }

    def _merged_blacklist(self, additions: Dict[int, int], new_view: int) -> Dict[int, int]:
        merged = {
            pid: until
            for pid, until in sorted(self._blacklist.items())
            if new_view < until
        }
        merged.update(additions)
        return merged

    def _try_lead(self, new_view: int) -> None:
        """Install + announce ``new_view`` if we are its rightful leader."""
        if new_view <= self.view_number:
            return
        votes = self._view_changes.get(new_view, {})
        if not self.view.has_quorum(votes.keys()):
            return
        additions = self._blacklist_additions(votes, new_view)
        merged = self._merged_blacklist(additions, new_view)
        if self.leader_for(new_view, merged) != self.replica_id:
            return
        last_seq = max(votes[sender].last_seq for sender in sorted(votes))
        if last_seq >= self.next_commit_seq:
            # we are missing decided blocks: catch up first, then retry
            # (the catch-up apply loop re-invokes _try_lead)
            best = max(
                sorted(votes),
                key=lambda sender: (votes[sender].last_seq, -sender),
            )
            self._send(best, BlockPull(sender=self.replica_id,
                                       from_seq=self.next_commit_seq))
            return
        proof = tuple(votes[sender] for sender in sorted(votes))
        announcement = NewView(
            sender=self.replica_id,
            new_view=new_view,
            proof=proof,
            blacklist=tuple(sorted(merged.items())),
        )
        announcement.signature = self.identity.sign(announcement.signing_payload())
        self._broadcast(announcement)
        self._install_view(announcement)

    def on_newview(self, src: int, msg: NewView) -> None:
        if msg.sender != src or msg.new_view <= self.view_number:
            return
        verifier = self._verifier_of(src)
        if verifier is None or not verifier.verify(msg.signing_payload(), msg.signature):
            return
        voters = set()
        for vote in msg.proof:
            if vote.new_view != msg.new_view:
                return
            vote_verifier = self._verifier_of(vote.sender)
            if vote_verifier is None or not vote_verifier.verify(
                vote.signing_payload(), vote.signature
            ):
                return
            voters.add(vote.sender)
        if not self.view.has_quorum(voters):
            return
        blacklist = dict(msg.blacklist)
        if self.leader_for(msg.new_view, blacklist) != msg.sender:
            return
        self._install_view(msg)

    def _install_view(self, msg: NewView) -> None:
        previous_blacklist = dict(self._blacklist)
        self.view_number = msg.new_view
        self._blacklist = dict(msg.blacklist)
        for pid, until in sorted(self._blacklist.items()):
            if previous_blacklist.get(pid) != until:
                self.blacklist_events.append((pid, msg.new_view, until))
        self._changing = False
        self._last_new_view = msg
        self._last_leader_alive = self.sim.now
        # restart the per-request censorship clock: the new leader gets
        # a full request_timeout to order what is already pending (else
        # stale arrival times re-trigger suspicion faster than any
        # leader can cut a partial batch, and views churn forever)
        self._pending = {
            rid: (request, self.sim.now)
            for rid, (request, _arrived) in sorted(self._pending.items())
        }
        self._view_changes = {
            view: votes
            for view, votes in sorted(self._view_changes.items())
            if view > msg.new_view
        }
        self._rounds = {}
        self._proposing_seq = None
        self.installed_views.append((msg.sender, msg.new_view))
        # leadership bookkeeping restarts from scratch in the new view
        self._leader_seen = set()
        self._req_by_env = {}
        self._batch_queue = []
        for channel_id in sorted(self._channels):
            state = self._channels[channel_id]
            state.cutter = BlockCutter(self._channel_configs[channel_id])
        self._cut_epoch += 1
        self._cut_armed.clear()
        self._timer_epoch += 1
        self._arm_watchdog()
        if self.is_leader:
            self._arm_heartbeat()
            self._repropose_from_proof(msg)
            for rid in sorted(self._pending):
                request, _arrived = self._pending[rid]
                self._leader_ingest(request)
        else:
            for rid in sorted(self._pending):
                request, _arrived = self._pending[rid]
                self._send(self.leader, Forward(sender=self.replica_id, request=request))

    def _repropose_from_proof(self, msg: NewView) -> None:
        """PBFT value selection: re-propose the highest prepared value."""
        best: Optional[Preprepare] = None
        for vote in sorted(msg.proof, key=lambda v: v.sender):
            if vote.prepared is None:
                continue
            candidate, _voters = vote.prepared
            if candidate.seq != self.next_commit_seq:
                continue
            if best is None or candidate.view_number > best.view_number:
                best = candidate
        if best is not None:
            self._propose(best.channel_id, list(best.batch))

    # ------------------------------------------------------------------
    # catch-up
    # ------------------------------------------------------------------
    def _on_blockpull(self, src: Any, msg: BlockPull) -> None:
        if self._last_new_view is not None:
            self._send(src, self._last_new_view)
        start = max(msg.from_seq, 0)
        if start >= len(self._decisions):
            return
        window = self._decisions[start : start + CATCHUP_BATCH]
        push = BlockPush(
            sender=self.replica_id,
            decisions=tuple(
                (d.seq, d.block, tuple(d.batch)) for d in window
            ),
        )
        self._send(src, push)

    def on_blockpush(self, src: int, msg: BlockPush) -> None:
        from repro.fabric.blockpolicy import count_valid_signatures

        progressed = False
        for seq, block, batch in msg.decisions:
            if seq != self.next_commit_seq:
                continue
            state = self._channels.get(block.channel_id)
            if state is None:
                continue
            if (
                block.header.number != state.next_number
                or block.header.previous_hash != state.previous_hash
            ):
                continue
            if not block.verify_data():
                continue
            signers = [
                pid
                for pid, name in sorted(self.peer_names.items())
                if name in block.signatures
            ]
            if not self.view.has_quorum(signers):
                continue
            if count_valid_signatures(
                block, self.registry, set(self.peer_names.values())
            ) < len(signers):
                continue
            self._commit_decision(
                _Decision(
                    seq=seq,
                    channel_id=block.channel_id,
                    block=block,
                    batch=list(batch),
                )
            )
            progressed = True
        if progressed:
            # newly caught up: a pending view change may now be ours to
            # lead, and the pusher may hold more decisions
            for view in sorted(self._view_changes):
                self._try_lead(view)
            if len(msg.decisions) == CATCHUP_BATCH:
                self._send(src, BlockPull(sender=self.replica_id,
                                          from_seq=self.next_commit_seq))
