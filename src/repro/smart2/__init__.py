"""SmartBFT-style ordering backend (successor design, arXiv:2107.06922).

The key departure from the paper's BFT-SMaRt service (``repro.smart`` +
``repro.ordering``): consensus runs *on blocks*, every node cuts and
signs the block being agreed on, and a decided block travels to each
frontend exactly once carrying a ``2f+1`` signature quorum -- instead
of every node pushing its own full copy and the frontend matching
``2f+1`` of them.  See ``docs/SMARTBFT.md`` for the full design and the
bandwidth bake-off against the paper's service.
"""

from repro.smart2.deployment import SmartBFTService, build_smartbft_service
from repro.smart2.frontend import QuorumFrontend
from repro.smart2.node import SmartBFTNode

__all__ = [
    "SmartBFTNode",
    "QuorumFrontend",
    "SmartBFTService",
    "build_smartbft_service",
]
