"""The open-loop workload engine.

Drives any number of tenants -- each an aggregate arrival process plus
an application profile standing in for up to millions of client
sessions -- against a set of ordering frontends, open loop: arrivals
never wait for completions, so overload is *visible* instead of being
absorbed by a closed feedback loop.

State is strictly O(tenants) + O(in-flight): one timer, one RNG stream
and one stats record per tenant, one pending-latency entry per admitted
envelope (bounded by the admission window when backpressure is on).
Nothing is allocated per session, ever.

The engine is also the measurement instrument: it records offered /
admitted / rejected-by-reason / committed counts and admitted latency
per tenant, and renders them as a :class:`WorkloadReport` (goodput,
tail latency, Jain fairness) -- the numbers the ``overload`` benchmark
gates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.ordering.admission import jain_fairness
from repro.sim.core import Simulator
from repro.sim.randomness import RandomStreams
from repro.workload.arrivals import ArrivalProcess, make_arrivals
from repro.workload.profiles import ApplicationProfile, RawProfile

#: default pinned-envelope-id block per tenant: tenant i allocates ids
#: [base + i*stride, base + (i+1)*stride) -- far above any workload the
#: explorer pins ids 0..envelopes for
DEFAULT_ID_BASE = 10_000_000
DEFAULT_ID_STRIDE = 1_000_000


@dataclass
class TenantSpec:
    """One tenant: an aggregate of ``sessions`` lightweight clients.

    ``sessions * session_rate`` is the tenant's aggregate offered rate;
    the tenant is simulated as ONE arrival process at that rate (see
    :mod:`repro.workload.arrivals`), so a million sessions cost the
    same as one.
    """

    name: str
    sessions: int = 1
    session_rate: float = 1.0
    #: arrival kind ("fixed"/"poisson"/"bursty"/"diurnal") or a
    #: pre-built process (its rate overrides sessions*session_rate)
    arrival: Union[str, ArrivalProcess] = "poisson"
    profile: ApplicationProfile = field(default_factory=RawProfile)
    #: fixed frontend, or None for round-robin over all of them
    frontend_index: Optional[int] = None
    #: submission window, relative to engine start
    start: float = 0.0
    duration: Optional[float] = None
    #: RandomStreams stream name (default "workload/<name>")
    stream: Optional[str] = None

    @property
    def offered_rate(self) -> float:
        if isinstance(self.arrival, ArrivalProcess):
            return self.arrival.rate
        return self.sessions * self.session_rate


@dataclass
class TenantStats:
    """Submission accounting for one tenant (cheap counters only)."""

    offered: int = 0
    admitted: int = 0
    committed: int = 0
    rejected: Dict[str, int] = field(default_factory=dict)
    latencies: List[float] = field(default_factory=list)

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())


class _TenantState:
    """Runtime state of one tenant -- O(1) regardless of sessions."""

    __slots__ = (
        "spec", "arrival", "rng", "stats", "deadline", "next_id", "last_id"
    )

    def __init__(self, spec, arrival, rng, deadline, next_id):
        self.spec = spec
        self.arrival = arrival
        self.rng = rng
        self.stats = TenantStats()
        self.deadline = deadline
        self.next_id = next_id  # None = process-global envelope ids
        self.last_id = None


@dataclass
class WorkloadReport:
    """Aggregate view of one engine run."""

    duration: float
    offered: int
    admitted: int
    committed: int
    rejected: Dict[str, int]
    goodput_per_s: float
    p50_latency_s: float
    p99_latency_s: float
    fairness: float
    shed_fraction: float
    per_tenant: Dict[str, TenantStats]

    def as_dict(self) -> Dict[str, float]:
        return {
            "offered": float(self.offered),
            "admitted": float(self.admitted),
            "committed": float(self.committed),
            "rejected": float(sum(self.rejected.values())),
            "goodput_per_s": self.goodput_per_s,
            "p50_latency_s": self.p50_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "fairness": self.fairness,
            "shed_fraction": self.shed_fraction,
        }


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(int(fraction * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


class WorkloadEngine:
    """Drives tenants against frontends; one timer chain per tenant."""

    def __init__(
        self,
        sim: Simulator,
        frontends: Sequence,
        tenants: Sequence[TenantSpec],
        streams: Optional[RandomStreams] = None,
        duration: float = 1.0,
        track_latency: bool = True,
        pin_envelope_ids: bool = False,
        id_base: int = DEFAULT_ID_BASE,
        id_stride: int = DEFAULT_ID_STRIDE,
        max_latency_samples: int = 100_000,
    ):
        if not tenants:
            raise ValueError("need at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        self.sim = sim
        self.frontends = list(frontends)
        self.streams = streams or RandomStreams(0)
        self.duration = duration
        self.track_latency = track_latency
        self.max_latency_samples = max_latency_samples
        self._stopped = False
        self._started_at: Optional[float] = None
        #: envelope_id -> (tenant state, submit time); O(in-flight)
        self._pending: Dict[int, tuple] = {}
        self._states: List[_TenantState] = []
        for index, spec in enumerate(tenants):
            if isinstance(spec.arrival, ArrivalProcess):
                arrival = spec.arrival
            else:
                rate = spec.offered_rate
                if rate <= 0:
                    raise ValueError(f"tenant {spec.name!r}: rate must be positive")
                arrival = make_arrivals(spec.arrival, rate)
            rng = self.streams.stream(spec.stream or f"workload/{spec.name}")
            next_id = id_base + index * id_stride if pin_envelope_ids else None
            self._states.append(_TenantState(spec, arrival, rng, 0.0, next_id))

    # ------------------------------------------------------------------
    @property
    def stats(self) -> Dict[str, TenantStats]:
        return {state.spec.name: state.stats for state in self._states}

    @property
    def offered(self) -> int:
        return sum(state.stats.offered for state in self._states)

    @property
    def admitted(self) -> int:
        return sum(state.stats.admitted for state in self._states)

    @property
    def committed(self) -> int:
        return sum(state.stats.committed for state in self._states)

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._started_at = self.sim.now
        if self.track_latency:
            for frontend in self.frontends:
                frontend.on_block.append(self._on_block)
        for state in self._states:
            spec = state.spec
            window = spec.duration if spec.duration is not None else self.duration
            state.deadline = self.sim.now + spec.start + window
            if spec.start > 0:
                self.sim.post(spec.start, self._tick, state)
            else:
                self.sim.call_soon(self._tick, state)

    def stop(self) -> None:
        self._stopped = True

    # ------------------------------------------------------------------
    def _tick(self, state: _TenantState) -> None:
        if self._stopped or self.sim.now > state.deadline:
            return
        spec = state.spec
        stats = state.stats
        envelope = spec.profile.make(state.rng, spec.name, state.next_id)
        if state.next_id is not None:
            # duplicates reuse an id; only fresh identities advance it
            if envelope.envelope_id == state.next_id:
                state.next_id += 1
        if spec.frontend_index is not None:
            frontend = self.frontends[spec.frontend_index % len(self.frontends)]
        else:
            frontend = self.frontends[stats.offered % len(self.frontends)]
        stats.offered += 1
        verdict = frontend.submit(envelope)
        if verdict is None:
            stats.admitted += 1
            if self.track_latency:
                self._pending[envelope.envelope_id] = (state, self.sim.now)
        else:
            stats.rejected[verdict.reason] = (
                stats.rejected.get(verdict.reason, 0) + 1
            )
        self.sim.post(state.arrival.next_delay(state.rng, self.sim.now), self._tick, state)

    def _on_block(self, block) -> None:
        if not self._pending:
            return
        for envelope in block.envelopes:
            entry = self._pending.pop(envelope.envelope_id, None)
            if entry is None:
                continue
            state, submitted_at = entry
            state.stats.committed += 1
            if len(state.stats.latencies) < self.max_latency_samples:
                state.stats.latencies.append(self.sim.now - submitted_at)

    # ------------------------------------------------------------------
    def report(self, honest_only_fairness: bool = False) -> WorkloadReport:
        """Aggregate the run (call after draining the simulator).

        ``honest_only_fairness`` drops tenants whose profile module is
        :mod:`repro.workload.adversarial` from the fairness index, to
        measure what the abuse did to everyone *else*.
        """
        offered = self.offered
        admitted = self.admitted
        committed = self.committed
        rejected: Dict[str, int] = {}
        latencies: List[float] = []
        shares: List[float] = []
        for state in self._states:
            stats = state.stats
            for reason, count in stats.rejected.items():
                rejected[reason] = rejected.get(reason, 0) + count
            latencies.extend(stats.latencies)
            if honest_only_fairness and type(
                state.spec.profile
            ).__module__.endswith("adversarial"):
                continue
            # fairness over throughput per unit of demand: tenants with
            # unequal offered rates are compared on their service ratio
            demand = max(stats.offered, 1)
            shares.append(stats.committed / demand)
        latencies.sort()
        elapsed = (
            (self.sim.now - self._started_at) if self._started_at is not None else 0.0
        )
        span = max(elapsed, self.duration, 1e-9)
        return WorkloadReport(
            duration=span,
            offered=offered,
            admitted=admitted,
            committed=committed,
            rejected=rejected,
            goodput_per_s=committed / span,
            p50_latency_s=_percentile(latencies, 0.50),
            p99_latency_s=_percentile(latencies, 0.99),
            fairness=jain_fairness(shares),
            shed_fraction=(offered - admitted) / offered if offered else 0.0,
            per_tenant={s.spec.name: s.stats for s in self._states},
        )


@dataclass
class ClosedLoopDriver:
    """``clients`` concurrent submitters, each sending its next
    envelope as soon as the previous one is committed at its frontend.

    Uses the frontend's ``on_block`` hook as the completion signal, so
    in-flight envelopes are bounded by the client count -- useful to
    probe latency at a fixed concurrency instead of a fixed rate.
    (The historical ``repro.bench.workload.ClosedLoopClients``.)
    """

    sim: Simulator
    frontend: object
    channel_id: str
    envelope_size: int
    clients: int
    max_envelopes: int
    submitter: str = "closedloop"
    submitted: int = 0
    completed: int = 0
    _outstanding: dict = field(default_factory=dict)

    def start(self) -> None:
        self.frontend.on_block.append(self._on_block)
        for _ in range(min(self.clients, self.max_envelopes)):
            self._submit_next()

    def _submit_next(self) -> None:
        if self.submitted >= self.max_envelopes:
            return
        from repro.fabric.envelope import Envelope

        envelope = Envelope.raw(
            self.channel_id, self.envelope_size, submitter=self.submitter
        )
        self._outstanding[envelope.envelope_id] = envelope
        self.submitted += 1
        self.frontend.submit(envelope)

    def _on_block(self, block) -> None:
        for envelope in block.envelopes:
            if envelope.envelope_id in self._outstanding:
                del self._outstanding[envelope.envelope_id]
                self.completed += 1
                self._submit_next()

    @property
    def done(self) -> bool:
        return self.completed >= self.max_envelopes
