"""The BFT-SMaRt ordering service for Hyperledger Fabric.

This package is the paper's primary contribution: ordering nodes built
on BFT-SMaRt service replicas (:mod:`repro.ordering.node`), the block
cutter (:mod:`repro.ordering.blockcutter`), the frontend/BFT shim that
bridges HLF peers to the ordering cluster
(:mod:`repro.ordering.frontend`), and deployment builders
(:mod:`repro.ordering.service`).
"""

from repro.ordering.admission import (
    AdmissionConfig,
    AdmissionController,
    Rejected,
    jain_fairness,
)
from repro.ordering.blockcutter import BlockCutter
from repro.ordering.frontend import Frontend
from repro.ordering.node import BFTOrderingNode, TimeToCut
from repro.ordering.service import (
    OrderingService,
    OrderingServiceConfig,
    build_ordering_service,
    ordering_replier,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "BFTOrderingNode",
    "BlockCutter",
    "Rejected",
    "jain_fairness",
    "Frontend",
    "OrderingService",
    "OrderingServiceConfig",
    "TimeToCut",
    "build_ordering_service",
    "ordering_replier",
]
