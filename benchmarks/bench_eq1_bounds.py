"""Equation 1 and the §8 conclusion comparison.

Eq. 1:  TP_os <= min(TP_sign * bs, TP_bftsmart(bs, es, r))

The benchmark checks the bound against both the capacity model and a
full-stack simulated measurement, and regenerates the paper's closing
comparison against Ethereum (1,000 tx/s theoretical) and Bitcoin
(7 tx/s).
"""

import pytest

from repro.bench.figures import conclusion_comparison, simulate_lan_throughput
from repro.bench.model import OrderingCapacityModel, eq1_bound
from repro.bench.tables import render_conclusion


@pytest.mark.benchmark(group="eq1")
def test_eq1_bounds_hold_everywhere(benchmark, record_result):
    def check_grid():
        rows = []
        for n in (4, 7, 10):
            model = OrderingCapacityModel(n=n)
            for es in (40, 200, 1024, 4096):
                for bs in (10, 100):
                    for r in (1, 4, 32):
                        predicted = model.throughput(es, bs, r)
                        bound = eq1_bound(bs, es, r, n=n)
                        rows.append((n, es, bs, r, predicted, bound))
        return rows

    rows = benchmark.pedantic(check_grid, rounds=1, iterations=1)
    lines = [
        "Equation 1: TP_os <= min(TP_sign*bs, TP_bftsmart)",
        f"{'n':>3} {'es':>6} {'bs':>4} {'r':>3} | {'predicted':>10} | {'Eq.1 bound':>10}",
    ]
    for n, es, bs, r, predicted, bound in rows:
        lines.append(
            f"{n:>3} {es:>6} {bs:>4} {r:>3} | {predicted:>10.0f} | {bound:>10.0f}"
        )
        assert predicted <= bound * 1.0001, (n, es, bs, r)
    record_result("eq1_bounds", "\n".join(lines))


@pytest.mark.benchmark(group="eq1")
def test_eq1_holds_for_simulated_measurement(benchmark, record_result):
    """A real (simulated) measurement must stay below the bound, like
    the paper's measured 50k < 84k for 10-envelope blocks."""
    result = benchmark.pedantic(
        lambda: simulate_lan_throughput(4, 10, 200, 2, duration=0.8, warmup=0.2),
        rounds=1,
        iterations=1,
    )
    bound = eq1_bound(10, 200, 2, n=4)
    record_result(
        "eq1_measured",
        f"measured {result.generated_rate:.0f} tx/s <= Eq.1 bound {bound:.0f} tx/s",
    )
    assert result.generated_rate <= bound


@pytest.mark.benchmark(group="conclusion")
def test_conclusion_comparison(benchmark, record_result):
    comparison = benchmark.pedantic(conclusion_comparison, rounds=1, iterations=1)
    record_result("conclusion", render_conclusion(comparison))
    # §8: >= 2x Ethereum's theoretical peak, vastly above Bitcoin
    assert comparison["speedup_vs_ethereum"] >= 1.5
    assert comparison["speedup_vs_bitcoin"] > 200
