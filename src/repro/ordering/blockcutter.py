"""The block cutter (paper section 5.1).

Ordering nodes store the totally-ordered envelope stream in a
*blockcutter*; once it holds a pre-determined number of envelopes (the
block size -- 10 or 100 in the paper's experiments) it drains them
into the next block.  Mirrors Fabric's ``blockcutter`` package,
including the byte-based early cut and the immediate cut of config
envelopes.
"""

from __future__ import annotations

from typing import List

from repro.fabric.channel import ChannelConfig
from repro.fabric.envelope import Envelope


class BlockCutter:
    """Accumulates ordered envelopes and emits batches deterministically.

    Determinism matters: every ordering node runs the same cutter over
    the same envelope stream, so all nodes cut identical blocks.
    """

    def __init__(self, config: ChannelConfig):
        self.config = config
        self._pending: List[Envelope] = []
        self._pending_bytes = 0
        self.batches_cut = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending_bytes(self) -> int:
        return self._pending_bytes

    def ordered(self, envelope: Envelope) -> List[List[Envelope]]:
        """Feed one ordered envelope; returns zero or more cut batches."""
        batches: List[List[Envelope]] = []
        if envelope.is_config:
            # config envelopes get a block of their own, after flushing
            if self._pending:
                batches.append(self.cut())
            batches.append([envelope])
            self.batches_cut += 1
            return batches
        message_will_overflow = (
            self._pending
            and self._pending_bytes + envelope.payload_size
            > self.config.preferred_max_bytes
        )
        if message_will_overflow:
            batches.append(self.cut())
        self._pending.append(envelope)
        self._pending_bytes += envelope.payload_size
        if len(self._pending) >= self.config.max_message_count:
            batches.append(self.cut())
        return batches

    def cut(self) -> List[Envelope]:
        """Drain the pending envelopes as one batch (may be empty)."""
        batch, self._pending = self._pending, []
        self._pending_bytes = 0
        if batch:
            self.batches_cut += 1
        return batch
