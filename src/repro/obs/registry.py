"""Hierarchical metrics registry: counters, gauges, histograms.

Every component of a deployment registers its instruments under
dot-separated hierarchical names -- ``smart.replica.3.consensus.
write_quorum_wait``, ``sim.cpu.0.utilization``, ``ordering.frontend.
1000.blocks_matched`` -- into one shared :class:`MetricsRegistry`, so a
report can slice the whole system by subsystem prefix.

Naming semantics (enforced, tested):

- a name is one or more non-empty dot-separated segments of
  ``[A-Za-z0-9_-]``;
- a registered name owns its *kind*: asking for ``x.y`` as a counter
  after it was created as a histogram raises :class:`MetricNameError`;
- a registered leaf cannot also be an interior node: once ``a.b``
  exists, creating ``a.b.c`` (or vice versa) raises, keeping the
  hierarchy a proper tree.

Histograms reuse the :class:`repro.sim.monitor.LatencyRecorder`
percentile machinery (lazy sort, linear-interpolated percentiles), so
registry numbers and benchmark-harness numbers can never disagree.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, Iterable, Optional, Tuple, Union


from repro.sim.monitor import LatencyRecorder

_SEGMENT = re.compile(r"^[A-Za-z0-9_-]+$")


class MetricNameError(ValueError):
    """An instrument name collides with an existing registration."""


class Counter:
    """A monotonically increasing counter."""

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def increment(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value: set directly or tracked via a callback."""

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._fn = None
        self._value = value

    def track(self, fn: Callable[[], float]) -> None:
        """Make the gauge read ``fn()`` at every observation."""
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def snapshot(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram(LatencyRecorder):
    """A sample distribution (the monitor's recorder, by another name)."""

    kind = "histogram"

    def observe(self, value: float) -> None:
        self.record(value)

    def snapshot(self) -> Dict[str, float]:
        return self.summary()


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """One shared, hierarchical bag of instruments."""

    def __init__(self):
        self._instruments: Dict[str, Instrument] = {}
        self._interior: set[str] = set()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _validate(self, name: str) -> Tuple[str, ...]:
        segments = tuple(name.split("."))
        if not all(_SEGMENT.match(s) for s in segments):
            raise MetricNameError(
                f"invalid metric name {name!r}: segments must be non-empty "
                "[A-Za-z0-9_-], dot-separated"
            )
        return segments

    def _claim(self, name: str, factory: Callable[[str], Instrument]) -> Instrument:
        existing = self._instruments.get(name)
        wanted = factory(name)
        if existing is not None:
            if existing.kind != wanted.kind:
                raise MetricNameError(
                    f"{name!r} is already a {existing.kind}, "
                    f"cannot re-register as a {wanted.kind}"
                )
            return existing
        segments = self._validate(name)
        if name in self._interior:
            raise MetricNameError(
                f"{name!r} is an interior node of the metric tree "
                "(longer names exist under it); leaves only"
            )
        for i in range(1, len(segments)):
            prefix = ".".join(segments[:i])
            if prefix in self._instruments:
                raise MetricNameError(
                    f"cannot register {name!r}: {prefix!r} is already a "
                    f"{self._instruments[prefix].kind} leaf"
                )
        for i in range(1, len(segments)):
            self._interior.add(".".join(segments[:i]))
        self._instruments[name] = wanted
        return wanted

    def counter(self, name: str) -> Counter:
        return self._claim(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._claim(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._claim(name, Histogram)  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> Iterable[str]:
        return sorted(self._instruments)

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def subtree(self, prefix: str) -> Dict[str, Instrument]:
        """Every instrument at or under ``prefix`` (dot-boundary aware)."""
        dotted = prefix + "."
        return {
            name: instrument
            for name, instrument in sorted(self._instruments.items())
            if name == prefix or name.startswith(dotted)
        }

    def snapshot(self, prefix: str = "") -> Dict[str, Any]:
        """Flat ``{name: value-or-summary}`` view, optionally filtered."""
        chosen = self.subtree(prefix) if prefix else dict(sorted(self._instruments.items()))
        return {name: instrument.snapshot() for name, instrument in chosen.items()}

    def tree(self) -> Dict[str, Any]:
        """Nested-dict view of the hierarchy (leaves are snapshots)."""
        root: Dict[str, Any] = {}
        for name, instrument in sorted(self._instruments.items()):
            node = root
            segments = name.split(".")
            for segment in segments[:-1]:
                node = node.setdefault(segment, {})
            node[segments[-1]] = instrument.snapshot()
        return root
