"""Tests for ledger auditing and multi-channel ordering."""

import pytest

from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import SimulatedECDSA
from repro.fabric.audit import audit_ledger, compare_ledgers, signature_coverage
from repro.fabric.block import GENESIS_PREVIOUS_HASH, make_block
from repro.fabric.channel import ChannelConfig
from repro.fabric.envelope import Envelope
from repro.fabric.ledger import Ledger
from repro.ordering import OrderingServiceConfig, build_ordering_service


def signed_chain(registry, signers, blocks=3, channel="ch0"):
    ledger = Ledger(channel)
    for i in range(blocks):
        block = make_block(i, ledger.last_hash, [Envelope.raw(channel, 10)], channel)
        payload = block.header.signing_payload()
        for name in signers:
            block.signatures[name] = registry.get(name).sign(payload)
        ledger.append(block)
    return ledger


@pytest.fixture
def registry():
    reg = KeyRegistry(scheme=SimulatedECDSA())
    for i in range(4):
        reg.enroll(f"orderer{i}", org="orderers")
    return reg


class TestAuditLedger:
    def test_clean_chain_passes(self, registry):
        ledger = signed_chain(registry, ["orderer0", "orderer1"])
        report = audit_ledger(ledger, registry)
        assert report.ok
        assert report.min_signatures == 2
        assert report.problems() == []

    def test_forged_signature_flagged(self, registry):
        ledger = signed_chain(registry, ["orderer0"])
        ledger.get(1).signatures["orderer1"] = b"\x00" * 64
        report = audit_ledger(ledger, registry)
        assert not report.ok
        assert report.records[1].invalid_signatures == 1
        assert report.problems()[0].number == 1

    def test_tampered_data_flagged(self, registry):
        ledger = signed_chain(registry, ["orderer0"])
        ledger.get(2).envelopes.append(Envelope.raw("ch0", 99))
        report = audit_ledger(ledger, registry)
        assert not report.records[2].data_ok

    def test_unknown_signers_counted_not_failed(self, registry):
        ledger = signed_chain(registry, ["orderer0"])
        ledger.get(0).signatures["stranger"] = b"\x01" * 64
        report = audit_ledger(ledger, registry, orderer_names={"orderer0"})
        assert report.ok
        assert report.records[0].unknown_signers == 1

    def test_without_registry_counts_raw_signatures(self, registry):
        ledger = signed_chain(registry, ["orderer0", "orderer1", "orderer2"])
        report = audit_ledger(ledger)
        assert report.min_signatures == 3

    def test_signature_coverage(self, registry):
        ledger = signed_chain(registry, ["orderer0", "orderer1"])
        block = ledger.get(0)
        block.signatures["orderer2"] = b"\x00" * 64  # forged
        assert signature_coverage(block, registry) == 2


class TestCompareLedgers:
    def test_identical_chains_no_fork(self, registry):
        a = signed_chain(registry, ["orderer0"], blocks=4)
        b = signed_chain(registry, ["orderer0"], blocks=4)
        # rebuild b as a true copy of a (same envelopes)
        b = a
        report = compare_ledgers({"peerA": a, "peerB": b})
        assert not report.forked
        assert report.common_height == 4

    def test_lag_is_not_a_fork(self, registry):
        full = signed_chain(registry, ["orderer0"], blocks=4)
        behind = Ledger("ch0")
        for i in range(2):
            behind.append(full.get(i))
        report = compare_ledgers({"fast": full, "slow": behind})
        assert not report.forked
        assert report.common_height == 2

    def test_fork_detected_at_first_divergence(self, registry):
        a = Ledger("ch0")
        b = Ledger("ch0")
        shared = make_block(0, GENESIS_PREVIOUS_HASH, [Envelope.raw("ch0", 1)], "ch0")
        a.append(shared)
        b.append(shared)
        a.append(make_block(1, a.last_hash, [Envelope.raw("ch0", 2)], "ch0"))
        b.append(make_block(1, b.last_hash, [Envelope.raw("ch0", 3)], "ch0"))
        report = compare_ledgers({"peerA": a, "peerB": b})
        assert report.forked
        assert report.fork_at == 1
        assert len(set(report.diverging_peers.values())) == 2

    def test_empty_input(self):
        assert not compare_ledgers({}).forked


class TestMultiChannel:
    def _service(self):
        config = OrderingServiceConfig(
            f=1,
            channel=ChannelConfig("alpha", max_message_count=5),
            extra_channels=[
                ChannelConfig("beta", max_message_count=3),
            ],
            physical_cores=None,
        )
        return build_ordering_service(config)

    def test_channels_get_independent_chains(self):
        service = self._service()
        blocks = {"alpha": [], "beta": []}
        service.frontends[0].on_block.append(
            lambda b: blocks[b.channel_id].append(b)
        )
        for _ in range(10):
            service.submit(Envelope.raw("alpha", 64))
        for _ in range(6):
            service.submit(Envelope.raw("beta", 64))
        service.run(3.0)
        assert len(blocks["alpha"]) == 2
        assert len(blocks["beta"]) == 2
        assert [b.number for b in blocks["alpha"]] == [0, 1]
        assert [b.number for b in blocks["beta"]] == [0, 1]
        # separate hash chains
        assert blocks["alpha"][0].header.digest() != blocks["beta"][0].header.digest()
        assert blocks["alpha"][1].header.previous_hash == blocks["alpha"][0].header.digest()
        assert blocks["beta"][1].header.previous_hash == blocks["beta"][0].header.digest()

    def test_channel_isolation_under_interleaving(self):
        service = self._service()
        alpha_envs = [Envelope.raw("alpha", 32) for _ in range(10)]
        beta_envs = [Envelope.raw("beta", 32) for _ in range(9)]
        delivered = {"alpha": [], "beta": []}
        service.frontends[0].on_block.append(
            lambda b: delivered[b.channel_id].extend(
                e.envelope_id for e in b.envelopes
            )
        )
        # interleave submissions
        for i in range(10):
            service.submit(alpha_envs[i])
            if i < 9:
                service.submit(beta_envs[i])
        service.run(3.0)
        assert delivered["alpha"] == [e.envelope_id for e in alpha_envs]
        assert delivered["beta"] == [e.envelope_id for e in beta_envs]

    def test_unknown_channel_envelope_ignored(self):
        service = self._service()
        service.submit(Envelope.raw("ghost-channel", 64))
        for _ in range(5):
            service.submit(Envelope.raw("alpha", 64))
        service.run(3.0)
        assert service.frontends[0].blocks_delivered == 1

    def test_duplicate_channel_rejected(self):
        config = OrderingServiceConfig(
            f=1,
            channel=ChannelConfig("same", max_message_count=5),
            extra_channels=[ChannelConfig("same", max_message_count=3)],
            physical_cores=None,
        )
        with pytest.raises(ValueError):
            build_ordering_service(config)

    def test_no_fork_across_peers_of_bft_service(self):
        """The audit tool confirms what the BFT service guarantees."""
        from repro.fabric.committer import CommittingPeer

        service = self._service()
        channel = service.config.channel
        peers = {}
        for name in ("peerA", "peerB"):
            service.registry.enroll(name, org="orgX")
            peer = CommittingPeer(
                service.sim, service.network, name, channel, registry=service.registry
            )
            service.network.register(name, peer)
            service.frontends[0].attach_peer(name)
            peers[name] = peer
        for _ in range(15):
            service.submit(Envelope.raw("alpha", 64))
        service.run(3.0)
        report = compare_ledgers({n: p.ledger for n, p in peers.items()})
        assert not report.forked
        assert report.common_height == 3
