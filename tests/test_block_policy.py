"""Unit tests for the per-backend block-validity policies."""

from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import SimulatedECDSA
from repro.fabric.block import GENESIS_PREVIOUS_HASH, make_block
from repro.fabric.blockpolicy import (
    AcceptAllBlocks,
    SignatureCountPolicy,
    SignatureQuorumPolicy,
    count_valid_signatures,
)
from repro.fabric.envelope import Envelope


def _harness(n=4):
    registry = KeyRegistry(scheme=SimulatedECDSA())
    identities = [
        registry.enroll(f"orderer{i}", org=f"ordererorg{i}") for i in range(n)
    ]
    envelope = Envelope.raw("ch0", payload_size=64, submitter="c")
    envelope.envelope_id = 0
    block = make_block(0, GENESIS_PREVIOUS_HASH, [envelope], channel_id="ch0")
    return registry, identities, block


def _sign(block, identities):
    payload = block.header.signing_payload()
    for identity in identities:
        block.signatures[identity.name] = identity.sign(payload)


def test_accept_all_ignores_signatures():
    _registry, _identities, block = _harness()
    policy = AcceptAllBlocks()
    assert policy.check(block)  # zero signatures
    assert policy.describe() == "accept-all"


def test_count_valid_signatures_verifies_each():
    registry, identities, block = _harness()
    names = {i.name for i in identities}
    _sign(block, identities[:3])
    assert count_valid_signatures(block, registry, names) == 3
    block.signatures[identities[3].name] = b"\x01" * 64  # forged
    assert count_valid_signatures(block, registry, names) == 3


def test_count_valid_signatures_filters_outsiders():
    registry, identities, block = _harness()
    names = {i.name for i in identities}
    outsider = registry.enroll("mallory", org="attackers")
    _sign(block, identities[:2])
    _sign(block, [outsider])  # valid signature, wrong trust domain
    assert count_valid_signatures(block, registry, names) == 2
    assert count_valid_signatures(block, registry, None) == 3


def test_count_valid_signatures_without_registry_counts_names():
    _registry, identities, block = _harness()
    names = {i.name for i in identities}
    _sign(block, identities[:2])
    block.signatures["stranger"] = b"\x00" * 64
    assert count_valid_signatures(block, None, names) == 2
    assert count_valid_signatures(block, None, None) == 3


def test_signature_count_policy_threshold():
    registry, identities, block = _harness()
    names = {i.name for i in identities}
    _sign(block, identities[:2])
    assert SignatureCountPolicy(0).check(block)  # disabled (legacy default)
    assert SignatureCountPolicy(2, registry, names).check(block)
    assert not SignatureCountPolicy(3, registry, names).check(block)
    assert SignatureCountPolicy(2, registry, names).describe() == "signature-count>=2"


def test_signature_quorum_policy_needs_2f_plus_1():
    registry, identities, block = _harness()
    names = {i.name for i in identities}
    policy = SignatureQuorumPolicy(1, registry, names)
    assert policy.quorum == 3
    _sign(block, identities[:2])
    assert not policy.check(block)
    _sign(block, identities[2:3])
    assert policy.check(block)
    assert policy.describe() == "signature-quorum>=3"
