"""Tests for ordered group reconfiguration."""

import pytest

from repro.smart import ReconfigOp, ReconfigurationClient, apply_reconfig
from repro.smart.replica import ServiceReplica
from repro.smart.view import View
from tests.conftest import Cluster, CounterApp


class TestApplyReconfig:
    def test_add_replica(self):
        view = View(0, (0, 1, 2, 3), 1)
        new = apply_reconfig(view, ReconfigOp("add", 4))
        assert new.processes == (0, 1, 2, 3, 4)
        assert new.view_id == 1
        assert new.f == 1

    def test_add_enough_for_larger_f(self):
        view = View(0, tuple(range(6)), 1)
        new = apply_reconfig(view, ReconfigOp("add", 6))
        assert new.f == 2

    def test_remove_replica(self):
        view = View(0, tuple(range(5)), 1)
        new = apply_reconfig(view, ReconfigOp("remove", 4))
        assert new.processes == (0, 1, 2, 3)

    def test_remove_below_minimum_rejected(self):
        view = View(0, (0, 1, 2, 3), 1)
        with pytest.raises(ValueError):
            apply_reconfig(view, ReconfigOp("remove", 3))

    def test_add_existing_is_idempotent(self):
        """Re-applying an add during log replay must be a no-op."""
        view = View(0, (0, 1, 2, 3), 1)
        assert apply_reconfig(view, ReconfigOp("add", 2)) is view

    def test_remove_missing_is_idempotent(self):
        view = View(0, tuple(range(5)), 1)
        assert apply_reconfig(view, ReconfigOp("remove", 9)) is view

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            ReconfigOp("promote", 1)


class TestOrderedReconfiguration:
    def _add_node(self, cluster, new_id=4):
        """Wire a fresh replica into the network before activating it."""
        app = CounterApp()
        replica = ServiceReplica(
            cluster.sim,
            cluster.network,
            new_id,
            cluster.view,
            app,
            config=cluster.config,
        )
        cluster.network.register(new_id, replica)
        cluster.apps.append(app)
        cluster.replicas.append(replica)
        return replica

    def test_add_replica_through_total_order(self):
        cluster = Cluster()
        proxy = cluster.proxy()
        assert cluster.drain([proxy.invoke(1)])
        self._add_node(cluster, 4)
        admin = ReconfigurationClient(cluster.proxy())
        future = admin.add_replica(4)
        assert cluster.drain([future], deadline=20.0)
        assert future.value["view_id"] == 1
        assert 4 in future.value["processes"]
        assert all(
            replica.view.view_id == 1 for replica in cluster.replicas[:4]
        )

    def test_new_replica_serves_after_join(self):
        cluster = Cluster()
        proxy = cluster.proxy()
        assert cluster.drain([proxy.invoke(1)])
        new_replica = self._add_node(cluster, 4)
        admin = ReconfigurationClient(cluster.proxy())
        assert cluster.drain([admin.add_replica(4)], deadline=20.0)
        new_replica.view = cluster.replicas[0].view
        new_replica.state_transfer.start()
        cluster.run(3.0)
        proxy.update_view(cluster.replicas[0].view)
        futures = [proxy.invoke(2) for _ in range(3)]
        assert cluster.drain(futures, deadline=20.0)
        cluster.run(2.0)
        assert cluster.apps[4].total == cluster.apps[0].total

    def test_removed_replica_goes_passive(self):
        cluster = Cluster(n=5, f=1)
        proxy = cluster.proxy()
        assert cluster.drain([proxy.invoke(1)])
        admin = ReconfigurationClient(cluster.proxy())
        future = admin.remove_replica(4)
        assert cluster.drain([future], deadline=20.0)
        assert cluster.replicas[4].crashed  # passive now
        # the 4-replica view still serves
        proxy.update_view(cluster.replicas[0].view)
        follow_up = proxy.invoke(2)
        assert cluster.drain([follow_up], deadline=20.0)
        assert cluster.apps[0].total == 3
