"""The solo orderer: one process, no replication, no fault tolerance.

HLF ships this for development/testing (paper section 3: "a single
point of failure").  It shares the block cutter and signing pipeline
with the BFT ordering node, so throughput comparisons isolate the cost
of replication.
"""

from __future__ import annotations

from typing import List, Optional

from repro.crypto.keys import Identity
from repro.fabric.api import BlockDelivery, SubmitEnvelope
from repro.fabric.block import GENESIS_PREVIOUS_HASH, Block, BlockHeader, compute_data_hash
from repro.fabric.channel import ChannelConfig
from repro.fabric.envelope import Envelope
from repro.ordering.blockcutter import BlockCutter
from repro.sim.core import Simulator
from repro.sim.cpu import CPU, ThreadPool
from repro.sim.monitor import StatsRegistry
from repro.sim.network import Network


class SoloOrderer:
    """A single-node ordering service."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        identity: Identity,
        channel: ChannelConfig,
        cpu: Optional[CPU] = None,
        signing_workers: int = 16,
        stats: Optional[StatsRegistry] = None,
    ):
        self.sim = sim
        self.network = network
        self.name = name
        self.identity = identity
        self.channel = channel
        self.cutter = BlockCutter(channel)
        self.cpu = cpu
        self.signing_pool = ThreadPool(cpu, signing_workers) if cpu else None
        self.stats = stats or StatsRegistry()
        self.receivers: List[object] = []
        self.next_number = 0
        self.previous_hash = GENESIS_PREVIOUS_HASH
        self.blocks_created = 0
        self.crashed = False
        self._cut_timer = None

    def attach_receiver(self, receiver_id: object) -> None:
        if receiver_id not in self.receivers:
            self.receivers.append(receiver_id)

    def crash(self) -> None:
        """The single point of failure, failing."""
        self.crashed = True
        self.network.crash(self.name)

    # ------------------------------------------------------------------
    def deliver(self, src, message) -> None:
        if self.crashed:
            return
        if isinstance(message, SubmitEnvelope):
            self.submit(message.envelope)

    def submit(self, envelope: Envelope) -> None:
        if self.crashed:
            return
        if envelope.create_time is None:
            envelope.create_time = self.sim.now
        batches = self.cutter.ordered(envelope)
        for batch in batches:
            self._create_block(batch)
        if not batches and len(self.cutter) > 0 and self._cut_timer is None:
            self._cut_timer = self.sim.schedule(
                self.channel.batch_timeout, self._timeout_cut
            )

    def _timeout_cut(self) -> None:
        self._cut_timer = None
        if len(self.cutter) > 0:
            self._create_block(self.cutter.cut())

    def _create_block(self, batch: List[Envelope]) -> None:
        if not batch:
            return
        header = BlockHeader(
            number=self.next_number,
            previous_hash=self.previous_hash,
            data_hash=compute_data_hash(batch),
        )
        self.next_number += 1
        self.previous_hash = header.digest()
        block = Block(
            header=header, envelopes=batch, channel_id=self.channel.channel_id
        )
        self.blocks_created += 1
        if self.signing_pool is not None:
            self.signing_pool.submit(
                self.identity.signer.sign_cost, self._sign_and_send, block
            )
        else:
            self._sign_and_send(block)

    def _sign_and_send(self, block: Block) -> None:
        block.signatures[self.name] = self.identity.sign(
            block.header.signing_payload()
        )
        delivery = BlockDelivery(block=block, source=self.name)
        self.network.broadcast(
            self.name, self.receivers, delivery, delivery.wire_size()
        )
        now = self.sim.now
        self.stats.meter(f"{self.name}.envelopes").record(
            now, float(len(block.envelopes))
        )
        latency = self.stats.latency(f"{self.name}.latency")
        for envelope in block.envelopes:
            if envelope.create_time is not None:
                latency.record(now - envelope.create_time)
