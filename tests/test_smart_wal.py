"""Tests for the consensus WAL and the ordering-service WAL codec."""

import random

import pytest

from repro.fabric.envelope import Envelope
from repro.ordering.node import TimeToCut
from repro.ordering.wal_codec import decode_value, encode_value
from repro.sim.storage import SimDisk, StorageFaults
from repro.smart.durability import Checkpoint, state_digest
from repro.smart.messages import ClientRequest
from repro.smart.reconfiguration import ReconfigOp
from repro.smart.wal import ConsensusWAL


def request(seq, op=7):
    return ClientRequest(client_id=1, sequence=seq, operation=op, size_bytes=4)


def make_wal():
    return ConsensusWAL(SimDisk())


class TestConsensusWAL:
    def test_batches_group_commit_on_vote_fsync(self):
        wal = make_wal()
        wal.append(0, [request(0)])
        assert wal.disk.unsynced_size > 0  # batch alone is not durable
        wal.log_write(1, 0, b"\xaa" * 4)
        assert wal.disk.unsynced_size == 0  # the vote fsync carried it

    def test_recover_roundtrip(self):
        wal = make_wal()
        wal.append(0, [request(0, 3), request(1, 4)])
        wal.append(1, [request(2, 5)])
        state = {"total": 12}
        wal.set_checkpoint(
            Checkpoint(cid=0, state=state, state_hash=state_digest(state))
        )
        wal.log_write(2, 0, b"\x01" * 8)
        wal.log_accept(2, 0, b"\x01" * 8)
        wal.log_regency(1)
        wal.log_write(2, 1, b"\x02" * 8)

        fresh = ConsensusWAL(wal.disk)
        recovery = fresh.recover()
        assert not recovery.corrupt
        assert recovery.truncated_bytes == 0
        assert recovery.checkpoint.cid == 0
        assert recovery.checkpoint.state == {"total": 12}
        assert [cid for cid, _ in recovery.entries] == [1]
        assert recovery.write_evidence == {2: {0: b"\x01" * 8, 1: b"\x02" * 8}}
        assert recovery.accept_evidence == {2: {0: b"\x01" * 8}}
        assert recovery.regency == 1
        assert fresh.last_cid == 1

    def test_synced_votes_survive_lost_suffix(self):
        wal = make_wal()
        wal.log_write(0, 0, b"\xab" * 8)  # fsynced before send
        wal.append(0, [request(0)])  # unsynced batch record
        wal.disk.crash(StorageFaults(), random.Random(0))
        recovery = ConsensusWAL(wal.disk).recover()
        assert recovery.write_evidence == {0: {0: b"\xab" * 8}}
        assert recovery.entries == []  # the batch is gone -- safety intact

    def test_torn_tail_truncates_and_continues(self):
        wal = make_wal()
        wal.log_write(0, 0, b"\x01" * 8)
        wal.append(0, [request(0)])
        wal.append(1, [request(1)])
        rng = random.Random(2)
        wal.disk.crash(StorageFaults(torn_tail=True), rng)
        recovery = ConsensusWAL(wal.disk).recover()
        assert not recovery.corrupt
        assert recovery.write_evidence == {0: {0: b"\x01" * 8}}
        # after truncation the remaining image rescans cleanly
        assert ConsensusWAL(wal.disk).verify() == []

    def test_midlog_corruption_flags_corrupt(self):
        wal = make_wal()
        wal.log_write(0, 0, b"\x01" * 8)
        wal.log_write(1, 0, b"\x02" * 8)
        wal.log_write(2, 0, b"\x03" * 8)
        # flip a bit in the middle record (not the last one)
        record_len = wal.disk.durable_size // 3
        wal.disk._durable[record_len + 15] ^= 0x01
        recovery = ConsensusWAL(wal.disk).recover()
        assert recovery.corrupt
        # only the clean prefix survives
        assert recovery.write_evidence == {0: {0: b"\x01" * 8}}

    def test_verify_reports_conflicting_votes(self):
        wal = make_wal()
        wal.log_write(3, 1, b"\x01" * 8)
        wal.log_write(3, 1, b"\x02" * 8)
        problems = wal.verify()
        assert any("conflicting write votes" in p for p in problems)

    def test_verify_reports_scan_damage(self):
        wal = make_wal()
        wal.log_write(0, 0, b"\x01" * 8)
        wal.disk.append(b"garbage")
        assert any("log scan failed" in p for p in wal.verify())

    def test_clear_resets_memory_not_disk(self):
        wal = make_wal()
        wal.append(0, [request(0)])
        wal.log_write(0, 0, b"\x01" * 8)
        wal.clear()
        assert len(wal) == 0
        assert wal.disk.durable_size > 0


class TestWalCodec:
    def roundtrip(self, value):
        return decode_value(encode_value(value))

    def test_scalars_and_containers(self):
        value = {"a": [1, 2.5, None, True, "s"], "b": (1, (2, b"\x00\xff"))}
        assert self.roundtrip(value) == value

    def test_envelope(self):
        env = Envelope(
            channel_id="ch0",
            transaction=("tx", 1),
            payload_size=1024,
            submitter="client-9",
            envelope_id=42,
        )
        back = self.roundtrip(env)
        assert isinstance(back, Envelope)
        assert back.channel_id == "ch0"
        assert back.transaction == ("tx", 1)
        assert back.envelope_id == 42
        assert back.signature == env.signature

    def test_time_to_cut_and_reconfig(self):
        ttc = self.roundtrip(TimeToCut(channel_id="ch0", target_height=5))
        assert isinstance(ttc, TimeToCut)
        assert ttc.target_height == 5
        rc = self.roundtrip(ReconfigOp(action="remove", replica_id=3))
        assert isinstance(rc, ReconfigOp)
        assert (rc.action, rc.replica_id) == ("remove", 3)

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            encode_value(object())
