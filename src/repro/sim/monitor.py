"""Measurement instruments for simulated experiments.

These mirror what the paper measures: throughput at the leader ordering
node (transactions and blocks per second) and client-observed latency
percentiles at each frontend.
"""

from __future__ import annotations

import math
from bisect import insort
from typing import Dict, Iterable, List, Optional


class Counter:
    """A monotonically increasing event counter."""

    def __init__(self, name: str = "counter"):
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class LatencyRecorder:
    """Collects individual latency samples; reports percentiles.

    Samples are kept sorted on insertion so percentile queries are
    cheap and repeated queries do not re-sort.
    """

    def __init__(self, name: str = "latency"):
        self.name = name
        self._sorted: List[float] = []
        self._sum = 0.0

    def record(self, seconds: float) -> None:
        insort(self._sorted, seconds)
        self._sum += seconds

    def reset(self) -> None:
        """Discard all samples (used to trim experiment warm-up)."""
        self._sorted = []
        self._sum = 0.0

    def extend(self, samples: Iterable[float]) -> None:
        for sample in samples:
            self.record(sample)

    @property
    def count(self) -> int:
        return len(self._sorted)

    @property
    def mean(self) -> float:
        return self._sum / len(self._sorted) if self._sorted else math.nan

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, ``p`` in [0, 100]."""
        if not self._sorted:
            return math.nan
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if len(self._sorted) == 1:
            return self._sorted[0]
        rank = (p / 100.0) * (len(self._sorted) - 1)
        low = int(rank)
        high = min(low + 1, len(self._sorted) - 1)
        frac = rank - low
        return self._sorted[low] * (1.0 - frac) + self._sorted[high] * frac

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    @property
    def p90(self) -> float:
        return self.percentile(90.0)

    @property
    def minimum(self) -> float:
        return self._sorted[0] if self._sorted else math.nan

    @property
    def maximum(self) -> float:
        return self._sorted[-1] if self._sorted else math.nan

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "median": self.median,
            "p90": self.p90,
            "min": self.minimum,
            "max": self.maximum,
        }


class ThroughputMeter:
    """Counts weighted events over time and reports rates.

    ``record(t, n)`` registers ``n`` events at simulated time ``t``.
    ``rate(start, end)`` gives events/second over a window, allowing
    warm-up trimming exactly like the paper's 5-minute runs.
    """

    def __init__(self, name: str = "throughput"):
        self.name = name
        self._times: List[float] = []
        self._weights: List[float] = []
        self.total = 0.0

    def record(self, time: float, count: float = 1.0) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError("throughput samples must be recorded in time order")
        self._times.append(time)
        self._weights.append(count)
        self.total += count

    def rate(self, start: Optional[float] = None, end: Optional[float] = None) -> float:
        """Events per second within ``[start, end]``."""
        if not self._times:
            return 0.0
        start = self._times[0] if start is None else start
        end = self._times[-1] if end is None else end
        if end <= start:
            return 0.0
        window = sum(
            weight
            for time, weight in zip(self._times, self._weights)
            if start <= time <= end
        )
        return window / (end - start)

    @property
    def first_time(self) -> Optional[float]:
        return self._times[0] if self._times else None

    @property
    def last_time(self) -> Optional[float]:
        return self._times[-1] if self._times else None


class StatsRegistry:
    """A named bag of instruments shared by an experiment's components."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._latencies: Dict[str, LatencyRecorder] = {}
        self._meters: Dict[str, ThroughputMeter] = {}

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter(name))

    def latency(self, name: str) -> LatencyRecorder:
        return self._latencies.setdefault(name, LatencyRecorder(name))

    def meter(self, name: str) -> ThroughputMeter:
        return self._meters.setdefault(name, ThroughputMeter(name))

    def summary(self) -> Dict[str, Dict[str, float]]:
        report: Dict[str, Dict[str, float]] = {}
        for name, counter in sorted(self._counters.items()):
            report[name] = {"count": float(counter.value)}
        for name, recorder in sorted(self._latencies.items()):
            report[name] = recorder.summary()
        for name, meter in sorted(self._meters.items()):
            report[name] = {"total": meter.total, "rate": meter.rate()}
        return report
