"""Figure 7 (a-f): ordering throughput in the Gigabit LAN.

Paper results reproduced as shapes:

- with 10-envelope blocks the peak is ~50 k tx/s (signing-bound,
  shared CPU with the replication protocol -- below the 84 k
  stand-alone bound of Figure 6);
- with 100-envelope blocks small envelopes reach much higher
  throughput (~1,100 blocks/s of 100 envelopes);
- throughput falls as receivers grow, but the effect is far smaller
  for 1/4 KB envelopes (replication-protocol-bound);
- larger clusters are slower for large envelopes; the worst case
  (10 nodes, 4 KB, 32 receivers) still clears ~2,200 tx/s;
- at 16-32 receivers, block- and cluster-size variants of the same
  envelope size converge.

The six panels come from the registered ``fig7_capacity`` matrix
(calibrated capacity model); the registered ``fig7_lan_sim`` matrix
cross-validates operating points on the full-stack discrete-event
simulation.
"""

import pytest

from repro.bench.figures import (
    BLOCK_SIZES,
    CLUSTER_SIZES,
    ENVELOPE_SIZES,
    RECEIVER_COUNTS,
)

pytestmark = pytest.mark.bench


def test_figure7_all_panels(bench_result):
    result = bench_result("fig7_capacity")

    def panel(orderers, block_size):
        return {
            es: {
                r: result.value(
                    "tx_per_sec",
                    orderers=orderers,
                    block_size=block_size,
                    envelope_size=es,
                    receivers=r,
                )
                for r in RECEIVER_COUNTS
            }
            for es in ENVELOPE_SIZES
        }

    panels = {
        (n, bs): panel(n, bs) for n in CLUSTER_SIZES for bs in BLOCK_SIZES
    }

    for (orderers, block_size), rows in panels.items():
        for es in ENVELOPE_SIZES:
            series = [rows[es][r] for r in RECEIVER_COUNTS]
            # shape: monotone non-increasing in receivers
            assert all(a >= b * 0.999 for a, b in zip(series, series[1:]))
        for r in RECEIVER_COUNTS:
            by_size = [rows[es][r] for es in ENVELOPE_SIZES]
            # shape: smaller envelopes never do worse
            assert all(a >= b * 0.999 for a, b in zip(by_size, by_size[1:]))

    # peak ~50k tx/s for 10-envelope blocks (paper: ~50,000)
    peak_10 = panels[(4, 10)][40][1]
    assert 45_000 < peak_10 < 60_000
    # 100-envelope blocks lift small-envelope throughput
    assert panels[(4, 100)][40][1] > panels[(4, 10)][40][1]
    # worst case (10 orderers, 4 KB, 32 receivers) ~2,200 tx/s
    floor = panels[(10, 100)][4096][32]
    assert 1_500 < floor < 3_000
    # receiver impact smaller for big envelopes (relative drop 1->32)
    drop_small = panels[(4, 10)][40][1] / panels[(4, 10)][40][32]
    drop_large = panels[(4, 10)][4096][1] / panels[(4, 10)][4096][32]
    assert drop_large < drop_small
    # convergence: at 32 receivers, the (cluster, block) spread of each
    # envelope size is much tighter than at 1 receiver
    for es in (1024, 4096):
        at_1 = [panels[key][es][1] for key in panels]
        at_32 = [panels[key][es][32] for key in panels]
        assert (max(at_32) / min(at_32)) < (max(at_1) / min(at_1)) * 1.01


def test_figure7_block_rate_about_1100(bench_result):
    """§6.2: ~1,100 blocks/s when cutting 100-envelope blocks."""
    result = bench_result("fig7_capacity")
    block_rate = result.value(
        "blocks_per_sec", orderers=4, block_size=100, envelope_size=200, receivers=4
    )
    assert 300 < block_rate < 3_000


def test_figure7_simulation_cross_validation(bench_result):
    """Full-stack DES vs capacity model across operating points."""
    result = bench_result("fig7_lan_sim")

    # propose-bandwidth-bound point: model and sim agree well
    generated = result.value("generated_tx_per_sec", envelope_size=1024, receivers=2)
    predicted = result.value("model_tx_per_sec", envelope_size=1024, receivers=2)
    assert generated == pytest.approx(predicted, rel=0.25)
    # same order of magnitude in every regime
    for point in result.points:
        model = point.metrics["model_tx_per_sec"].median
        sim = point.metrics["generated_tx_per_sec"].median
        assert sim > model * 0.3
        assert sim < model * 3.0
