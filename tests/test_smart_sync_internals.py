"""Unit tests for synchronization-phase internals (Mod-SMaRt rules)."""


from repro.crypto.hashing import sha256
from repro.smart.consensus import batch_hash
from repro.smart.messages import (
    ClientRequest,
    StopData,
    Sync,
    WriteCertificate,
)


def request(seq, op=1, client=500):
    return ClientRequest(client_id=client, sequence=seq, operation=op)


def certificate(cid, regency, batch, writers=(0, 1, 2)):
    return WriteCertificate(
        cid=cid,
        regency=regency,
        value_hash=batch_hash(cid, batch),
        writers=tuple(writers),
        batch=batch,
    )


class TestValueSelection:
    """The new leader must re-propose any write-certified value."""

    def make_reports(self, cluster, entries):
        reports = {}
        for sender, last_executed, cert, pending in entries:
            reports[sender] = StopData(
                sender=sender,
                regency=1,
                last_executed_cid=last_executed,
                write_certificate=cert,
                pending=pending,
            )
        return reports

    def test_certified_value_chosen(self, cluster):
        synchronizer = cluster.replicas[1].synchronizer
        batch = [request(0)]
        cert = certificate(0, 0, batch)
        reports = self.make_reports(
            cluster,
            [
                (1, -1, None, []),
                (2, -1, cert, []),
                (3, -1, None, [request(1, op=9)]),
            ],
        )
        selected = synchronizer._select_value(0, reports)
        assert batch_hash(0, selected) == cert.value_hash

    def test_highest_regency_certificate_wins(self, cluster):
        synchronizer = cluster.replicas[1].synchronizer
        old_batch = [request(0, op=1)]
        new_batch = [request(0, op=2)]
        reports = self.make_reports(
            cluster,
            [
                (1, -1, certificate(0, 0, old_batch), []),
                (2, -1, certificate(0, 3, new_batch), []),
                (3, -1, None, []),
            ],
        )
        selected = synchronizer._select_value(0, reports)
        assert batch_hash(0, selected) == batch_hash(0, new_batch)

    def test_certificates_for_other_instances_ignored(self, cluster):
        synchronizer = cluster.replicas[1].synchronizer
        stale = certificate(7, 0, [request(0, op=1)])
        pending = [request(1, op=5)]
        reports = self.make_reports(
            cluster,
            [(1, -1, stale, pending), (2, -1, None, []), (3, -1, None, [])],
        )
        selected = synchronizer._select_value(0, reports)
        assert [r.operation for r in selected] == [5]

    def test_without_certificate_pending_union_proposed(self, cluster):
        synchronizer = cluster.replicas[1].synchronizer
        a, b = request(0, op=1, client=501), request(0, op=2, client=502)
        reports = self.make_reports(
            cluster,
            [(1, -1, None, [a]), (2, -1, None, [b, a]), (3, -1, None, [])],
        )
        selected = synchronizer._select_value(0, reports)
        assert {r.request_id for r in selected} == {a.request_id, b.request_id}
        assert len(selected) == 2  # deduplicated

    def test_already_executed_requests_filtered(self, cluster):
        replica = cluster.replicas[1]
        done = request(0, op=1, client=501)
        replica._executed_ids.add(done.request_id)
        reports = self.make_reports(cluster, [(1, 0, None, [done])])
        selected = replica.synchronizer._select_value(1, reports)
        assert selected == []


class TestCertificateValidation:
    def test_quorumless_certificate_rejected(self, cluster):
        synchronizer = cluster.replicas[0].synchronizer
        batch = [request(0)]
        weak = certificate(0, 0, batch, writers=(0, 1))  # only 2 of 4
        assert not synchronizer._certificate_valid(weak)

    def test_hash_mismatch_rejected(self, cluster):
        synchronizer = cluster.replicas[0].synchronizer
        cert = WriteCertificate(
            cid=0,
            regency=0,
            value_hash=sha256("lies"),
            writers=(0, 1, 2),
            batch=[request(0)],
        )
        assert not synchronizer._certificate_valid(cert)

    def test_none_certificate_valid(self, cluster):
        assert cluster.replicas[0].synchronizer._certificate_valid(None)


class TestSyncAcceptance:
    def test_sync_from_wrong_leader_ignored(self, cluster):
        replica = cluster.replicas[2]
        batch = [request(0)]
        bogus = Sync(
            sender=3,  # regency 1's leader is replica 1
            regency=1,
            cid=0,
            batch=batch,
            value_hash=batch_hash(0, batch),
            proofs=[StopData(i, 1, -1, None) for i in range(3)],
        )
        replica.deliver(3, bogus)
        assert replica.regency == 0

    def test_sync_with_too_few_proofs_ignored(self, cluster):
        replica = cluster.replicas[2]
        batch = [request(0)]
        thin = Sync(
            sender=1,
            regency=1,
            cid=0,
            batch=batch,
            value_hash=batch_hash(0, batch),
            proofs=[StopData(1, 1, -1, None)],  # need n-f = 3
        )
        replica.deliver(1, thin)
        assert replica.regency == 0

    def test_sync_ignoring_certificate_rejected(self, cluster):
        """A Byzantine new leader proposing its own value despite a
        certified one in its proofs must be refused."""
        replica = cluster.replicas[2]
        certified_batch = [request(0, op=7)]
        cert = certificate(0, 0, certified_batch)
        own_batch = [request(0, op=666, client=999)]
        evil = Sync(
            sender=1,
            regency=1,
            cid=0,
            batch=own_batch,
            value_hash=batch_hash(0, own_batch),
            proofs=[
                StopData(1, 1, -1, None),
                StopData(2, 1, -1, cert),
                StopData(3, 1, -1, None),
            ],
        )
        replica.deliver(1, evil)
        assert replica.regency == 0  # refused outright

    def test_honest_sync_adopted(self, cluster):
        replica = cluster.replicas[2]
        batch = [request(0, op=7)]
        sync = Sync(
            sender=1,
            regency=1,
            cid=0,
            batch=batch,
            value_hash=batch_hash(0, batch),
            proofs=[StopData(i, 1, -1, None) for i in (1, 2, 3)],
        )
        replica.deliver(1, sync)
        assert replica.regency == 1
        inst = replica.instances[0]
        assert inst.proposed_hash[1] == batch_hash(0, batch)
        assert 1 in inst.write_sent


class TestEmptySyncRound:
    """Satellite: a value selection with no STOPDATA reports must fail
    loudly, not with max()'s bare ValueError."""

    def test_send_sync_with_no_reports_raises_named_error(self, cluster):
        import pytest

        from repro.smart.synchronization import EmptySyncRound

        synchronizer = cluster.replicas[1].synchronizer
        with pytest.raises(EmptySyncRound, match="no STOPDATA reports"):
            synchronizer._send_sync(1, {})

    def test_empty_sync_round_is_a_runtime_error(self):
        from repro.smart.synchronization import EmptySyncRound

        assert issubclass(EmptySyncRound, RuntimeError)

    def test_normal_path_unaffected(self, cluster):
        """A singleton report set (the n-f threshold at n=4, f=1 is 3,
        but the guard only rejects *empty*) still produces a SYNC."""
        synchronizer = cluster.replicas[1].synchronizer
        reports = {
            1: StopData(
                sender=1,
                regency=1,
                last_executed_cid=-1,
                write_certificate=None,
                pending=[request(0)],
            )
        }
        synchronizer._send_sync(1, reports)
        assert 1 in synchronizer._sync_sent
