"""One harness, four ordering backends (solo / Kafka / BFT-SMaRt / SmartBFT).

Runs the *same* seeded workload -- pinned envelope ids, identical
channel configuration, identical cutting parameters -- through any of
the repository's ordering services and commits the output through the
same :class:`~repro.fabric.committer.CommittingPeer`, armed with the
backend's block-validity policy.  Because raw envelopes hash by their
pinned ids and all backends share the :class:`BlockCutter`, a correct
run produces the *byte-identical* block header chain on every backend,
which is what the conformance battery
(``tests/test_orderer_conformance.py``) asserts.

The harness also accounts **dissemination bandwidth**: bytes on the
wire from the ordering service to its delivery clients (the frontend
for the BFT backends, the committing peer for the CFT ones), the
backend-differentiating cost the SmartBFT design attacks -- ``n`` full
block copies under BFT-SMaRt copy-matching versus one copy carrying a
``2f+1`` signature quorum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import SimulatedECDSA
from repro.fabric.block import Block
from repro.fabric.blockpolicy import (
    AcceptAllBlocks,
    BlockValidityPolicy,
    SignatureCountPolicy,
    SignatureQuorumPolicy,
)
from repro.fabric.channel import ChannelConfig
from repro.fabric.committer import CommittingPeer
from repro.fabric.envelope import Envelope, OversizedPayloadError, check_payload_size
from repro.fabric.orderers.kafka import KafkaCluster, KafkaOrderer
from repro.fabric.orderers.solo import SoloOrderer
from repro.ordering.service import (
    FRONTEND_ID_BASE,
    OrderingServiceConfig,
    build_ordering_service,
)
from repro.sim.core import Simulator
from repro.sim.monitor import StatsRegistry
from repro.sim.network import ConstantLatency, Network
from repro.sim.randomness import RandomStreams
from repro.smart.view import one_correct_size

#: every ordering backend the repository implements
BACKENDS = ("solo", "kafka", "bftsmart", "smartbft")

#: network id of the harness's committing peer
PEER_NAME = "peer0"


@dataclass
class WorkloadSpec:
    """The seeded workload every backend replays identically."""

    num_envelopes: int = 24
    payload_size: int = 256
    block_size: int = 4
    preferred_max_bytes: int = 512 * 1024
    absolute_max_bytes: int = 1024 * 1024
    batch_timeout: float = 0.25
    inter_arrival: float = 0.005
    #: envelope indices submitted with an oversized payload (they must
    #: be rejected at ingress by every backend)
    oversized_at: Sequence[int] = ()
    f: int = 1
    delta: int = 0
    seed: int = 0
    request_timeout: float = 0.5
    deadline: float = 60.0
    settle: float = 1.0
    channel_id: str = "ch0"

    def channel_config(self) -> ChannelConfig:
        return ChannelConfig(
            channel_id=self.channel_id,
            max_message_count=self.block_size,
            preferred_max_bytes=self.preferred_max_bytes,
            absolute_max_bytes=self.absolute_max_bytes,
            batch_timeout=self.batch_timeout,
        )

    def make_envelope(self, index: int) -> Envelope:
        size = self.payload_size
        if index in set(self.oversized_at):
            size = self.absolute_max_bytes + 1
        envelope = Envelope.raw(
            self.channel_id, payload_size=size, submitter="client"
        )
        envelope.envelope_id = index  # pinned: identical digests everywhere
        return envelope


@dataclass
class BackendRun:
    """What one backend produced for a :class:`WorkloadSpec`."""

    backend: str
    spec: WorkloadSpec
    peer: CommittingPeer
    submitted: int
    rejected_at_ingress: int
    dissemination_bytes: int
    finished: bool
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def committed_blocks(self) -> List[Block]:
        return [record.block for record in self.peer.commits]

    @property
    def header_digests(self) -> List[bytes]:
        return [block.header.digest() for block in self.committed_blocks]

    @property
    def committed_envelope_ids(self) -> List[Tuple[int, ...]]:
        return [
            tuple(envelope.envelope_id for envelope in block.envelopes)
            for block in self.committed_blocks
        ]

    @property
    def committed_flat_ids(self) -> List[int]:
        return [eid for block in self.committed_envelope_ids for eid in block]


def policy_for_backend(
    backend: str,
    f: int,
    registry: Optional[KeyRegistry],
    orderer_names: Optional[set] = None,
) -> BlockValidityPolicy:
    """The committer-side block-validity policy each backend warrants."""
    if backend in ("solo", "kafka"):
        return AcceptAllBlocks()
    if backend == "bftsmart":
        # frontends matched 2f+1 copies upstream; f+1 valid signatures
        # prove a correct node vouched for the merged block
        return SignatureCountPolicy(
            one_correct_size(f), registry=registry, orderer_names=orderer_names
        )
    if backend == "smartbft":
        return SignatureQuorumPolicy(
            f, registry=registry, orderer_names=orderer_names
        )
    raise ValueError(f"unknown backend {backend!r}")


def run_backend_workload(backend: str, spec: Optional[WorkloadSpec] = None) -> BackendRun:
    """Replay ``spec`` through ``backend`` and commit via one peer."""
    spec = spec or WorkloadSpec()
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if backend in ("solo", "kafka"):
        return _run_cft(backend, spec)
    return _run_bft(backend, spec)


def _expected_committed(spec: WorkloadSpec) -> int:
    return spec.num_envelopes - len(set(spec.oversized_at))


# ----------------------------------------------------------------------
# solo / Kafka (crash-fault backends)
# ----------------------------------------------------------------------
def _run_cft(backend: str, spec: WorkloadSpec) -> BackendRun:
    sim = Simulator()
    streams = RandomStreams(spec.seed)
    network = Network(
        sim, ConstantLatency(0.0001), default_bandwidth_bps=1e9, streams=streams
    )
    stats = StatsRegistry()
    registry = KeyRegistry(scheme=SimulatedECDSA(), rng=streams.stream("keys"))
    identity = registry.enroll("orderer0", org="ordererorg0")
    channel = spec.channel_config()

    extras: Dict[str, Any] = {}
    if backend == "solo":
        orderer = SoloOrderer(
            sim, network, "orderer0", identity, channel, cpu=None, stats=stats
        )
        network.register("orderer0", orderer)
    else:
        cluster = KafkaCluster(sim, network, num_brokers=3)
        orderer = KafkaOrderer(
            sim, network, "orderer0", identity, cluster, channel,
            cpu=None, stats=stats,
        )
        extras["cluster"] = cluster

    peer = CommittingPeer(
        sim,
        network,
        PEER_NAME,
        channel,
        registry=registry,
        orderer_names={"orderer0"},
        block_policy=policy_for_backend(backend, spec.f, registry, {"orderer0"}),
    )
    network.register(PEER_NAME, peer)
    orderer.attach_receiver(PEER_NAME)

    rejected = 0

    def _submit(index: int) -> None:
        nonlocal rejected
        envelope = spec.make_envelope(index)
        # same AbsoluteMaxBytes ingress gate the BFT frontends apply
        try:
            check_payload_size(envelope.payload_ref(), spec.absolute_max_bytes)
        except OversizedPayloadError:
            rejected += 1
            return
        orderer.submit(envelope)

    for index in range(spec.num_envelopes):
        sim.schedule(0.001 + index * spec.inter_arrival, _submit, index)

    expected = _expected_committed(spec)

    def _done() -> bool:
        return sum(len(r.block.envelopes) for r in peer.commits) >= expected

    finished = sim.run_until(_done, deadline=spec.deadline)
    sim.run(until=sim.now + spec.settle)

    dissemination = int(
        network.stats.bytes_by_src.get("orderer0", {}).get(PEER_NAME, 0)
    )
    return BackendRun(
        backend=backend,
        spec=spec,
        peer=peer,
        submitted=spec.num_envelopes - rejected,
        rejected_at_ingress=rejected,
        dissemination_bytes=dissemination,
        finished=finished,
        extras=extras,
    )


# ----------------------------------------------------------------------
# BFT-SMaRt / SmartBFT (Byzantine backends, shared deployment builder)
# ----------------------------------------------------------------------
def _run_bft(backend: str, spec: WorkloadSpec) -> BackendRun:
    config = OrderingServiceConfig(
        orderer=backend,
        f=spec.f,
        delta=spec.delta,
        channel=spec.channel_config(),
        num_frontends=1,
        physical_cores=None,
        request_timeout=spec.request_timeout,
        enable_batch_timeout=True,
        seed=spec.seed,
    )
    service = build_ordering_service(config)
    orderer_names = {f"orderer{i}" for i in range(config.n)}
    peer = CommittingPeer(
        service.sim,
        service.network,
        PEER_NAME,
        spec.channel_config(),
        registry=service.registry,
        orderer_names=orderer_names,
        block_policy=policy_for_backend(
            backend, spec.f, service.registry, orderer_names
        ),
    )
    service.network.register(PEER_NAME, peer)
    service.frontends[0].attach_peer(PEER_NAME)

    rejected = 0

    def _submit(index: int) -> None:
        nonlocal rejected
        envelope = spec.make_envelope(index)
        try:
            service.submit(envelope, frontend_index=0)
        except OversizedPayloadError:
            rejected += 1

    for index in range(spec.num_envelopes):
        service.sim.schedule(0.001 + index * spec.inter_arrival, _submit, index)

    expected = _expected_committed(spec)

    def _done() -> bool:
        return sum(len(r.block.envelopes) for r in peer.commits) >= expected

    finished = service.sim.run_until(_done, deadline=spec.deadline)
    service.run(spec.settle)

    by_src = service.network.stats.bytes_by_src
    dissemination = int(
        sum(
            by_src.get(i, {}).get(FRONTEND_ID_BASE, 0)
            for i in range(config.n)
        )
    )
    return BackendRun(
        backend=backend,
        spec=spec,
        peer=peer,
        submitted=spec.num_envelopes - rejected,
        rejected_at_ingress=rejected,
        dissemination_bytes=dissemination,
        finished=finished,
        extras={"service": service},
    )
