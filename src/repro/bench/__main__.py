"""Benchmark runner CLI: ``python -m repro.bench``.

Subcommands::

    python -m repro.bench list
    python -m repro.bench run --smoke                 # -> BENCH_smoke.json
    python -m repro.bench run --only fig8 --only eq1  # subset, full matrices
    python -m repro.bench run --smoke --out path.json --repeats 3
    python -m repro.bench run --spec benchmarks/specs/bakeoff.toml
    python -m repro.bench compare baseline.json candidate.json
    python -m repro.bench compare baseline.json candidate.json --tolerance 0.1
    python -m repro.bench report a.json b.json --names baseline,candidate
    python -m repro.bench report BENCH_full.json --by orderer
    python -m repro.bench history append BENCH_full.json --dir benchmarks/history

``compare`` exits 0 when the candidate is clean, 1 on a regression
(see :mod:`repro.bench.compare`), 2 on usage/schema errors.  ``report``
(:mod:`repro.bench.report`) and ``history`` exit 0 on success, 2 on
usage/schema errors.

The legacy figure-regeneration interface is kept verbatim::

    python -m repro.bench --figure 6
    python -m repro.bench --figure 7 --orderers 4 --block-size 10
    python -m repro.bench --figure all
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.figures import (
    BLOCK_SIZES,
    CLUSTER_SIZES,
    conclusion_comparison,
    figure6,
    figure7_panel,
    figure8,
    figure9,
    wheat_ablation,
)
from repro.bench.model import OrderingCapacityModel, eq1_bound
from repro.bench.tables import (
    render_ablation,
    render_conclusion,
    render_figure6,
    render_figure7_panel,
    render_geo_results,
)


# ----------------------------------------------------------------------
# Legacy figure regeneration (--figure N)
# ----------------------------------------------------------------------
def run_figure6(_args) -> None:
    print(render_figure6(figure6()))


def run_figure7(args) -> None:
    clusters = [args.orderers] if args.orderers else CLUSTER_SIZES
    blocks = [args.block_size] if args.block_size else BLOCK_SIZES
    for n in clusters:
        for bs in blocks:
            print(render_figure7_panel(n, bs, figure7_panel(n, bs)))
            print()


def run_figure8(args) -> None:
    results = figure8(duration=args.duration, rate=args.rate)
    print(render_geo_results("Figure 8: geo latency, blocks of 10 envelopes", results))


def run_figure9(args) -> None:
    results = figure9(duration=args.duration, rate=args.rate)
    print(render_geo_results("Figure 9: geo latency, blocks of 100 envelopes", results))


def run_eq1(_args) -> None:
    print("Equation 1: TP_os <= min(TP_sign*bs, TP_bftsmart)")
    print(f"{'n':>3} {'es':>6} {'bs':>4} {'r':>3} | {'predicted':>10} | {'bound':>10}")
    for n in CLUSTER_SIZES:
        model = OrderingCapacityModel(n=n)
        for es in (40, 1024, 4096):
            for bs in BLOCK_SIZES:
                for r in (1, 32):
                    predicted = model.throughput(es, bs, r)
                    bound = eq1_bound(bs, es, r, n=n)
                    print(
                        f"{n:>3} {es:>6} {bs:>4} {r:>3} | {predicted:>10.0f} | {bound:>10.0f}"
                    )
    print()
    print(render_conclusion(conclusion_comparison()))


def run_ablation(args) -> None:
    print(render_ablation(wheat_ablation(duration=args.duration)))


RUNNERS = {
    "6": run_figure6,
    "7": run_figure7,
    "8": run_figure8,
    "9": run_figure9,
    "eq1": run_eq1,
    "ablation": run_ablation,
}


def legacy_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "--figure",
        required=True,
        choices=sorted(RUNNERS) + ["all"],
        help="which figure/table to regenerate",
    )
    parser.add_argument("--orderers", type=int, choices=CLUSTER_SIZES, default=None)
    parser.add_argument("--block-size", type=int, choices=BLOCK_SIZES, default=None)
    parser.add_argument("--duration", type=float, default=6.0,
                        help="simulated measurement seconds (figures 8/9)")
    parser.add_argument("--rate", type=float, default=1100.0,
                        help="offered load, tx/s (figures 8/9)")
    args = parser.parse_args(argv)

    targets = sorted(RUNNERS) if args.figure == "all" else [args.figure]
    for target in targets:
        RUNNERS[target](args)
        print()
    return 0


# ----------------------------------------------------------------------
# Harness subcommands (list / run / compare)
# ----------------------------------------------------------------------
def cmd_list(_args) -> int:
    from repro.bench import suite  # noqa: F401 - populates the registry
    from repro.bench.harness import REGISTRY

    for benchmark in REGISTRY:
        full = sum(1 for _ in benchmark.points("full"))
        smoke = sum(1 for _ in benchmark.points("smoke"))
        print(
            f"{benchmark.name:<20} {full:>4} points "
            f"({smoke} smoke)  {benchmark.description.splitlines()[0]}"
        )
    return 0


def cmd_run(args) -> int:
    from repro.bench import suite  # noqa: F401 - populates the registry
    from repro.bench.harness import (
        REGISTRY,
        render_suite,
        run_suite,
        write_result,
    )

    mode = "smoke" if args.smoke else "full"
    run_name = args.name or mode
    repeats = args.repeats
    base_seed = args.seed
    phases = args.phases
    out = args.out
    if args.spec is not None:
        from repro.bench.spec import SpecError, describe_spec, expand_spec, load_spec

        if args.only:
            print("error: --only and --spec are mutually exclusive",
                  file=sys.stderr)
            return 2
        try:
            spec = load_spec(args.spec)
            benchmarks = expand_spec(spec, REGISTRY)
        except (OSError, SpecError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        # explicit CLI flags beat the spec's [run] table
        if not args.smoke:
            mode = spec.mode
        run_name = args.name or spec.name
        repeats = args.repeats if args.repeats is not None else spec.repeats
        base_seed = args.seed if args.seed is not None else spec.seed
        phases = args.phases or spec.phases
        out = args.out or spec.default_out
        if not args.quiet:
            print(describe_spec(spec, benchmarks))
    else:
        try:
            benchmarks = REGISTRY.select(args.only)
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    progress = None if args.quiet else lambda line: print(f"  {line}", flush=True)
    result = run_suite(
        benchmarks,
        run_name=run_name,
        mode=mode,
        repeats=repeats,
        base_seed=base_seed,
        progress=progress,
        phases=phases,
    )
    path = out or f"BENCH_{run_name}.json"
    write_result(result, path)
    if not args.quiet:
        print()
        print(render_suite(result))
    print(f"\n[written to {path}]")
    return 0


def cmd_compare(args) -> int:
    from repro.bench.compare import compare_results, gate
    from repro.bench.harness import SchemaError, load_result

    try:
        baseline = load_result(args.baseline)
        candidate = load_result(args.candidate)
    except (OSError, ValueError, SchemaError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = compare_results(
        baseline, candidate, tolerance=args.tolerance, alpha=args.alpha
    )
    print(report.render())
    code = gate(report, strict_missing=args.strict_missing)
    if code != 0:
        print("bench-compare: FAIL", file=sys.stderr)
    return code


def cmd_report(args) -> int:
    import os

    from repro.bench.harness import SchemaError, load_history
    from repro.bench.report import (
        ReportError,
        build_report,
        render_github_summary,
        render_html,
        render_markdown,
        report_to_json_dict,
    )

    names = None
    if args.names is not None:
        names = [n.strip() for n in args.names.split(",") if n.strip()]
    try:
        snapshots = (
            load_history(args.history, limit=args.history_limit)
            if args.history
            else None
        )
        report = build_report(
            args.results,
            by_axis=args.by,
            names=names,
            alpha=args.alpha,
            history_snapshots=snapshots,
        )
    except (OSError, ReportError, SchemaError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    markdown = render_markdown(report, full_detail=args.full_detail)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(markdown)
        print(f"[markdown written to {args.out}]")
    else:
        print(markdown)
    if args.html:
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(render_html(markdown))
        print(f"[html written to {args.html}]")
    if args.json:
        import json as json_module

        with open(args.json, "w", encoding="utf-8") as fh:
            json_module.dump(
                report_to_json_dict(report), fh, indent=2, allow_nan=False
            )
            fh.write("\n")
        print(f"[json written to {args.json}]")
    if args.github_summary:
        summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
        if summary_path:
            with open(summary_path, "a", encoding="utf-8") as fh:
                fh.write(render_github_summary(report))
                fh.write("\n")
            print(f"[ranking appended to {summary_path}]")
        else:
            print(
                "[--github-summary: GITHUB_STEP_SUMMARY not set, skipped]",
                file=sys.stderr,
            )
    return 0


def cmd_history(args) -> int:
    from repro.bench.harness import SchemaError, append_history, load_history

    if args.history_command == "append":
        try:
            path = append_history(args.result, args.dir, cap=args.cap)
        except (OSError, ValueError, SchemaError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"[snapshot written to {path}]")
        return 0
    # list
    try:
        snapshots = load_history(args.dir)
    except (OSError, ValueError, SchemaError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for name, document in snapshots:
        print(
            f"{name}  run={document.get('run_name')} "
            f"mode={document.get('mode')} "
            f"benchmarks={len(document.get('benchmarks', []))}"
        )
    print(f"{len(snapshots)} snapshot(s) in {args.dir}")
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if any(arg.startswith("--figure") for arg in argv):
        return legacy_main(argv)

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Declarative benchmark harness (see docs/BENCHMARKS.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered benchmarks")

    run_parser = sub.add_parser("run", help="run registered benchmarks")
    run_parser.add_argument(
        "--smoke", action="store_true",
        help="run the seconds-fast smoke matrices instead of the full ones",
    )
    run_parser.add_argument(
        "--only", action="append", default=None, metavar="PATTERN",
        help="run only benchmarks whose name contains PATTERN (repeatable)",
    )
    run_parser.add_argument(
        "--spec", default=None, metavar="FILE",
        help="expand a repro-bench-spec/1 TOML experiment spec instead "
        "of --only (see docs/BENCHMARKS.md, 'Declarative sweeps')",
    )
    run_parser.add_argument(
        "--repeats", type=int, default=None,
        help="override each benchmark's repeat count",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None, help="override the base seed"
    )
    run_parser.add_argument(
        "--name", default=None,
        help="run name recorded in the result (default: smoke/full)",
    )
    run_parser.add_argument(
        "--out", default=None,
        help="output path (default: BENCH_<name>.json in the cwd)",
    )
    run_parser.add_argument(
        "--phases", action="store_true",
        help="attach a repro.obs hub per repeat and embed per-phase "
        "latency breakdowns in the result (benchmarks that build an "
        "ordering service only)",
    )
    run_parser.add_argument("--quiet", action="store_true")

    compare_parser = sub.add_parser(
        "compare", help="gate a candidate result against a baseline"
    )
    compare_parser.add_argument("baseline")
    compare_parser.add_argument("candidate")
    compare_parser.add_argument(
        "--tolerance", type=float, default=0.05,
        help="relative median tolerance before a move counts (default 0.05)",
    )
    compare_parser.add_argument(
        "--alpha", type=float, default=0.05,
        help="Mann-Whitney significance level (default 0.05)",
    )
    compare_parser.add_argument(
        "--strict-missing", action="store_true",
        help="fail when baseline coverage is missing from the candidate",
    )

    report_parser = sub.add_parser(
        "report",
        help="N-way statistical ranking report over result documents",
    )
    report_parser.add_argument(
        "results", nargs="+",
        help="result JSON files: two+ (one variant each), or exactly "
        "one with --by AXIS",
    )
    report_parser.add_argument(
        "--by", default=None, metavar="AXIS",
        help="split a single result file into variants along a matrix "
        "axis (e.g. --by orderer on the bakeoff benchmark)",
    )
    report_parser.add_argument(
        "--names", default=None, metavar="A,B,...",
        help="comma-separated variant names for the result files "
        "(default: each document's run_name)",
    )
    report_parser.add_argument(
        "--alpha", type=float, default=0.05,
        help="significance level for pairwise tests and the critical "
        "difference (default 0.05)",
    )
    report_parser.add_argument(
        "--out", default=None,
        help="write the markdown report here (default: stdout)",
    )
    report_parser.add_argument(
        "--json", default=None,
        help="also write the repro-bench-report/1 JSON document here",
    )
    report_parser.add_argument(
        "--html", default=None,
        help="also write a self-contained HTML rendering here "
        "(tables only, inline CSS, no plots)",
    )
    report_parser.add_argument(
        "--history", default=None, metavar="DIR",
        help="render regression-history sparklines from the snapshot "
        "directory (see 'history append')",
    )
    report_parser.add_argument(
        "--history-limit", type=int, default=None,
        help="use only the newest N history snapshots",
    )
    report_parser.add_argument(
        "--full-detail", action="store_true",
        help="render every significant pairwise matrix (no per-benchmark cap)",
    )
    report_parser.add_argument(
        "--github-summary", action="store_true",
        help="append the ranking section to $GITHUB_STEP_SUMMARY when set",
    )

    history_parser = sub.add_parser(
        "history", help="manage regression-history snapshots"
    )
    history_sub = history_parser.add_subparsers(
        dest="history_command", required=True
    )
    append_parser = history_sub.add_parser(
        "append", help="snapshot a result document into the history dir"
    )
    append_parser.add_argument("result", help="a repro-bench-result/1 file")
    append_parser.add_argument(
        "--dir", default="benchmarks/history",
        help="history directory (default benchmarks/history)",
    )
    append_parser.add_argument(
        "--cap", type=int, default=30,
        help="retain at most this many snapshots (default 30)",
    )
    list_parser = history_sub.add_parser(
        "list", help="list the snapshots in the history dir"
    )
    list_parser.add_argument(
        "--dir", default="benchmarks/history",
        help="history directory (default benchmarks/history)",
    )

    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "report":
        return cmd_report(args)
    if args.command == "history":
        return cmd_history(args)
    return cmd_compare(args)


if __name__ == "__main__":
    sys.exit(main())
