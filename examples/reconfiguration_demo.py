#!/usr/bin/env python
"""Durability and reconfiguration (paper §5.2).

The ordering service's replicated state is tiny -- the next block
number and the previous header hash -- so checkpoints are cheap and
new nodes catch up fast.  This example runs the BFT-SMaRt layer with a
counter application to show:

1. frequent checkpoints truncating the operation log;
2. a crashed replica recovering through state transfer;
3. a fifth replica added to the group through an *ordered*
   reconfiguration command, then serving requests.

Run:  python examples/reconfiguration_demo.py
"""

from repro.sim import ConstantLatency, Network, Simulator
from repro.smart import (
    ReconfigurationClient,
    ReplicaConfig,
    ServiceProxy,
    ServiceReplica,
    StateMachine,
    View,
)


class Counter(StateMachine):
    def __init__(self):
        self.total = 0

    def execute_batch(self, cid, requests, regency, tentative=False):
        results = []
        for request in requests:
            self.total += request.operation
            results.append(self.total)
        return results

    def get_state(self):
        return self.total

    def set_state(self, state):
        self.total = state or 0


def main() -> None:
    sim = Simulator()
    network = Network(sim, ConstantLatency(0.0005))
    view = View(0, (0, 1, 2, 3), f=1)
    config = ReplicaConfig(checkpoint_period=5, request_timeout=0.5)
    apps = [Counter() for _ in range(4)]
    replicas = []
    for i in range(4):
        replica = ServiceReplica(sim, network, i, view, apps[i], config=config)
        network.register(i, replica)
        replicas.append(replica)
    proxy = ServiceProxy(sim, network, 1000, view)

    print("1. ordering 12 increments with checkpoint_period=5 ...")
    for _ in range(12):
        sim.drain([proxy.invoke(1)], sim.now + 10.0)
    replica = replicas[0]
    print(f"   totals: {[app.total for app in apps]}")
    print(f"   checkpoints taken: {replica.counters.checkpoints}, "
          f"log length now {len(replica.log)} "
          f"(truncated at cid {replica.log.checkpoint.cid})")

    print("2. replica 3 crashes; 10 more increments; then it recovers ...")
    replicas[3].crash()
    for _ in range(10):
        sim.drain([proxy.invoke(1)], sim.now + 10.0)
    print(f"   while down, replica 3 is stuck at total={apps[3].total}")
    replicas[3].recover()
    sim.run(until=sim.now + 3.0)
    print(f"   after state transfer: total={apps[3].total} "
          f"(transfers completed: {replicas[3].state_transfer.transfers_completed})")

    print("3. adding replica 4 through an ordered reconfiguration ...")
    new_app = Counter()
    new_replica = ServiceReplica(sim, network, 4, view, new_app, config=config)
    network.register(4, new_replica)
    admin = ReconfigurationClient(ServiceProxy(sim, network, 3000, view))
    future = admin.add_replica(4)
    sim.drain([future], sim.now + 20.0)
    print(f"   new view: {future.value}")
    new_replica.view = replicas[0].view
    new_replica.state_transfer.start()
    sim.run(until=sim.now + 3.0)
    print(f"   replica 4 caught up: total={new_app.total}")

    proxy.update_view(replicas[0].view)
    sim.drain([proxy.invoke(1)], sim.now + 10.0)
    sim.run(until=sim.now + 1.0)
    print(f"   one more increment lands everywhere: "
          f"{[app.total for app in apps + [new_app]]}")


if __name__ == "__main__":
    main()
