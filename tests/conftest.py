"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from repro.sim import ConstantLatency, Network, Simulator
from repro.smart import (
    ReplicaConfig,
    ServiceProxy,
    ServiceReplica,
    StateMachine,
    View,
    wheat_view,
)


class CounterApp(StateMachine):
    """A tiny deterministic state machine used across replica tests.

    State is a running total plus the full operation history, so any
    divergence between replicas is visible.
    """

    def __init__(self):
        self.total = 0
        self.history: List[int] = []

    def execute_batch(self, cid, requests, regency, tentative=False):
        results = []
        for request in requests:
            self.total += request.operation
            self.history.append(request.operation)
            results.append(self.total)
        return results

    def get_state(self):
        return {"total": self.total, "history": list(self.history)}

    def set_state(self, state):
        if state is None:
            self.total = 0
            self.history = []
        else:
            self.total = state["total"]
            self.history = list(state["history"])


class Cluster:
    """A wired BFT-SMaRt cluster over a fresh simulator."""

    def __init__(
        self,
        n: int = 4,
        f: int = 1,
        delta: int = 0,
        tentative: bool = False,
        latency: float = 0.0005,
        request_timeout: float = 0.5,
        checkpoint_period: int = 1000,
        vmax_holders: Optional[Tuple[int, ...]] = None,
    ):
        self.sim = Simulator()
        self.network = Network(self.sim, ConstantLatency(latency))
        if delta > 0:
            self.view = wheat_view(
                0, tuple(range(n)), f=f, delta=delta, vmax_holders=vmax_holders
            )
        else:
            self.view = View(0, tuple(range(n)), f)
        self.config = ReplicaConfig(
            tentative_execution=tentative,
            request_timeout=request_timeout,
            checkpoint_period=checkpoint_period,
        )
        self.apps = [CounterApp() for _ in range(n)]
        self.replicas = []
        for i in range(n):
            replica = ServiceReplica(
                self.sim, self.network, i, self.view, self.apps[i], config=self.config
            )
            self.network.register(i, replica)
            self.replicas.append(replica)
        self._next_client = 1000

    def proxy(self, accept_tentative: bool = False, **kwargs) -> ServiceProxy:
        client_id = self._next_client
        self._next_client += 1
        return ServiceProxy(
            self.sim,
            self.network,
            client_id,
            self.view,
            accept_tentative=accept_tentative,
            **kwargs,
        )

    def run(self, duration: float) -> None:
        self.sim.run(until=self.sim.now + duration)

    def drain(self, futures, deadline: float = 10.0) -> bool:
        return self.sim.drain(futures, self.sim.now + deadline)

    def histories_agree(self) -> bool:
        reference = None
        for replica, app in zip(self.replicas, self.apps):
            if replica.crashed:
                continue
            if reference is None:
                reference = app.history
            elif app.history != reference:
                return False
        return True

    def prefix_consistent(self) -> bool:
        """Every replica's history is a prefix of the longest one."""
        histories = [app.history for app in self.apps]
        longest = max(histories, key=len)
        return all(longest[: len(h)] == h for h in histories)


@pytest.fixture
def cluster():
    return Cluster()


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def network(sim):
    return Network(sim, ConstantLatency(0.0005))
