"""Named, seeded random streams.

Every source of randomness in an experiment draws from its own named
stream so that adding a new random component never perturbs the draws
seen by existing ones.  Streams are derived deterministically from the
experiment seed and the stream name.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A family of independent :class:`random.Random` streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def __getitem__(self, name: str) -> random.Random:
        return self.stream(name)
