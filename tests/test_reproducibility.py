"""Bit-for-bit reproducibility of whole experiments.

The simulator is the instrument of this reproduction: identical seeds
must produce identical measurements, and different seeds must sample
the same distribution (close but not identical latencies).
"""

import pytest

from repro.bench.figures import geo_latency_experiment, simulate_lan_throughput
from repro.fabric.channel import ChannelConfig
from repro.fabric.envelope import Envelope
from repro.ordering import OrderingServiceConfig, build_ordering_service


class TestSeededReproducibility:
    def test_geo_experiment_identical_for_same_seed(self):
        runs = [
            geo_latency_experiment(
                "wheat", envelope_size=1024, block_size=10,
                rate=900, duration=3.0, warmup=1.0, seed=7,
            )
            for _ in range(2)
        ]
        for a, b in zip(*runs):
            assert a.median == b.median
            assert a.p90 == b.p90
            assert a.samples == b.samples
            assert a.throughput == b.throughput

    def test_geo_experiment_differs_across_seeds(self):
        a = geo_latency_experiment(
            "wheat", envelope_size=1024, block_size=10,
            rate=900, duration=3.0, warmup=1.0, seed=1,
        )
        b = geo_latency_experiment(
            "wheat", envelope_size=1024, block_size=10,
            rate=900, duration=3.0, warmup=1.0, seed=2,
        )
        assert any(x.median != y.median for x, y in zip(a, b))
        # ... but they sample the same distribution
        for x, y in zip(a, b):
            assert x.median == pytest.approx(y.median, rel=0.15)

    def test_lan_simulation_identical_for_same_seed(self):
        first = simulate_lan_throughput(
            4, 10, 1024, 2, duration=0.5, warmup=0.2, seed=3
        )
        second = simulate_lan_throughput(
            4, 10, 1024, 2, duration=0.5, warmup=0.2, seed=3
        )
        assert first.generated_rate == second.generated_rate
        assert first.delivered_rate == second.delivered_rate

    def test_service_block_chain_identical_for_same_seed(self):
        def run(seed):
            service = build_ordering_service(
                OrderingServiceConfig(
                    f=1,
                    channel=ChannelConfig("ch0", max_message_count=5),
                    physical_cores=None,
                    latency=None,  # default LAN with no jitter
                    seed=seed,
                )
            )
            structure = []
            service.frontends[0].on_block.append(
                lambda b: structure.append(
                    (b.number, [e.payload_size for e in b.envelopes])
                )
            )
            for i in range(20):
                service.submit(Envelope.raw("ch0", 100 + i))
            service.run(3.0)
            return structure, service.nodes[0].blocks_created

        # envelope ids differ between runs (global counter), so compare
        # the delivered structure: block numbers and payload sizes
        assert run(5) == run(5)
