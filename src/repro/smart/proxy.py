"""Client-side service proxy (BFT-SMaRt's ``ServiceProxy``).

Sends requests to every replica of the current view and matches their
replies.  Two delivery modes mirror the paper:

- **final** replies (classic BFT-SMaRt): wait for matching replies
  from replicas with combined weight > f·Vmax (i.e. at least one
  correct replica vouches for the result);
- **tentative** replies (WHEAT): replies arrive one communication step
  earlier but the client must wait for a full WRITE-quorum's weight of
  matching replies (paper section 4).

The ordering-service frontends use :meth:`invoke_async`, which does
not wait for per-request replies at all -- generated blocks flow back
through the custom replier instead (paper section 5.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Optional


from repro.crypto.hashing import sha256
from repro.sim.core import Future, Simulator
from repro.sim.network import Network
from repro.smart.messages import ClientRequest, Reply
from repro.smart.view import View


def _result_key(result: Any) -> bytes:
    """Canonical digest used to compare replies from different replicas."""
    try:
        return sha256("reply", result)
    except TypeError:
        return sha256("reply-repr", repr(result))


@dataclass
class _PendingInvocation:
    request: ClientRequest
    future: Future
    final_weights: Dict[bytes, Dict[int, float]]
    tentative_weights: Dict[bytes, Dict[int, float]]
    results: Dict[bytes, Any]
    retries: int = 0


class ServiceProxy:
    """One client's gateway to the replicated service."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        client_id: int,
        view: View,
        accept_tentative: bool = False,
        invoke_timeout: float = 4.0,
        max_retries: int = 8,
        register: bool = True,
        backoff_factor: float = 2.0,
        max_backoff: float = 30.0,
        jitter_fraction: float = 0.1,
        rng: Optional[random.Random] = None,
    ):
        self.sim = sim
        self.network = network
        self.client_id = client_id
        self.view = view
        self.accept_tentative = accept_tentative
        self.invoke_timeout = invoke_timeout
        self.max_retries = max_retries
        #: retransmission backoff: the k-th retry waits
        #: ``invoke_timeout * backoff_factor**k`` (capped at
        #: ``max_backoff``), spread by ``jitter_fraction`` when a seeded
        #: ``rng`` is supplied -- with no rng the backoff is pure
        #: exponential, so the proxy never touches ambient randomness
        self.backoff_factor = backoff_factor
        self.max_backoff = max_backoff
        self.jitter_fraction = jitter_fraction
        self.rng = rng
        self._sequence = 0
        self._pending: Dict[int, _PendingInvocation] = {}
        self.replies_received = 0
        #: optional repro.obs.Observability hub (attached externally)
        self.obs = None
        if register:
            network.register(client_id, self)

    # ------------------------------------------------------------------
    # invocation
    # ------------------------------------------------------------------
    def next_sequence(self) -> int:
        seq = self._sequence
        self._sequence += 1
        return seq

    def invoke(
        self, operation: Any, size_bytes: int = 0, reconfig: bool = False
    ) -> Future:
        """Submit an operation; the future resolves with the result."""
        request = ClientRequest(
            client_id=self.client_id,
            sequence=self.next_sequence(),
            operation=operation,
            size_bytes=size_bytes,
            reconfig=reconfig,
            submit_time=self.sim.now,
        )
        invocation = _PendingInvocation(
            request=request,
            future=self.sim.future(),
            final_weights={},
            tentative_weights={},
            results={},
        )
        self._pending[request.sequence] = invocation
        if self.obs is not None:
            self.obs.on_invoke(self.client_id, asynchronous=False)
        self._transmit(request)
        self.sim.post(self.invoke_timeout, self._check_retry, request.sequence)
        return invocation.future

    def invoke_async(self, operation: Any, size_bytes: int = 0) -> ClientRequest:
        """Fire-and-forget ordering (the ordering-service mode)."""
        request = ClientRequest(
            client_id=self.client_id,
            sequence=self.next_sequence(),
            operation=operation,
            size_bytes=size_bytes,
            submit_time=self.sim.now,
        )
        if self.obs is not None:
            self.obs.on_invoke(self.client_id, asynchronous=True)
        self._transmit(request)
        return request

    def _transmit(self, request: ClientRequest) -> None:
        self.network.broadcast(
            self.client_id, self.view.processes, request, request.wire_size()
        )

    def retry_delay(self, retries: int) -> float:
        """Wait before the next retransmission check.

        Capped exponential backoff -- ``invoke_timeout * factor**k``,
        never more than ``max_backoff`` -- with multiplicative jitter
        from the proxy's seeded rng (when one is wired) so a thundering
        herd of same-deadline clients decorrelates.  No rng, no jitter:
        the default path stays bit-deterministic.
        """
        delay = min(
            self.invoke_timeout * self.backoff_factor ** retries,
            self.max_backoff,
        )
        if self.rng is not None and self.jitter_fraction > 0:
            delay *= 1.0 + self.jitter_fraction * (2.0 * self.rng.random() - 1.0)
        return delay

    def _check_retry(self, sequence: int) -> None:
        invocation = self._pending.get(sequence)
        if invocation is None:
            return
        invocation.retries += 1
        if invocation.retries > self.max_retries:
            self._pending.pop(sequence, None)
            invocation.future.fail(
                TimeoutError(f"request {self.client_id}:{sequence} gave up")
            )
            return
        if self.obs is not None:
            self.obs.on_retry(self.client_id)
        self._transmit(invocation.request)
        self.sim.post(self.retry_delay(invocation.retries), self._check_retry, sequence)

    # ------------------------------------------------------------------
    # replies
    # ------------------------------------------------------------------
    def deliver(self, src, message) -> None:
        if not isinstance(message, Reply):
            return
        if message.client_id != self.client_id:
            return
        invocation = self._pending.get(message.sequence)
        if invocation is None:
            return
        if message.sender not in self.view.weights:
            return
        self.replies_received += 1
        key = _result_key(message.result)
        invocation.results[key] = message.result
        weight = self.view.weight_of(message.sender)
        bucket = (
            invocation.tentative_weights if message.tentative else invocation.final_weights
        )
        bucket.setdefault(key, {})[message.sender] = weight
        self._check_complete(invocation, key)

    def _check_complete(self, invocation: _PendingInvocation, key: bytes) -> None:
        final = sum(invocation.final_weights.get(key, {}).values())
        if self.view.is_reply_quorum(final, tentative=False):
            self._complete(invocation, key)
            return
        if self.accept_tentative:
            tentative = sum(invocation.tentative_weights.get(key, {}).values())
            # final replies also vouch for the value
            tentative += final
            if self.view.is_reply_quorum(tentative, tentative=True):
                self._complete(invocation, key)

    def _complete(self, invocation: _PendingInvocation, key: bytes) -> None:
        self._pending.pop(invocation.request.sequence, None)
        if not invocation.future.done:
            if self.obs is not None:
                latency = self.sim.now - invocation.request.submit_time
                self.obs.on_reply(self.client_id, latency)
            invocation.future.resolve(invocation.results[key])

    # ------------------------------------------------------------------
    def update_view(self, view: View) -> None:
        """Adopt a new view (after reconfiguration)."""
        self.view = view
