"""Deployment builder for the SmartBFT-style ordering service.

Mirrors :func:`repro.ordering.service.build_ordering_service` -- same
configuration object, same network/crypto/stats wiring, same probe
surface (``ledger_digests``/``total_delivered``/``crash_node``/...) --
so benchmarks, the fault explorer and the conformance battery drive
either backend through one interface.  Selected with
``OrderingServiceConfig(orderer="smartbft")``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import SimulatedECDSA
from repro.fabric.envelope import Envelope
from repro.ordering.admission import AdmissionController
from repro.ordering.service import (
    FRONTEND_ID_BASE,
    OrderingServiceConfig,
    make_ordering_wal,
)
from repro.sim.core import Simulator
from repro.sim.cpu import CPU
from repro.sim.monitor import StatsRegistry
from repro.sim.network import ConstantLatency, Network
from repro.sim.randomness import RandomStreams
from repro.smart.view import View, binary_weights
from repro.smart2.frontend import QuorumFrontend
from repro.smart2.node import SmartBFTNode


@dataclass
class SmartBFTService:
    """A fully wired SmartBFT-style deployment.

    ``replicas`` and ``nodes`` name the same objects: a SmartBFT node
    *is* its own replica (consensus runs on blocks directly), but both
    aliases keep the fault layer and the observability hub -- which
    iterate ``service.replicas`` and ``service.nodes`` respectively --
    working unchanged.
    """

    sim: Simulator
    network: Network
    config: OrderingServiceConfig
    registry: KeyRegistry
    view: View
    replicas: List[SmartBFTNode]
    nodes: List[SmartBFTNode]
    frontends: List[QuorumFrontend]
    stats: StatsRegistry
    cpus: List[Optional[CPU]]
    observability: Optional[Any] = None

    @property
    def leader_node(self) -> SmartBFTNode:
        return self.nodes[self.nodes[0].leader]

    def submit(self, envelope: Envelope, frontend_index: int = 0) -> None:
        self.frontends[frontend_index].submit(envelope)

    def crash_node(self, index: int, amnesia: bool = False) -> None:
        self.nodes[index].crash(amnesia=amnesia)

    def recover_node(self, index: int) -> None:
        self.nodes[index].recover()

    # ------------------------------------------------------------------
    # invariant probes (repro.faults)
    # ------------------------------------------------------------------
    def ledger_digests(self) -> Dict[int, bytes]:
        return {
            frontend.name: frontend.ledger_digest() for frontend in self.frontends
        }

    def replica_log_digests(self) -> Dict[int, Dict[int, bytes]]:
        from repro.smart.consensus import batch_hash

        return {
            node.replica_id: {
                cid: batch_hash(cid, batch) for cid, batch in node.log.entries
            }
            for node in self.nodes
        }

    def total_submitted(self) -> int:
        return sum(frontend.envelopes_submitted for frontend in self.frontends)

    def total_delivered(self) -> int:
        return int(self.stats.meter(f"{FRONTEND_ID_BASE}.envelopes").total)

    def run(self, duration: float) -> None:
        self.sim.run(until=self.sim.now + duration)


def build_smartbft_service(
    config: Optional[OrderingServiceConfig] = None,
    sim: Optional[Simulator] = None,
    observability: Optional[Any] = None,
) -> SmartBFTService:
    """Stand up a complete SmartBFT-style ordering service."""
    config = config or OrderingServiceConfig()
    sim = sim or Simulator()
    streams = RandomStreams(config.seed)
    latency = config.latency or ConstantLatency(0.0001)
    network = Network(
        sim, latency, default_bandwidth_bps=config.bandwidth_bps, streams=streams
    )
    stats = StatsRegistry()
    scheme = SimulatedECDSA()
    if config.sign_cost is not None:
        scheme.sign_cost = config.sign_cost
    registry = KeyRegistry(scheme=scheme, rng=streams.stream("keys"))

    n = config.n
    processes = tuple(range(n))
    weights = binary_weights(processes, config.f, config.delta, config.vmax_holders)
    view = View(
        view_id=0, processes=processes, f=config.f, delta=config.delta, weights=weights
    )
    node_sites = list(config.node_sites or ["lan"] * n)
    frontend_sites = list(config.frontend_sites or ["lan"] * config.num_frontends)
    if len(node_sites) != n:
        raise ValueError(f"need {n} node sites, got {len(node_sites)}")
    if len(frontend_sites) != config.num_frontends:
        raise ValueError(
            f"need {config.num_frontends} frontend sites, got {len(frontend_sites)}"
        )

    channels = {config.channel.channel_id: config.channel}
    for extra in config.extra_channels:
        if extra.channel_id in channels:
            raise ValueError(f"duplicate channel id {extra.channel_id!r}")
        channels[extra.channel_id] = extra

    identities = [
        registry.enroll(f"orderer{i}", org=f"ordererorg{i}") for i in range(n)
    ]
    peer_names = {i: identities[i].name for i in range(n)}

    nodes: List[SmartBFTNode] = []
    cpus: List[Optional[CPU]] = []
    for i in range(n):
        cpu: Optional[CPU] = None
        if config.physical_cores is not None:
            cpu = CPU(
                sim,
                physical_cores=config.physical_cores,
                hardware_threads=config.hardware_threads,
            )
            if config.smart_cpu_fraction > 0:
                cpu.set_background_load(config.smart_cpu_fraction)
        cpus.append(cpu)
        node = SmartBFTNode(
            sim=sim,
            network=network,
            replica_id=i,
            name=identities[i].name,
            identity=identities[i],
            registry=registry,
            membership=view,
            channels=channels,
            peer_names=peer_names,
            log=make_ordering_wal(config) if config.durable_wal else None,
            cpu=cpu,
            signing_workers=config.signing_workers,
            sign_cost=config.sign_cost,
            stats=stats,
            request_timeout=config.request_timeout,
            heartbeat_interval=config.request_timeout / 4,
        )
        network.register(i, node, site=node_sites[i])
        nodes.append(node)

    frontends: List[QuorumFrontend] = []
    for j in range(config.num_frontends):
        client_id = FRONTEND_ID_BASE + j
        frontend = QuorumFrontend(
            sim=sim,
            network=network,
            name=client_id,
            view=view,
            registry=registry,
            node_names=peer_names,
            stats=stats,
            max_envelope_bytes={
                channel_id: cfg.absolute_max_bytes
                for channel_id, cfg in channels.items()
            },
            request_timeout=config.request_timeout,
            admission=(
                AdmissionController(config.admission)
                if config.admission is not None
                else None
            ),
        )
        network.register(client_id, frontend, site=frontend_sites[j])
        frontend.start()
        frontends.append(frontend)

    service = SmartBFTService(
        sim=sim,
        network=network,
        config=config,
        registry=registry,
        view=view,
        replicas=nodes,
        nodes=nodes,
        frontends=frontends,
        stats=stats,
        cpus=cpus,
        observability=observability,
    )
    if observability is not None:
        observability.attach(service)
    return service
