"""Unit tests for message types and wire-size accounting."""


from repro.smart.messages import (
    Accept,
    ClientRequest,
    ForwardedRequest,
    MESSAGE_HEADER_BYTES,
    Propose,
    Reply,
    StateReply,
    StateRequest,
    Stop,
    StopData,
    Sync,
    ValueRequest,
    ValueResponse,
    Write,
    WriteCertificate,
)


def request(size=100, seq=0):
    return ClientRequest(client_id=1, sequence=seq, operation="op", size_bytes=size)


class TestWireSizes:
    def test_request_size_includes_payload(self):
        small = request(size=0).wire_size()
        large = request(size=4096).wire_size()
        assert large - small == 4096

    def test_propose_scales_with_batch(self):
        batch_small = [request(size=100, seq=i) for i in range(10)]
        batch_large = [request(size=100, seq=i) for i in range(400)]
        p_small = Propose(0, 0, 0, batch_small, b"\x00" * 32)
        p_large = Propose(0, 0, 0, batch_large, b"\x00" * 32)
        assert p_large.wire_size() > p_small.wire_size()
        assert p_large.wire_size() > 400 * 100

    def test_votes_are_small_and_constant(self):
        write = Write(0, 5, 0, b"\x00" * 32)
        accept = Accept(0, 5, 0, b"\x00" * 32)
        assert write.wire_size() == accept.wire_size()
        assert write.wire_size() < 200
        # independent of consensus id
        assert Write(0, 999999, 3, b"\x00" * 32).wire_size() == write.wire_size()

    def test_reply_size_includes_result(self):
        small = Reply(0, 1, 0, result="x", regency=0, result_size=1)
        large = Reply(0, 1, 0, result="x" * 100, regency=0, result_size=100)
        assert large.wire_size() - small.wire_size() == 99

    def test_stop_minimal(self):
        assert Stop(0, 1).wire_size() == MESSAGE_HEADER_BYTES

    def test_stopdata_includes_certificate_and_pending(self):
        bare = StopData(0, 1, 5, None)
        cert = WriteCertificate(6, 0, b"\x00" * 32, (0, 1, 2), [request(size=500)])
        loaded = StopData(0, 1, 5, cert, pending=[request(size=300, seq=1)])
        assert loaded.wire_size() > bare.wire_size() + 500 + 300

    def test_sync_includes_batch_and_proofs(self):
        batch = [request(size=200, seq=i) for i in range(3)]
        proofs = [StopData(i, 1, 5, None) for i in range(3)]
        sync = Sync(0, 1, 6, batch, b"\x00" * 32, proofs)
        assert sync.wire_size() > 3 * 200

    def test_forwarded_request_wraps_request(self):
        inner = request(size=256)
        assert ForwardedRequest(2, inner).wire_size() > inner.wire_size()

    def test_value_exchange_sizes(self):
        req = ValueRequest(0, 3, b"\x00" * 32)
        resp = ValueResponse(1, 3, b"\x00" * 32, [request(size=1000)])
        assert resp.wire_size() > req.wire_size() + 1000

    def test_state_reply_includes_log(self):
        empty = StateReply(0, -1, None, b"\x00" * 32, [], -1)
        loaded = StateReply(
            0, -1, None, b"\x00" * 32,
            [(0, [request(size=400, seq=0)]), (1, [request(size=400, seq=1)])],
            1,
        )
        assert loaded.wire_size() > empty.wire_size() + 800
        assert StateRequest(0, 5).wire_size() < 200


class TestRequestIdentity:
    def test_request_id(self):
        r = ClientRequest(client_id=7, sequence=3, operation=None)
        assert r.request_id == (7, 3)

    def test_uids_unique(self):
        a = ClientRequest(client_id=1, sequence=0, operation=None)
        b = ClientRequest(client_id=1, sequence=0, operation=None)
        assert a.uid != b.uid
