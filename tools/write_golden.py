#!/usr/bin/env python
"""Regenerate the committed golden DetSan records.

The files under ``tests/data/golden/`` pin the kernel's observable
behavior byte-for-byte: full event stream, span tree, and metrics
snapshot of two seeded smoke scenarios, plus sha256 digests over the
canonical JSON of each view.  ``tests/test_reproducibility.py``
(TestGoldenEquivalence) fails whenever a run diverges from them.

Only rerun this after an *intentional* semantic change (and say why in
the PR) -- a performance change should never need it:

    PYTHONHASHSEED=1 PYTHONPATH=src python tools/write_golden.py

``PYTHONHASHSEED`` is pinned purely so the recorded ``hash_seed``
field stays stable; the digests themselves are hash-seed independent
(DetSan double-runs under different hash seeds to prove it).
"""

from __future__ import annotations

import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO / "tests" / "data" / "golden"

#: name -> capture_record scenario kwargs (mirrors the committed files)
SCENARIOS = {
    "smoke_seed0": {"seed": 0, "duration": 0.5, "rate": 400.0},
    "smoke_seed7": {"seed": 7, "duration": 0.4, "rate": 250.0},
}


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    from repro.analysis.detsan import capture_record

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, scenario in sorted(SCENARIOS.items()):
        record = capture_record(**scenario)
        path = GOLDEN_DIR / f"{name}.json"
        previous = None
        if path.exists():
            previous = json.loads(path.read_text())["digests"]
        path.write_text(json.dumps(record, sort_keys=True))
        status = (
            "unchanged"
            if previous == record["digests"]
            else "UPDATED" if previous is not None else "created"
        )
        print(f"{path.relative_to(REPO)}: {status}")
        for view, digest in sorted(record["digests"].items()):
            print(f"  {view}: {digest}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
