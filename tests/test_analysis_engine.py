"""End-to-end tests for ``python -m repro.analysis`` (the static pass).

The acceptance criterion of the analysis layer, as a test: the repo
itself is clean (with zero suppressions in the smart/ protocol paths),
and a planted violation of each family makes the CLI exit non-zero
naming the rule and the ``file:line``.
"""

import json
import re

from repro.analysis.__main__ import main as analysis_main
from repro.analysis.engine import REPO_ROOT, analyze_paths
from repro.analysis.suppress import SUPPRESS_RE

SMART = REPO_ROOT / "src" / "repro" / "smart"


class TestRepoIsClean:
    def test_src_repro_has_no_findings(self):
        assert analyze_paths() == []

    def test_cli_exits_zero_on_repo(self, capsys):
        assert analysis_main(["check"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_smart_protocol_paths_have_zero_suppressions(self):
        offenders = []
        for path in sorted(SMART.rglob("*.py")):
            for lineno, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if SUPPRESS_RE.search(line):
                    offenders.append(f"{path.name}:{lineno}")
        assert offenders == []


class TestPlantedViolations:
    """One scratch violation per family -> non-zero exit, rule id, file:line."""

    def plant(self, tmp_path, source):
        scratch = tmp_path / "scratch.py"
        scratch.write_text(source)
        return scratch

    def test_planted_det_violation_found(self, tmp_path, capsys):
        scratch = self.plant(
            tmp_path, "import time\n\nnow = time.time()\n"
        )
        code = analysis_main(["check", str(scratch)])
        out = capsys.readouterr().out
        assert code == 1
        assert "DET001" in out
        assert re.search(r"scratch\.py:3:\d+", out)

    def test_planted_proto_violation_found(self, tmp_path, capsys):
        scratch = self.plant(
            tmp_path, "def quorum(self):\n    return 2 * self.f + 1\n"
        )
        code = analysis_main(["check", str(scratch)])
        out = capsys.readouterr().out
        assert code == 1
        assert "PROTO001" in out
        assert re.search(r"scratch\.py:2:\d+", out)

    def test_json_report_written(self, tmp_path, capsys):
        scratch = self.plant(tmp_path, "import heapq\n")
        report = tmp_path / "report.json"
        code = analysis_main(["check", str(scratch), "--json", str(report)])
        capsys.readouterr()
        assert code == 1
        doc = json.loads(report.read_text())
        assert doc["schema"] == "repro-analysis-report/1"
        assert doc["clean"] is False
        assert doc["findings"][0]["rule"] == "PROTO003"
        assert doc["findings"][0]["line"] == 1

    def test_clean_file_json_report(self, tmp_path, capsys):
        scratch = self.plant(tmp_path, "x = 1\n")
        report = tmp_path / "report.json"
        code = analysis_main(["check", str(scratch), "--json", str(report)])
        capsys.readouterr()
        assert code == 0
        assert json.loads(report.read_text())["clean"] is True


class TestCli:
    def test_rules_catalog_lists_all_families(self, capsys):
        assert analysis_main(["rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "DET001",
            "DET005",
            "PROTO001",
            "PROTO003",
            "DETSAN001",
            "SUP001",
        ):
            assert rule_id in out

    def test_default_command_is_check(self, capsys):
        assert analysis_main([]) == 0
        assert "clean" in capsys.readouterr().out
