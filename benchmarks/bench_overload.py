"""Overload: goodput must saturate, not collapse, past the knee.

Runs the registered ``overload`` matrix (open-loop multi-tenant
workload from :mod:`repro.workload` against the admission-controlled
service) and asserts the robustness properties docs/WORKLOADS.md
promises:

- goodput at 4x the saturation offered load stays within 80% of the
  peak across the sweep (no congestion collapse);
- p99 admitted latency stays bounded under overload -- backpressure
  sheds excess instead of queueing it;
- Jain fairness over the honest tenants stays >= 0.9 even when one
  tenant floods duplicates at 2x the whole service's saturation rate.
"""

import pytest

pytestmark = pytest.mark.bench


def test_goodput_saturates_instead_of_collapsing(bench_result):
    result = bench_result("overload")
    for adversary in ("none", "duplicate-flood"):
        goodput = {
            point.params["load_multiplier"]: point.metrics["goodput_per_s"].median
            for point in result.points
            if point.params["adversary"] == adversary
        }
        peak = max(goodput.values())
        assert goodput[4.0] >= 0.8 * peak, (adversary, goodput)
        # below the knee the service keeps up with what is offered
        assert goodput[0.5] < goodput[4.0] * 1.2, (adversary, goodput)


def test_p99_admitted_latency_stays_bounded(bench_result):
    result = bench_result("overload")
    for point in result.points:
        assert point.metrics["p99_latency_s"].median < 1.0, point.params


def test_fairness_survives_duplicate_flood(bench_result):
    result = bench_result("overload")
    for point in result.points:
        assert point.metrics["fairness"].median >= 0.9, point.params


def test_overload_sheds_explicitly(bench_result):
    result = bench_result("overload")
    for point in result.points:
        shed = point.metrics["shed_fraction"].median
        if point.params["load_multiplier"] >= 4.0:
            assert shed > 0.5, point.params
        assert shed < 1.0, point.params
