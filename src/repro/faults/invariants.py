"""Global invariants checked after every fault run.

The checks mirror what the paper's fault model promises:

- **no fork** -- no two correct replicas execute divergent histories,
  and the durable operation logs of any two replicas agree on every
  consensus instance both logged;
- **block agreement** -- no ordering node ever signs two different
  blocks with one number, all nodes agree on each number's digest, and
  every frontend (which waits for ``2f+1`` matching copies) delivers
  the same hash chain;
- **durability** -- a recovered replica's log is consistent with its
  peers' (subsumed by the log-agreement check, which runs after
  crash/recover schedules too);
- **liveness** -- once faults heal, every submitted envelope is
  eventually ordered and delivered.

Checkers return :class:`Violation` lists instead of asserting, so the
schedule explorer can aggregate, report and shrink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.fabric.api import BlockDelivery
from repro.smart.consensus import batch_hash
from repro.smart.messages import Accept, Write


@dataclass(frozen=True)
class Violation:
    """One invariant breach with enough detail to debug it."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"{self.invariant}: {self.detail}"


# ----------------------------------------------------------------------
# replica-level safety
# ----------------------------------------------------------------------
def check_history_prefixes(
    histories: Mapping[Any, Sequence], exclude: Sequence = ()
) -> List[Violation]:
    """No fork: every pair of histories must be prefix-consistent."""
    violations: List[Violation] = []
    items = [(rid, list(h)) for rid, h in histories.items() if rid not in set(exclude)]
    for i, (id_a, hist_a) in enumerate(items):
        for id_b, hist_b in items[i + 1 :]:
            common = min(len(hist_a), len(hist_b))
            if hist_a[:common] != hist_b[:common]:
                index = next(
                    k for k in range(common) if hist_a[k] != hist_b[k]
                )
                violations.append(
                    Violation(
                        "fork",
                        f"replicas {id_a} and {id_b} diverge at position "
                        f"{index}: {hist_a[index]!r} != {hist_b[index]!r}",
                    )
                )
    return violations


def check_log_agreement(
    log_digests: Mapping[Any, Mapping[int, bytes]], exclude: Sequence = ()
) -> List[Violation]:
    """Durable logs agree: same cid => same decided-batch hash."""
    violations: List[Violation] = []
    reference: Dict[int, tuple] = {}
    excluded = set(exclude)
    for rid in sorted(log_digests, key=repr):
        if rid in excluded:
            continue
        for cid, digest in sorted(log_digests[rid].items()):
            seen = reference.get(cid)
            if seen is None:
                reference[cid] = (rid, digest)
            elif seen[1] != digest:
                violations.append(
                    Violation(
                        "fork",
                        f"consensus instance {cid} decided differently at "
                        f"replicas {seen[0]} and {rid}",
                    )
                )
    return violations


def replica_log_digests(replicas: Sequence) -> Dict[Any, Dict[int, bytes]]:
    """Per-replica ``cid -> batch hash`` maps from the operation logs."""
    return {
        replica.replica_id: {
            cid: batch_hash(cid, batch) for cid, batch in replica.log.entries
        }
        for replica in replicas
    }


# ----------------------------------------------------------------------
# block-level safety (ordering service)
# ----------------------------------------------------------------------
class BlockRecorder:
    """Network tap recording every block copy any node disseminates.

    Install on a network (it is a pass-through filter) before the run;
    afterwards :meth:`check` reports equivocation (one node, one
    number, two digests) and cross-node disagreement.
    """

    def __init__(self, network=None):
        self.copies: List[tuple] = []  # (source, channel, number, digest)
        if network is not None:
            network.add_filter(self)

    def __call__(self, src, dst, payload):
        if isinstance(payload, BlockDelivery):
            block = payload.block
            self.copies.append(
                (
                    payload.source,
                    block.channel_id,
                    block.header.number,
                    block.header.digest(),
                )
            )
        return payload

    def check(self) -> List[Violation]:
        violations: List[Violation] = []
        per_node: Dict[tuple, bytes] = {}
        per_number: Dict[tuple, tuple] = {}
        for source, channel, number, digest in self.copies:
            node_key = (source, channel, number)
            if node_key in per_node and per_node[node_key] != digest:
                violations.append(
                    Violation(
                        "block-equivocation",
                        f"node {source} signed two different blocks for "
                        f"{channel}#{number}",
                    )
                )
            per_node.setdefault(node_key, digest)
            num_key = (channel, number)
            seen = per_number.get(num_key)
            if seen is None:
                per_number[num_key] = (source, digest)
            elif seen[1] != digest:
                violations.append(
                    Violation(
                        "block-fork",
                        f"nodes {seen[0]} and {source} disagree on "
                        f"{channel}#{number}",
                    )
                )
        return violations


class VoteRecorder:
    """Network tap recording every WRITE/ACCEPT vote any replica sends.

    Backs the *no equivocation by amnesia* invariant: a replica that
    crashes, loses its volatile state and restarts from its WAL must
    never send a WRITE/ACCEPT for a (cid, regency) slot with a
    different value hash than its pre-crash incarnation did.  Only
    network-visible votes matter -- a vote that never left the replica
    cannot mislead anyone.
    """

    def __init__(self, network=None):
        self.votes: List[tuple] = []  # (sender, phase, cid, regency, hash)
        if network is not None:
            network.add_filter(self)

    def __call__(self, src, dst, payload):
        if isinstance(payload, Write):
            self.votes.append(
                (payload.sender, "write", payload.cid, payload.regency, payload.value_hash)
            )
        elif isinstance(payload, Accept):
            self.votes.append(
                (payload.sender, "accept", payload.cid, payload.regency, payload.value_hash)
            )
        return payload

    def check(self, exclude: Sequence = ()) -> List[Violation]:
        violations: List[Violation] = []
        excluded = set(exclude)
        seen: Dict[tuple, bytes] = {}
        reported: set = set()
        for sender, phase, cid, regency, value_hash in self.votes:
            if sender in excluded:
                continue
            key = (sender, phase, cid, regency)
            first = seen.setdefault(key, value_hash)
            if first != value_hash and key not in reported:
                reported.add(key)
                violations.append(
                    Violation(
                        "vote-equivocation",
                        f"replica {sender} sent two different {phase.upper()} "
                        f"values for cid={cid} regency={regency}",
                    )
                )
        return violations


def check_durable_logs(replicas: Sequence) -> List[Violation]:
    """Every replica's durable log verifies (CRC-framed, no internal
    conflicts) -- the durable-log-under-torn-write invariant.

    Replicas with plain in-memory logs (no ``verify`` hook) are
    skipped.
    """
    violations: List[Violation] = []
    for replica in replicas:
        verify = getattr(replica.log, "verify", None)
        if verify is None:
            continue
        for problem in verify():
            violations.append(
                Violation(
                    "durable-log",
                    f"replica {replica.replica_id}: {problem}",
                )
            )
    return violations


def check_frontend_agreement(frontends: Sequence) -> List[Violation]:
    """All frontends deliver the same per-channel digest chain.

    A slower frontend may have delivered a prefix of a faster one; any
    disagreement *within* the common prefix is a fork.
    """
    violations: List[Violation] = []
    channels = sorted({c for fe in frontends for c in fe.delivered_digests})
    for channel in channels:
        chains = [
            (fe.name, fe.delivered_digests.get(channel, [])) for fe in frontends
        ]
        for i, (name_a, chain_a) in enumerate(chains):
            for name_b, chain_b in chains[i + 1 :]:
                common = min(len(chain_a), len(chain_b))
                if chain_a[:common] != chain_b[:common]:
                    violations.append(
                        Violation(
                            "frontend-disagreement",
                            f"frontends {name_a} and {name_b} delivered "
                            f"different chains on channel {channel!r}",
                        )
                    )
    return violations


# ----------------------------------------------------------------------
# backpressure: no silent drops
# ----------------------------------------------------------------------
class SubmissionRecorder:
    """Records the explicit outcome of every frontend submission.

    Wraps each frontend's ``submit`` -- covering both direct calls and
    ``SubmitEnvelope`` deliveries arriving over the network (adversarial
    floods) -- and taps its ``on_block`` hook.  Afterwards every offered
    envelope id can be classified: *admitted* (verdict ``None``),
    *explicitly rejected* (a :class:`~repro.ordering.admission.Rejected`
    with a reason) or *committed*.  :func:`check_no_silent_drop` turns
    the classification into the backpressure invariant.
    """

    def __init__(self, frontends=()):
        #: envelope id -> verdict of each submission (None = admitted)
        self.outcomes: Dict[int, List[Any]] = {}
        self.committed: set = set()
        for frontend in frontends:
            self.attach(frontend)

    def attach(self, frontend) -> None:
        original = frontend.submit

        def recording_submit(envelope, _original=original):
            verdict = _original(envelope)
            self.outcomes.setdefault(envelope.envelope_id, []).append(verdict)
            return verdict

        frontend.submit = recording_submit
        frontend.on_block.append(self._on_block)

    def _on_block(self, block) -> None:
        for envelope in block.envelopes:
            self.committed.add(envelope.envelope_id)

    def admitted_ids(self) -> set:
        return {
            envelope_id
            for envelope_id, verdicts in self.outcomes.items()
            if any(verdict is None for verdict in verdicts)
        }

    def unresolved_ids(self) -> set:
        """Admitted but not (yet) committed -- silent drops if final."""
        return self.admitted_ids() - self.committed


def check_no_silent_drop(recorder: SubmissionRecorder) -> List[Violation]:
    """Every submission ends explicitly: committed, or rejected with a
    reason.  An envelope the service accepted and then lost -- and a
    rejection carrying no reason the client could act on -- are both
    violations (the backpressure contract of docs/WORKLOADS.md)."""
    violations: List[Violation] = []
    unresolved = sorted(recorder.unresolved_ids())
    if unresolved:
        head = ", ".join(str(envelope_id) for envelope_id in unresolved[:8])
        suffix = ", ..." if len(unresolved) > 8 else ""
        violations.append(
            Violation(
                "no-silent-drop",
                f"{len(unresolved)} envelope(s) admitted but never "
                f"committed (ids {head}{suffix})",
            )
        )
    for envelope_id, verdicts in sorted(recorder.outcomes.items()):
        for verdict in verdicts:
            if verdict is not None and not getattr(verdict, "reason", ""):
                violations.append(
                    Violation(
                        "no-silent-drop",
                        f"envelope {envelope_id} rejected without a reason",
                    )
                )
    return violations


# ----------------------------------------------------------------------
# liveness
# ----------------------------------------------------------------------
def check_liveness(submitted: int, delivered: int) -> List[Violation]:
    """After healing and draining, everything submitted was ordered."""
    if delivered < submitted:
        return [
            Violation(
                "liveness",
                f"only {delivered} of {submitted} envelopes delivered "
                "after faults healed",
            )
        ]
    return []


# ----------------------------------------------------------------------
# one-call service check
# ----------------------------------------------------------------------
def check_ordering_service(
    service,
    recorder: Optional[BlockRecorder] = None,
    expect_live: bool = True,
    vote_recorder: Optional[VoteRecorder] = None,
) -> List[Violation]:
    """Run every applicable invariant against an
    :class:`~repro.ordering.service.OrderingService` deployment."""
    violations: List[Violation] = []
    violations += check_log_agreement(
        {
            replica.replica_id: {
                cid: batch_hash(cid, batch) for cid, batch in replica.log.entries
            }
            for replica in service.replicas
        }
    )
    violations += check_durable_logs(service.replicas)
    if recorder is not None:
        violations += recorder.check()
    if vote_recorder is not None:
        violations += vote_recorder.check()
    violations += check_frontend_agreement(service.frontends)
    if expect_live:
        violations += check_liveness(
            service.total_submitted(), service.total_delivered()
        )
    return violations
