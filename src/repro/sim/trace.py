"""Protocol tracing: capture and render message timelines.

Debugging distributed protocols needs visibility; this module hooks
the network's filter chain and records every message (or a selected
subset) with timestamps, then renders summaries, timelines and ASCII
sequence diagrams.  Used by tests to assert on protocol behaviour and
by humans to see what a scenario actually did:

    tracer = MessageTracer(network, kinds={"Propose", "Write", "Accept"})
    ... run the scenario ...
    print(tracer.sequence_diagram(participants=[0, 1, 2, 3]))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set


@dataclass(frozen=True)
class TraceEvent:
    """One captured message send."""

    time: float
    kind: str
    src: Any
    dst: Any
    detail: str


def _describe(payload: Any) -> str:
    for attribute in ("cid", "next_regency", "sequence", "offset"):
        value = getattr(payload, attribute, None)
        if value is not None:
            return f"{attribute}={value}"
    return type(payload).__name__


class MessageTracer:
    """Records messages crossing a :class:`repro.sim.network.Network`."""

    def __init__(
        self,
        network,
        kinds: Optional[Set[str]] = None,
        capacity: int = 100_000,
    ):
        self.network = network
        self.kinds = kinds
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        self.dropped = 0
        network.add_filter(self._capture)

    def detach(self) -> None:
        self.network.remove_filter(self._capture)

    def _capture(self, src, dst, payload):
        kind = type(payload).__name__
        if self.kinds is None or kind in self.kinds:
            if len(self.events) < self.capacity:
                self.events.append(
                    TraceEvent(
                        time=self.network.sim.now,
                        kind=kind,
                        src=src,
                        dst=dst,
                        detail=_describe(payload),
                    )
                )
            else:
                self.dropped += 1
        return payload

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.events)
        return sum(1 for event in self.events if event.kind == kind)

    def summary(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return dict(sorted(counts.items()))

    def between(self, start: float, end: float) -> List[TraceEvent]:
        return [event for event in self.events if start <= event.time <= end]

    def involving(self, participant) -> List[TraceEvent]:
        return [
            event
            for event in self.events
            if event.src == participant or event.dst == participant
        ]

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def timeline(self, limit: int = 50) -> str:
        """A flat, time-ordered log of the first ``limit`` events."""
        lines = [
            f"{event.time * 1000:10.3f}ms  {event.kind:<14} "
            f"{str(event.src):>10} -> {str(event.dst):<10} {event.detail}"
            for event in self.events[:limit]
        ]
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)

    def sequence_diagram(
        self, participants: Sequence[Any], limit: int = 40
    ) -> str:
        """An ASCII sequence diagram restricted to ``participants``."""
        columns = {p: i for i, p in enumerate(participants)}
        width = 16
        header = "".join(str(p).center(width) for p in participants)
        lines = [header]
        shown = 0
        for event in self.events:
            if event.src not in columns or event.dst not in columns:
                continue
            if shown >= limit:
                lines.append("...")
                break
            src_col, dst_col = columns[event.src], columns[event.dst]
            if src_col == dst_col:
                continue
            left, right = sorted((src_col, dst_col))
            span = (right - left) * width - 2
            arrow_body = "-" * (span - 1)
            arrow = (
                f"{arrow_body}>" if dst_col > src_col else f"<{arrow_body}"
            )
            label = f"{event.kind}{(' ' + event.detail) if event.detail else ''}"
            pad = " " * (left * width + width // 2)
            lines.append(f"{pad}|{arrow}|  {label} @{event.time * 1000:.2f}ms")
            shown += 1
        return "\n".join(lines)
