"""JSON codec for WAL records of the ordering service.

The consensus WAL persists records as JSON lines, but the ordering
service's operations (:class:`~repro.fabric.envelope.Envelope`,
:class:`~repro.ordering.node.TimeToCut`,
:class:`~repro.smart.reconfiguration.ReconfigOp`) and its application
state (which nests envelopes and raw hash bytes) are not JSON types.
This module provides the lossless round-trip used by
:func:`repro.ordering.service.build_ordering_service` when
``durable_wal`` is enabled.

Tagged encodings (tags chosen to be impossible keys of real payloads)::

    bytes     -> {"__b": hex}
    tuple     -> {"__t": [...]}
    Envelope  -> {"__env": {...}}
    TimeToCut -> {"__ttc": [channel_id, target_height]}
    ReconfigOp-> {"__rc": [action, replica_id]}

Unknown object types raise ``TypeError`` loudly: silently degrading a
durable record (e.g. via ``repr``) would corrupt recovery.
"""

from __future__ import annotations

from typing import Any

from repro.fabric.envelope import Envelope
from repro.ordering.node import TimeToCut
from repro.smart.reconfiguration import ReconfigOp


def encode_value(value: Any) -> Any:
    """Encode an operation or state snapshot into pure JSON types."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return {"__b": value.hex()}
    if isinstance(value, tuple):
        return {"__t": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): encode_value(v) for k, v in value.items()}
    if isinstance(value, Envelope):
        return {
            "__env": {
                "channel_id": value.channel_id,
                "transaction": encode_value(value.transaction),
                "payload_size": value.payload_size,
                "submitter": value.submitter,
                "signature": value.signature.hex(),
                "is_config": value.is_config,
                "envelope_id": value.envelope_id,
                "create_time": value.create_time,
            }
        }
    if isinstance(value, TimeToCut):
        return {"__ttc": [value.channel_id, value.target_height]}
    if isinstance(value, ReconfigOp):
        return {"__rc": [value.action, value.replica_id]}
    raise TypeError(f"cannot encode {type(value).__name__} into a WAL record")


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if isinstance(value, dict):
        if "__b" in value and len(value) == 1:
            return bytes.fromhex(value["__b"])
        if "__t" in value and len(value) == 1:
            return tuple(decode_value(v) for v in value["__t"])
        if "__env" in value and len(value) == 1:
            fields = value["__env"]
            return Envelope(
                channel_id=fields["channel_id"],
                transaction=decode_value(fields["transaction"]),
                payload_size=fields["payload_size"],
                submitter=fields["submitter"],
                signature=bytes.fromhex(fields["signature"]),
                is_config=fields["is_config"],
                envelope_id=fields["envelope_id"],
                create_time=fields["create_time"],
            )
        if "__ttc" in value and len(value) == 1:
            channel_id, target_height = value["__ttc"]
            return TimeToCut(channel_id=channel_id, target_height=target_height)
        if "__rc" in value and len(value) == 1:
            action, replica_id = value["__rc"]
            return ReconfigOp(action=action, replica_id=replica_id)
        return {k: decode_value(v) for k, v in value.items()}
    return value
