"""Tests for declarative TOML experiment specs (repro.bench.spec)."""

import dataclasses
import json

import pytest

pytest.importorskip(
    "tomllib", reason="TOML specs need Python 3.11+ (or tomli)"
)

from repro.bench.harness import Benchmark, BenchmarkRegistry, load_result
from repro.bench.spec import (
    ExperimentSpec,
    SpecError,
    expand_spec,
    load_spec,
    parse_spec,
)

BAKEOFF_SPEC = "benchmarks/specs/bakeoff.toml"


def base_document(**overrides):
    document = {
        "schema": "repro-bench-spec/1",
        "name": "demo",
        "description": "a demo sweep",
        "select": {"benchmarks": ["fake"]},
    }
    document.update(overrides)
    return document


def fake_registry():
    registry = BenchmarkRegistry()
    registry.add(
        Benchmark(
            name="fake_bench",
            run=lambda ctx: {"m": 1.0},
            matrix={"orderer": ("solo", "bft"), "n": (4, 7, 10)},
            smoke_matrix={"orderer": ("solo",), "n": (4,)},
            repeats=5,
            smoke_repeats=2,
            base_seed=100,
            directions={"m": "lower"},
        )
    )
    return registry


class TestParse:
    def test_minimal_valid(self):
        spec = parse_spec(base_document())
        assert spec.name == "demo"
        assert spec.benchmarks == ("fake",)
        assert spec.mode == "full"
        assert spec.repeats is None
        assert spec.default_out == "BENCH_demo.json"

    def test_wrong_schema(self):
        with pytest.raises(SpecError, match="schema"):
            parse_spec(base_document(schema="repro-bench-spec/2"))

    def test_unknown_top_level_key(self):
        with pytest.raises(SpecError, match="unknown top-level"):
            parse_spec(base_document(matrrix={"f": [1]}))

    def test_unknown_run_key(self):
        with pytest.raises(SpecError, match=r"unknown \[run\]"):
            parse_spec(base_document(run={"mode": "full", "seeds": 3}))

    def test_bad_name(self):
        with pytest.raises(SpecError, match="name"):
            parse_spec(base_document(name="has spaces"))
        with pytest.raises(SpecError, match="name"):
            parse_spec(base_document(name=""))

    def test_bad_mode_and_repeats(self):
        with pytest.raises(SpecError, match="mode"):
            parse_spec(base_document(run={"mode": "fast"}))
        with pytest.raises(SpecError, match="repeats"):
            parse_spec(base_document(run={"repeats": 0}))
        with pytest.raises(SpecError, match="phases"):
            parse_spec(base_document(run={"phases": "yes"}))

    def test_empty_benchmark_list(self):
        with pytest.raises(SpecError, match="benchmarks"):
            parse_spec(base_document(select={"benchmarks": []}))

    def test_bad_axis_values(self):
        with pytest.raises(SpecError, match="non-empty list"):
            parse_spec(base_document(matrix={"f": []}))
        with pytest.raises(SpecError, match="non-scalar"):
            parse_spec(base_document(matrix={"f": [[1, 2]]}))

    def test_unknown_smoke_key(self):
        with pytest.raises(SpecError, match=r"unknown \[smoke\]"):
            parse_spec(base_document(smoke={"repeats": 1}))


class TestExpand:
    def test_matrix_override_and_layering(self):
        spec = parse_spec(
            base_document(
                run={"repeats": 3, "seed": 7},
                matrix={"n": [4, 10]},
                smoke={"matrix": {"n": [4]}},
            )
        )
        (derived,) = expand_spec(spec, registry=fake_registry())
        # full matrix: orderer untouched, n replaced -> 2 x 2 points
        assert derived.matrix["orderer"] == ("solo", "bft")
        assert derived.matrix["n"] == (4, 10)
        assert len(list(derived.points("full"))) == 4
        # smoke: benchmark smoke base, [matrix] layered, [smoke.matrix] wins
        assert derived.smoke_matrix["orderer"] == ("solo",)
        assert derived.smoke_matrix["n"] == (4,)
        assert derived.repeats == 3
        assert derived.smoke_repeats == 3
        assert derived.base_seed == 7

    def test_unknown_benchmark(self):
        spec = parse_spec(base_document(select={"benchmarks": ["nope"]}))
        with pytest.raises(SpecError, match="nope"):
            expand_spec(spec, registry=fake_registry())

    def test_unknown_axis(self):
        spec = parse_spec(base_document(matrix={"typo_axis": [1]}))
        with pytest.raises(SpecError, match="typo_axis"):
            expand_spec(spec, registry=fake_registry())
        # smoke-only axes are validated too
        spec = parse_spec(base_document(smoke={"matrix": {"typo": [1]}}))
        with pytest.raises(SpecError, match="typo"):
            expand_spec(spec, registry=fake_registry())

    def test_original_benchmark_untouched(self):
        registry = fake_registry()
        spec = parse_spec(base_document(matrix={"n": [99]}))
        expand_spec(spec, registry=registry)
        (original,) = registry.select(["fake"])
        assert original.matrix["n"] == (4, 7, 10)


class TestCommittedBakeoffSpec:
    """The committed spec must keep reproducing the four-backend bake-off."""

    def test_loads_and_expands_on_the_real_registry(self):
        spec = load_spec(BAKEOFF_SPEC)
        assert spec.name == "bakeoff"
        (derived,) = expand_spec(spec)
        assert derived.name == "bakeoff_orderers"
        assert derived.matrix["orderer"] == (
            "solo", "kafka", "bftsmart", "smartbft",
        )
        # full: 4 orderers x 2 f values; smoke: 4 orderers x f=1
        assert len(list(derived.points("full"))) == 8
        smoke_points = list(derived.points("smoke"))
        assert len(smoke_points) == 4
        assert all(p["f"] == 1 and p["envelopes"] == 40 for p in smoke_points)


class TestSpecCLI:
    def tiny_spec(self, tmp_path, body=None):
        path = tmp_path / "spec.toml"
        path.write_text(
            body
            or (
                'schema = "repro-bench-spec/1"\n'
                'name = "tiny"\n'
                "[select]\n"
                'benchmarks = ["conclusion"]\n'
                "[run]\n"
                "repeats = 1\n"
            )
        )
        return str(path)

    def test_run_spec_end_to_end(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        out = tmp_path / "result.json"
        code = main(
            ["run", "--spec", self.tiny_spec(tmp_path), "--smoke",
             "--quiet", "--out", str(out)]
        )
        assert code == 0
        document = load_result(str(out))
        assert document["run_name"] == "tiny"
        assert [b["benchmark"] for b in document["benchmarks"]] == [
            "conclusion"
        ]
        capsys.readouterr()

    def test_run_spec_bad_file_exits_2(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        bad = self.tiny_spec(tmp_path, body="schema = 'nope'\n")
        assert main(["run", "--spec", bad]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_spec_missing_file_exits_2(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        assert main(["run", "--spec", str(tmp_path / "missing.toml")]) == 2
        capsys.readouterr()

    def test_run_spec_conflicts_with_only(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        code = main(
            ["run", "--spec", self.tiny_spec(tmp_path), "--only", "x"]
        )
        assert code == 2
        capsys.readouterr()


class TestSpecImmutability:
    def test_spec_dataclass_frozen(self):
        spec = parse_spec(base_document())
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.name = "other"

    def test_json_round_trip_of_parsed_fields(self):
        spec = parse_spec(base_document(matrix={"f": [1, 3]}))
        # matrix values survive as plain scalars (JSON-serializable)
        json.dumps({k: list(v) for k, v in spec.matrix.items()})
        assert isinstance(spec, ExperimentSpec)
