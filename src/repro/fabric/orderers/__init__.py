"""The stock HLF 1.0 ordering services (paper section 3).

These are the baselines the paper's BFT service is contrasted with:

- :mod:`repro.fabric.orderers.solo` -- the centralized, non-replicated
  orderer used for testing the platform (a single point of failure);
- :mod:`repro.fabric.orderers.kafka` -- the replicated, crash-fault-
  tolerant orderer built on a Kafka-like primary/ISR replicated log
  (no Byzantine tolerance).
"""

from repro.fabric.orderers.kafka import KafkaBroker, KafkaCluster, KafkaOrderer
from repro.fabric.orderers.solo import SoloOrderer

__all__ = ["KafkaBroker", "KafkaCluster", "KafkaOrderer", "SoloOrderer"]
