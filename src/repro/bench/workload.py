"""Workload generation for the ordering-service experiments.

The paper drives the service with clients that emulate frontends
(§6.2: 16-32 asynchronous clients; §6.3: "enough client threads to
keep node throughput always above 1000 transactions/second").  We
provide an open-loop generator (fixed aggregate rate, optionally
jittered) and a simple closed-loop client pool.

Both are thin shims over :mod:`repro.workload` -- the open-loop
generator is a single-tenant :class:`~repro.workload.engine.WorkloadEngine`
with fixed-interval arrivals, and the closed-loop pool is
:class:`~repro.workload.engine.ClosedLoopDriver` under its historical
name.  Multi-tenant, Poisson/bursty and adversarial traffic live in
the workload package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.fabric.envelope import Envelope
from repro.ordering.frontend import Frontend
from repro.sim.core import Simulator
from repro.sim.randomness import RandomStreams
from repro.workload.arrivals import make_arrivals
from repro.workload.engine import ClosedLoopDriver, TenantSpec, WorkloadEngine
from repro.workload.profiles import RawProfile


def envelope_stream(
    channel_id: str, size_bytes: int, count: int, submitter: str = "loadgen"
) -> Iterator[Envelope]:
    """A finite stream of raw envelopes of one size."""
    for _ in range(count):
        yield Envelope.raw(channel_id, size_bytes, submitter=submitter)


@dataclass
class OpenLoopGenerator:
    """Submits envelopes at a fixed aggregate rate, round-robin over
    frontends (each frontend then behaves like the paper's client
    threads feeding the ordering cluster).

    Shim over a single-tenant :class:`~repro.workload.engine.WorkloadEngine`
    with fixed-interval arrivals; kept so existing experiments and
    seeds stay byte-identical (same "workload" stream, same draw
    order, no draws when unjittered).
    """

    sim: Simulator
    frontends: Sequence[Frontend]
    channel_id: str
    envelope_size: int
    rate_per_second: float
    duration: float
    jitter_fraction: float = 0.0
    streams: Optional[RandomStreams] = None
    _engine: Optional[WorkloadEngine] = field(default=None, init=False, repr=False)

    def start(self) -> None:
        spec = TenantSpec(
            name="loadgen",
            arrival=make_arrivals(
                "fixed", self.rate_per_second, jitter_fraction=self.jitter_fraction
            ),
            profile=RawProfile(
                channel=self.channel_id, envelope_size=self.envelope_size
            ),
            stream="workload",
        )
        self._engine = WorkloadEngine(
            self.sim,
            self.frontends,
            [spec],
            streams=self.streams or RandomStreams(0),
            duration=self.duration,
            track_latency=False,
        )
        self._engine.start()

    def stop(self) -> None:
        if self._engine is not None:
            self._engine.stop()

    @property
    def submitted(self) -> int:
        return self._engine.offered if self._engine is not None else 0


class ClosedLoopClients(ClosedLoopDriver):
    """Historical name for :class:`~repro.workload.engine.ClosedLoopDriver`."""
