"""Declarative benchmark registry, runner, and JSON result schema.

The harness replaces the hand-rolled sweep loops of the original
``benchmarks/bench_*.py`` scripts with one declarative shape (borrowed
from benchalot's benchmark matrix):

- a :class:`Benchmark` declares a *parameter matrix* (the cross product
  of named value lists), optional ``setup``/``teardown`` callables, a
  ``run`` callable that measures one matrix point and returns a flat
  ``{metric_name: value}`` mapping, a repeat count, and a seed policy;
- :func:`run_benchmark` expands the matrix, executes every point
  ``repeats`` times, records the per-repeat metric samples through the
  :mod:`repro.sim.monitor` instruments, and summarizes them
  (mean/median/p95/stdev);
- :func:`run_suite` runs any subset of the registry and produces a
  versioned, machine-readable result document that
  :func:`write_result` serializes to ``BENCH_<name>.json`` — the
  trajectory that :mod:`repro.bench.compare` gates regressions against.

Every benchmark may declare a ``smoke_matrix`` (and ``smoke_repeats``):
a seconds-fast subset used by ``make bench-smoke`` and the tier-1 test
suite, while the full matrix reproduces the paper figures.
"""

from __future__ import annotations

import itertools
import json
import math
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro import __version__
from repro.sim.monitor import StatsRegistry, summarize

#: Version tag of the JSON result documents.  Bump on incompatible
#: schema changes; :func:`validate_result` enforces it on load.
SCHEMA = "repro-bench-result/1"

#: Statistics reported for every metric at every matrix point.
SUMMARY_KEYS = ("count", "mean", "median", "p95", "stdev", "min", "max")

#: Seed policies: ``per-repeat`` derives a distinct seed for every
#: repeat (base + repeat index); ``fixed`` reuses the base seed, which
#: makes repeats bit-identical in the deterministic simulator.
SEED_POLICIES = ("per-repeat", "fixed")


@dataclass(frozen=True)
class BenchContext:
    """What a benchmark's callables receive for one measurement."""

    params: Mapping[str, Any]
    seed: int
    repeat: int
    mode: str  # "full" or "smoke"
    #: a :class:`repro.obs.Observability` hub when the run was started
    #: with ``phases=True``; benchmarks that build an ordering service
    #: pass it through so per-phase latencies land in the result JSON
    obs: Optional[Any] = None

    def __getitem__(self, name: str) -> Any:
        return self.params[name]


@dataclass(frozen=True)
class Benchmark:
    """One registered benchmark: a parameter matrix plus callables.

    ``run(ctx)`` measures a single matrix point and returns a flat
    ``{metric: float}`` mapping.  ``directions`` maps metric names to
    ``"higher"`` or ``"lower"`` (is-better); unlisted metrics fall back
    to a name heuristic (latency-like names are lower-is-better).
    """

    name: str
    run: Callable[[BenchContext], Mapping[str, float]]
    matrix: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    smoke_matrix: Optional[Mapping[str, Sequence[Any]]] = None
    setup: Optional[Callable[[BenchContext], None]] = None
    teardown: Optional[Callable[[BenchContext], None]] = None
    repeats: int = 1
    smoke_repeats: int = 1
    base_seed: int = 0
    seed_policy: str = "per-repeat"
    directions: Mapping[str, str] = field(default_factory=dict)
    #: per-metric relative tolerance overrides for ``bench compare``
    #: (wall-clock metrics need a far wider band than the
    #: bit-deterministic simulator metrics); unlisted metrics use the
    #: comparison's global tolerance
    tolerances: Mapping[str, float] = field(default_factory=dict)
    description: str = ""
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("benchmark name must be non-empty")
        if self.seed_policy not in SEED_POLICIES:
            raise ValueError(
                f"seed_policy must be one of {SEED_POLICIES}, "
                f"got {self.seed_policy!r}"
            )
        for matrix in (self.matrix, self.smoke_matrix or {}):
            for key, values in matrix.items():
                if not values:
                    raise ValueError(
                        f"{self.name}: matrix axis {key!r} has no values"
                    )
        for metric, direction in self.directions.items():
            if direction not in ("higher", "lower"):
                raise ValueError(
                    f"{self.name}: direction for {metric!r} must be "
                    f"'higher' or 'lower', got {direction!r}"
                )
        for metric, tol in self.tolerances.items():
            if not isinstance(tol, (int, float)) or tol < 0:
                raise ValueError(
                    f"{self.name}: tolerance for {metric!r} must be a "
                    f"non-negative number, got {tol!r}"
                )

    def matrix_for(self, mode: str) -> Mapping[str, Sequence[Any]]:
        if mode == "smoke" and self.smoke_matrix is not None:
            return self.smoke_matrix
        return self.matrix

    def repeats_for(self, mode: str) -> int:
        return self.smoke_repeats if mode == "smoke" else self.repeats

    def points(self, mode: str = "full") -> Iterator[Dict[str, Any]]:
        """Expand the matrix into points, declaration order first."""
        matrix = self.matrix_for(mode)
        if not matrix:
            yield {}
            return
        keys = list(matrix)
        for combo in itertools.product(*(matrix[k] for k in keys)):
            yield dict(zip(keys, combo))

    def seed_for(self, repeat: int, base_seed: Optional[int] = None) -> int:
        base = self.base_seed if base_seed is None else base_seed
        if self.seed_policy == "fixed":
            return base
        return base + repeat

    def direction_of(self, metric: str) -> str:
        explicit = self.directions.get(metric)
        if explicit is not None:
            return explicit
        return default_direction(metric)


def default_direction(metric: str) -> str:
    """Heuristic is-better direction for metrics without a declaration:
    latency-looking names are lower-is-better, everything else higher."""
    lowered = metric.lower()
    if lowered.endswith(("_s", "_ms", "_seconds")):
        return "lower"
    for token in ("latency", "median", "p90", "p95", "p99", "delay"):
        if token in lowered:
            return "lower"
    return "higher"


class DuplicateBenchmarkError(ValueError):
    pass


class BenchmarkRegistry:
    """Named collection of benchmarks, iteration in registration order."""

    def __init__(self):
        self._benchmarks: Dict[str, Benchmark] = {}

    def add(self, benchmark: Benchmark) -> Benchmark:
        if benchmark.name in self._benchmarks:
            raise DuplicateBenchmarkError(
                f"benchmark {benchmark.name!r} already registered"
            )
        self._benchmarks[benchmark.name] = benchmark
        return benchmark

    def register(self, **kwargs) -> Callable:
        """Decorator form: ``@REGISTRY.register(name=..., matrix=...)``
        wraps the decorated callable as the benchmark's ``run``."""

        def decorate(run: Callable) -> Callable:
            self.add(
                Benchmark(
                    run=run,
                    description=kwargs.pop("description", run.__doc__ or ""),
                    **kwargs,
                )
            )
            return run

        return decorate

    def get(self, name: str) -> Benchmark:
        try:
            return self._benchmarks[name]
        except KeyError:
            raise KeyError(
                f"unknown benchmark {name!r}; registered: {sorted(self._benchmarks)}"
            ) from None

    def names(self) -> List[str]:
        return list(self._benchmarks)

    def select(self, patterns: Optional[Sequence[str]] = None) -> List[Benchmark]:
        """Benchmarks whose name contains any of the substrings (all
        benchmarks when ``patterns`` is falsy).  Unmatched patterns are
        an error, so typos fail loudly."""
        if not patterns:
            return list(self._benchmarks.values())
        chosen: Dict[str, Benchmark] = {}
        for pattern in patterns:
            hits = [b for n, b in self._benchmarks.items() if pattern in n]
            if not hits:
                raise KeyError(
                    f"pattern {pattern!r} matches no benchmark; "
                    f"registered: {sorted(self._benchmarks)}"
                )
            for benchmark in hits:
                chosen.setdefault(benchmark.name, benchmark)
        return list(chosen.values())

    def __iter__(self) -> Iterator[Benchmark]:
        return iter(self._benchmarks.values())

    def __contains__(self, name: str) -> bool:
        return name in self._benchmarks

    def __len__(self) -> int:
        return len(self._benchmarks)


#: The process-wide registry that :mod:`repro.bench.suite` populates.
REGISTRY = BenchmarkRegistry()


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class MetricSummary:
    """Per-repeat samples of one metric at one matrix point."""

    name: str
    direction: str
    values: List[float]
    stats: Dict[str, float]
    #: declared relative tolerance for regression gating (None = use
    #: the comparison's global tolerance)
    tolerance: Optional[float] = None

    @property
    def median(self) -> float:
        return self.stats["median"]

    def to_json_dict(self) -> Dict[str, Any]:
        document = {
            "direction": self.direction,
            "values": [_jsonable(v) for v in self.values],
            **{k: _jsonable(self.stats[k]) for k in SUMMARY_KEYS},
        }
        if self.tolerance is not None:
            document["tolerance"] = self.tolerance
        return document


@dataclass
class PointResult:
    """All metrics measured at one matrix point."""

    params: Dict[str, Any]
    seeds: List[int]
    metrics: Dict[str, MetricSummary]
    #: per-phase latency samples (one mean per repeat) when the run was
    #: started with ``phases=True`` and the benchmark produced complete
    #: envelope chains; ``None`` otherwise.  Keys are the phase labels
    #: of :data:`repro.obs.PHASES` plus ``"end_to_end"``.
    phases: Optional[Dict[str, List[float]]] = None

    def to_json_dict(self) -> Dict[str, Any]:
        document = {
            "params": dict(self.params),
            "seeds": list(self.seeds),
            "repeats": len(self.seeds),
            "metrics": {
                name: summary.to_json_dict()
                for name, summary in sorted(self.metrics.items())
            },
        }
        if self.phases is not None:
            document["phases"] = {
                label: [_jsonable(v) for v in values]
                for label, values in sorted(self.phases.items())
            }
        return document


@dataclass
class BenchmarkResult:
    """One benchmark's expanded matrix with summarized metrics."""

    benchmark: str
    description: str
    mode: str
    seed_policy: str
    points: List[PointResult]

    def point(self, **params) -> PointResult:
        """The unique point whose params include all the given ones."""
        hits = [
            p
            for p in self.points
            if all(p.params.get(k) == v for k, v in params.items())
        ]
        if not hits:
            raise KeyError(f"{self.benchmark}: no point matching {params}")
        if len(hits) > 1:
            raise KeyError(
                f"{self.benchmark}: {params} is ambiguous ({len(hits)} points)"
            )
        return hits[0]

    def value(self, metric: str, **params) -> float:
        """Median-of-repeats of a metric at the matching point."""
        return self.point(**params).metrics[metric].median

    def series(self, metric: str, over: str, **fixed) -> List[Tuple[Any, float]]:
        """``(param value, metric median)`` pairs swept along one axis."""
        rows = [
            (p.params[over], p.metrics[metric].median)
            for p in self.points
            if over in p.params
            and all(p.params.get(k) == v for k, v in fixed.items())
        ]
        if not rows:
            raise KeyError(
                f"{self.benchmark}: no points sweeping {over!r} with {fixed}"
            )
        return rows

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "description": self.description,
            "mode": self.mode,
            "seed_policy": self.seed_policy,
            "points": [p.to_json_dict() for p in self.points],
        }


@dataclass
class SuiteResult:
    """A full run: environment fingerprint plus per-benchmark results."""

    run_name: str
    mode: str
    created_unix: float
    environment: Dict[str, Any]
    benchmarks: List[BenchmarkResult]

    def benchmark(self, name: str) -> BenchmarkResult:
        for result in self.benchmarks:
            if result.benchmark == name:
                return result
        raise KeyError(f"run {self.run_name!r} has no benchmark {name!r}")

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "run_name": self.run_name,
            "mode": self.mode,
            "created_unix": self.created_unix,
            "environment": self.environment,
            "benchmarks": [b.to_json_dict() for b in self.benchmarks],
        }


def _jsonable(value: float) -> Optional[float]:
    """NaN/inf have no valid JSON encoding; map them to null."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def environment_fingerprint() -> Dict[str, Any]:
    """Where a result came from.  Excluded from reproducibility
    comparisons: the simulator makes the *metrics* machine-independent,
    the fingerprint only records provenance."""
    return {
        "repro_version": __version__,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "argv": list(sys.argv),
    }


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
def run_benchmark(
    benchmark: Benchmark,
    mode: str = "full",
    repeats: Optional[int] = None,
    base_seed: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    phases: bool = False,
) -> BenchmarkResult:
    """Execute one benchmark's matrix and summarize its metrics.

    Per-repeat metric values are recorded through a
    :class:`repro.sim.monitor.StatsRegistry` latency recorder per
    metric, then summarized with the shared statistics helpers, so the
    JSON numbers and the live instruments can never disagree.

    With ``phases=True`` every repeat gets a fresh
    :class:`repro.obs.Observability` hub on its :class:`BenchContext`;
    benchmarks that thread it into ``build_ordering_service`` produce a
    per-phase latency breakdown embedded in the point's JSON, which
    lets ``bench compare`` localize a latency regression to a protocol
    phase.
    """
    if mode not in ("full", "smoke"):
        raise ValueError(f"mode must be 'full' or 'smoke', got {mode!r}")
    repeat_count = benchmark.repeats_for(mode) if repeats is None else repeats
    if repeat_count < 1:
        raise ValueError("repeats must be >= 1")

    points: List[PointResult] = []
    for params in benchmark.points(mode):
        stats = StatsRegistry()
        seeds: List[int] = []
        directions: Dict[str, str] = {}
        phase_samples: Dict[str, List[float]] = {}
        for repeat in range(repeat_count):
            seed = benchmark.seed_for(repeat, base_seed)
            seeds.append(seed)
            obs = None
            if phases:
                from repro.obs import Observability

                obs = Observability()
            ctx = BenchContext(
                params=params, seed=seed, repeat=repeat, mode=mode, obs=obs
            )
            if benchmark.setup is not None:
                benchmark.setup(ctx)
            try:
                metrics = benchmark.run(ctx)
            finally:
                if benchmark.teardown is not None:
                    benchmark.teardown(ctx)
            if not metrics:
                raise ValueError(
                    f"{benchmark.name}: run returned no metrics at {params}"
                )
            for metric, value in metrics.items():
                stats.latency(metric).record(float(value))
                directions.setdefault(metric, benchmark.direction_of(metric))
            if obs is not None:
                obs.close()
                breakdown = obs.phase_breakdown()
                if breakdown.complete > 0:
                    for label, mean in breakdown.means().items():
                        phase_samples.setdefault(label, []).append(mean)
                    phase_samples.setdefault("end_to_end", []).append(
                        breakdown.end_to_end_mean
                    )
        for metric in directions:
            if stats.latency(metric).count != repeat_count:
                raise ValueError(
                    f"{benchmark.name}: metric {metric!r} missing from some "
                    f"repeats at {params}"
                )
        summaries = {
            metric: MetricSummary(
                name=metric,
                direction=directions[metric],
                values=list(stats.latency(metric)._samples),
                stats=summarize(stats.latency(metric)._samples),
                tolerance=benchmark.tolerances.get(metric),
            )
            for metric in sorted(directions)
        }
        points.append(
            PointResult(
                params=dict(params),
                seeds=seeds,
                metrics=summaries,
                phases=phase_samples or None,
            )
        )
        if progress is not None:
            progress(f"{benchmark.name} {params}: done")
    return BenchmarkResult(
        benchmark=benchmark.name,
        description=benchmark.description.strip(),
        mode=mode,
        seed_policy=benchmark.seed_policy,
        points=points,
    )


def run_suite(
    benchmarks: Sequence[Benchmark],
    run_name: str,
    mode: str = "full",
    repeats: Optional[int] = None,
    base_seed: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    phases: bool = False,
) -> SuiteResult:
    """Run several benchmarks into one result document."""
    results = [
        run_benchmark(
            benchmark,
            mode=mode,
            repeats=repeats,
            base_seed=base_seed,
            progress=progress,
            phases=phases,
        )
        for benchmark in benchmarks
    ]
    return SuiteResult(
        run_name=run_name,
        mode=mode,
        created_unix=time.time(),  # repro: allow[DET001] provenance stamp, not simulated time
        environment=environment_fingerprint(),
        benchmarks=results,
    )


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
class SchemaError(ValueError):
    """A result document does not match the expected schema."""


def validate_result(document: Mapping[str, Any]) -> None:
    """Structural validation of a result document; raises SchemaError."""

    def need(mapping, key, kinds, where):
        if key not in mapping:
            raise SchemaError(f"{where}: missing key {key!r}")
        if not isinstance(mapping[key], kinds):
            raise SchemaError(
                f"{where}: {key!r} must be {kinds}, got {type(mapping[key])}"
            )
        return mapping[key]

    if not isinstance(document, Mapping):
        raise SchemaError("result document must be a mapping")
    if document.get("schema") != SCHEMA:
        raise SchemaError(
            f"unsupported schema {document.get('schema')!r}; expected {SCHEMA!r}"
        )
    need(document, "run_name", str, "document")
    need(document, "mode", str, "document")
    need(document, "created_unix", (int, float), "document")
    need(document, "environment", Mapping, "document")
    benchmarks = need(document, "benchmarks", list, "document")
    for bench in benchmarks:
        where = f"benchmark {bench.get('benchmark')!r}"
        need(bench, "benchmark", str, where)
        points = need(bench, "points", list, where)
        for point in points:
            pwhere = f"{where} point {point.get('params')!r}"
            need(point, "params", Mapping, pwhere)
            need(point, "seeds", list, pwhere)
            need(point, "repeats", int, pwhere)
            metrics = need(point, "metrics", Mapping, pwhere)
            for metric, summary in metrics.items():
                mwhere = f"{pwhere} metric {metric!r}"
                if summary.get("direction") not in ("higher", "lower"):
                    raise SchemaError(f"{mwhere}: bad direction")
                values = need(summary, "values", list, mwhere)
                if len(values) != point["repeats"]:
                    raise SchemaError(
                        f"{mwhere}: {len(values)} values for "
                        f"{point['repeats']} repeats"
                    )
                for key in SUMMARY_KEYS:
                    if key not in summary:
                        raise SchemaError(f"{mwhere}: missing stat {key!r}")
            # optional per-phase breakdown (opt-in via --phases)
            if "phases" in point:
                phases = need(point, "phases", Mapping, pwhere)
                for label, values in phases.items():
                    lwhere = f"{pwhere} phase {label!r}"
                    if not isinstance(label, str):
                        raise SchemaError(f"{lwhere}: label must be a string")
                    if not isinstance(values, list) or not all(
                        isinstance(v, (int, float)) or v is None for v in values
                    ):
                        raise SchemaError(
                            f"{lwhere}: values must be a list of numbers"
                        )


def write_result(result: SuiteResult, path: str) -> str:
    """Serialize a suite result to ``path`` (schema-validated first)."""
    document = result.to_json_dict()
    validate_result(document)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=False, allow_nan=False)
        fh.write("\n")
    return path


def load_result(path: str) -> Dict[str, Any]:
    """Read and validate a result document from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    validate_result(document)
    return document


# ----------------------------------------------------------------------
# Regression history snapshots
# ----------------------------------------------------------------------
#: Default cap on retained history snapshots (~a month of nightlies).
HISTORY_CAP = 30


def _history_snapshot_name(document: Mapping[str, Any]) -> str:
    """``<UTC stamp>-<run name>.json`` — filename order is run order."""
    stamp = time.strftime(
        "%Y%m%dT%H%M%SZ",
        time.gmtime(float(document["created_unix"])),  # repro: allow[DET001] host-side tooling formats a recorded stamp
    )
    run_name = str(document.get("run_name") or "run")
    safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in run_name)
    return f"{stamp}-{safe}"


def append_history(
    result_path: str, history_dir: str, cap: int = HISTORY_CAP
) -> str:
    """Snapshot a result document into the regression-history directory.

    The snapshot is named from the run's ``created_unix`` timestamp so
    lexicographic filename order is chronological order — which is what
    :func:`load_history` and the report's sparklines rely on.  After
    appending, the oldest snapshots beyond ``cap`` are pruned.  Returns
    the snapshot path.
    """
    if cap < 1:
        raise ValueError("history cap must be >= 1")
    document = load_result(result_path)
    os.makedirs(history_dir, exist_ok=True)
    base = _history_snapshot_name(document)
    path = os.path.join(history_dir, f"{base}.json")
    suffix = 1
    while os.path.exists(path):
        # "~N" sorts after ".json" so same-second snapshots keep their
        # append order under the lexicographic == chronological rule
        path = os.path.join(history_dir, f"{base}~{suffix}.json")
        suffix += 1
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=False, allow_nan=False)
        fh.write("\n")
    snapshots = sorted(
        name for name in os.listdir(history_dir) if name.endswith(".json")
    )
    for stale in snapshots[: max(0, len(snapshots) - cap)]:
        os.remove(os.path.join(history_dir, stale))
    return path


def load_history(
    history_dir: str, limit: Optional[int] = None
) -> List[Tuple[str, Dict[str, Any]]]:
    """Load history snapshots as ``(filename, document)`` pairs, oldest
    first (filename order); at most the newest ``limit`` when given.
    Schema-invalid files raise — history is append-only through
    :func:`append_history`, so damage should be loud, not skipped."""
    if not os.path.isdir(history_dir):
        return []
    names = sorted(
        name for name in os.listdir(history_dir) if name.endswith(".json")
    )
    if limit is not None and limit >= 0:
        names = names[len(names) - min(limit, len(names)):]
    return [
        (name, load_result(os.path.join(history_dir, name))) for name in names
    ]


def render_result(result: BenchmarkResult) -> str:
    """Generic ASCII table: one row per matrix point, medians only."""
    lines = [f"{result.benchmark} [{result.mode}]"]
    if result.description:
        lines.append(f"  {result.description.splitlines()[0]}")
    for point in result.points:
        params = ", ".join(f"{k}={v}" for k, v in point.params.items()) or "-"
        lines.append(f"  {params}  (repeats={len(point.seeds)})")
        for name, summary in point.metrics.items():
            stats = summary.stats
            stdev = stats["stdev"]
            spread = "" if math.isnan(stdev) else f" ± {stdev:.4g}"
            lines.append(
                f"    {name:<28} {stats['median']:>14.4f}{spread}"
                f"  [{summary.direction}]"
            )
    return "\n".join(lines)


def render_suite(result: SuiteResult) -> str:
    return "\n\n".join(render_result(b) for b in result.benchmarks)
