"""Exporters for the observability layer.

- :func:`chrome_trace` converts a :class:`~repro.obs.spans.SpanTracer`
  into the Chrome trace-event JSON object format (the ``traceEvents``
  dict flavour), loadable in ``chrome://tracing`` and
  https://ui.perfetto.dev.  Closed spans become complete (``"X"``)
  events; instants and orphaned-open spans become instant (``"i"``)
  events; every track gets a ``thread_name`` metadata (``"M"``) event.
  Timestamps are microseconds, per the spec.
- :func:`validate_chrome_trace` structurally validates such a document
  (the schema check the tests and the CI acceptance step run).
- :func:`render_critical_path` draws the ASCII per-instance breakdown
  of the milestone chain.
- :func:`phase_mean_rows` / :func:`render_phase_table` export the
  per-phase latency breakdown as table rows (canonical
  :data:`~repro.obs.observability.PHASES` order, ``end_to_end`` last)
  for any number of columns — the per-phase tables of
  ``python -m repro.bench report`` are rendered through these.
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple


from repro.obs.observability import MILESTONES, PHASES, Observability
from repro.obs.spans import SpanTracer

_PID = 1


def _track_ids(tracer: SpanTracer) -> Dict[str, int]:
    return {track: tid for tid, track in enumerate(sorted(tracer.tracks()), start=1)}


def chrome_trace(
    tracer: SpanTracer, process_name: str = "repro"
) -> Dict[str, Any]:
    """Render every span and instant as a trace-event JSON document."""
    tids = _track_ids(tracer)
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for track, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    orphan_ids = {span.sid for span in tracer.orphans()}
    for span in tracer.spans:
        tid = tids[span.track]
        args = dict(span.args)
        if span.sid in orphan_ids:
            args["orphan"] = True
        if span.end is None:
            events.append(
                {
                    "name": f"{span.name} (unfinished)",
                    "cat": span.category or "span",
                    "ph": "i",
                    "s": "t",
                    "ts": span.start * 1e6,
                    "pid": _PID,
                    "tid": tid,
                    "args": args,
                }
            )
            continue
        events.append(
            {
                "name": span.name,
                "cat": span.category or "span",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": (span.end - span.start) * 1e6,
                "pid": _PID,
                "tid": tid,
                "args": args,
            }
        )
    for marker in tracer.instants:
        events.append(
            {
                "name": marker.name,
                "cat": "instant",
                "ph": "i",
                "s": "t",
                "ts": marker.time * 1e6,
                "pid": _PID,
                "tid": tids[marker.track],
                "args": dict(marker.args),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


class TraceSchemaError(ValueError):
    """A document does not conform to the trace-event JSON format."""


def validate_chrome_trace(document: Any) -> None:
    """Structural validation of a trace-event JSON object document.

    Raises :class:`TraceSchemaError` on the first violation.  Checks
    the subset of the format the exporters emit (and that Perfetto
    requires to load a file): the ``traceEvents`` array, per-event
    required keys, phase-specific fields, and JSON-serializability.
    """
    if not isinstance(document, dict):
        raise TraceSchemaError("trace document must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise TraceSchemaError("'traceEvents' must be a list")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            raise TraceSchemaError(f"{where}: event must be an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise TraceSchemaError(f"{where}: missing {key!r}")
        if not isinstance(event["name"], str):
            raise TraceSchemaError(f"{where}: 'name' must be a string")
        ph = event["ph"]
        if ph not in ("X", "B", "E", "i", "I", "M", "C"):
            raise TraceSchemaError(f"{where}: unsupported phase {ph!r}")
        if ph == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    raise TraceSchemaError(
                        f"{where}: {key!r} must be a non-negative number"
                    )
        elif ph in ("i", "I"):
            if not isinstance(event.get("ts"), (int, float)):
                raise TraceSchemaError(f"{where}: 'ts' must be a number")
        elif ph == "M":
            args = event.get("args")
            if not isinstance(args, dict) or "name" not in args:
                raise TraceSchemaError(f"{where}: metadata needs args.name")
        if "args" in event and not isinstance(event["args"], dict):
            raise TraceSchemaError(f"{where}: 'args' must be an object")
    try:
        json.dumps(document, allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise TraceSchemaError(f"document is not JSON-serializable: {exc}")


def write_chrome_trace(document: Dict[str, Any], path: str) -> str:
    """Validate and write a trace document to ``path``."""
    validate_chrome_trace(document)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=1, allow_nan=False)
        fh.write("\n")
    return path


# ----------------------------------------------------------------------
# ASCII critical path
# ----------------------------------------------------------------------
def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:8.3f} s "
    return f"{value * 1e3:8.3f} ms"


def render_critical_path(
    obs: Observability, cid: int, width: int = 40
) -> str:
    """Bar-chart breakdown of one consensus instance's milestone chain."""
    timeline = obs.instance_timeline(cid)
    if not timeline:
        return f"cid {cid}: no envelope observed for this instance"
    times = dict(timeline)
    lines = [f"critical path, consensus instance cid={cid}"]
    if len(timeline) < len(MILESTONES):
        reached = ", ".join(name for name, _ in timeline)
        lines.append(f"  incomplete chain (reached: {reached})")
        return "\n".join(lines)
    total = times["delivered"] - times["submitted"]
    longest = max(len(label) for label, _, _ in PHASES)
    for label, start, stop in PHASES:
        delta = times[stop] - times[start]
        share = delta / total if total > 0 else 0.0
        bar = "#" * max(0, round(share * width))
        lines.append(
            f"  {label:<{longest}}  {_fmt_seconds(delta)}  {share:6.1%}  {bar}"
        )
    lines.append(f"  {'end-to-end':<{longest}}  {_fmt_seconds(total)}  100.0%")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Phase-breakdown table export
# ----------------------------------------------------------------------
#: Canonical row order for phase tables: the telescoping phases in
#: pipeline order, then the end-to-end total.
PHASE_TABLE_ORDER = tuple(label for label, _, _ in PHASES) + ("end_to_end",)


def _mean(samples: Sequence[Optional[float]]) -> Optional[float]:
    finite = [
        s for s in samples if isinstance(s, (int, float)) and math.isfinite(s)
    ]
    if not finite:
        return None
    return sum(finite) / len(finite)


def phase_mean_rows(
    samples_by_column: Mapping[str, Mapping[str, Sequence[float]]],
) -> List[Tuple[str, Dict[str, Optional[float]]]]:
    """Order per-phase samples into table rows.

    ``samples_by_column`` maps a column name (a run, a variant, a
    backend) to that column's ``{phase label: [samples]}`` breakdown —
    the shape the bench harness embeds in result JSON under ``phases``.
    Returns ``(phase label, {column: mean seconds})`` rows in canonical
    pipeline order (:data:`PHASE_TABLE_ORDER`), keeping only labels at
    least one column measured; unknown labels sort after the canonical
    ones, alphabetically, so nothing is silently dropped.
    """
    labels_present: set = set()
    for samples in samples_by_column.values():
        labels_present.update(samples)
    ordered = [label for label in PHASE_TABLE_ORDER if label in labels_present]
    ordered += sorted(labels_present - set(PHASE_TABLE_ORDER))
    rows: List[Tuple[str, Dict[str, Optional[float]]]] = []
    for label in ordered:
        rows.append(
            (
                label,
                {
                    column: _mean(samples.get(label, ()))
                    for column, samples in samples_by_column.items()
                },
            )
        )
    return rows


def render_phase_table(
    samples_by_column: Mapping[str, Mapping[str, Sequence[float]]],
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Markdown table of per-phase mean latencies, one column per run.

    Cells are milliseconds (phases are sub-second in every deployment
    we simulate); missing measurements render as ``-``.
    """
    if columns is None:
        columns = sorted(samples_by_column)
    rows = phase_mean_rows({c: samples_by_column[c] for c in columns})
    lines = [
        "| phase | " + " | ".join(columns) + " |",
        "|---" * (len(columns) + 1) + "|",
    ]
    for label, means in rows:
        cells = []
        for column in columns:
            mean = means.get(column)
            cells.append("-" if mean is None else f"{mean * 1e3:.3f}")
        lines.append(f"| {label} | " + " | ".join(cells) + " |")
    return "\n".join(lines)
