"""Tests for the protocol tracer."""


from repro.sim.trace import MessageTracer, _describe
from tests.conftest import Cluster


class TestMessageTracer:
    def run_traced(self, kinds=None, **tracer_kwargs):
        cluster = Cluster()
        tracer = MessageTracer(cluster.network, kinds=kinds, **tracer_kwargs)
        proxy = cluster.proxy()
        future = proxy.invoke(1)
        assert cluster.drain([future])
        cluster.run(0.5)
        return cluster, tracer

    def test_captures_all_kinds_by_default(self):
        _cluster, tracer = self.run_traced()
        summary = tracer.summary()
        assert {"ClientRequest", "Propose", "Write", "Accept", "Reply"} <= set(summary)

    def test_kind_filter(self):
        _cluster, tracer = self.run_traced(kinds={"Propose"})
        assert set(tracer.summary()) == {"Propose"}
        assert tracer.count("Propose") == 3
        assert tracer.count() == 3

    def test_events_time_ordered(self):
        _cluster, tracer = self.run_traced()
        times = [event.time for event in tracer.events]
        assert times == sorted(times)

    def test_between_window(self):
        _cluster, tracer = self.run_traced()
        all_events = tracer.events
        window = tracer.between(all_events[0].time, all_events[-1].time)
        assert len(window) == len(all_events)
        assert tracer.between(999.0, 1000.0) == []

    def test_involving(self):
        _cluster, tracer = self.run_traced(kinds={"Write"})
        for event in tracer.involving(2):
            assert 2 in (event.src, event.dst)
        assert len(tracer.involving(2)) == 6  # 3 sent + 3 received

    def test_capacity_limit(self):
        _cluster, tracer = self.run_traced(capacity=5)
        assert len(tracer.events) == 5
        assert tracer.dropped > 0

    def test_detail_extraction(self):
        _cluster, tracer = self.run_traced(kinds={"Propose"})
        assert tracer.events[0].detail == "cid=0"

    def test_describe_probes_known_attributes(self):
        class WithCid:
            cid = 7

        assert _describe(WithCid()) == "cid=7"

    def test_describe_falls_back_to_type_name(self):
        class Opaque:
            pass

        assert _describe(Opaque()) == "Opaque"
        assert _describe("payload") == "str"

    def test_timeline_rendering(self):
        _cluster, tracer = self.run_traced(kinds={"Propose", "Write"})
        text = tracer.timeline(limit=5)
        assert "Propose" in text
        assert "->" in text
        assert "more events" in text  # truncation marker

    def test_sequence_diagram(self):
        _cluster, tracer = self.run_traced(kinds={"Propose"})
        diagram = tracer.sequence_diagram(participants=[0, 1, 2, 3])
        assert "Propose" in diagram
        assert ">" in diagram or "<" in diagram

    def test_detach_stops_capture(self):
        cluster = Cluster()
        tracer = MessageTracer(cluster.network)
        tracer.detach()
        proxy = cluster.proxy()
        future = proxy.invoke(1)
        assert cluster.drain([future])
        assert tracer.count() == 0
