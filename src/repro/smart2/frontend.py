"""The SmartBFT frontend: single signed copies instead of copy matching.

Where the BFT-SMaRt frontend (:class:`repro.ordering.frontend.Frontend`)
waits for ``2f+1`` matching block *copies*, this frontend subscribes to
ONE ordering node and trusts a delivered block iff it carries a valid
``2f+1`` signature quorum -- the block's own metadata proves consensus,
so dissemination bandwidth drops from ``n`` full copies to one copy
plus ``2f+1`` signatures (the bake-off in ``docs/SMARTBFT.md``
quantifies this).

Liveness against a crashed or censoring node comes from rotation: an
envelope not committed within ``request_timeout`` is resubmitted to the
next node, and a subscription that stops delivering while work is
outstanding fails over to the next node (re-synchronising through the
consensus sequence number).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple, Union

from repro.crypto.keys import KeyRegistry
from repro.fabric.api import BlockDelivery, SubmitEnvelope
from repro.fabric.block import Block
from repro.fabric.envelope import Envelope, check_payload_size, payload_length
from repro.ordering.admission import AdmissionController, Rejected
from repro.sim.core import Simulator
from repro.sim.monitor import StatsRegistry
from repro.sim.network import Network
from repro.smart.messages import ClientRequest
from repro.smart.view import View
from repro.smart2.messages import Subscribe


class QuorumFrontend:
    """One frontend of the SmartBFT-style ordering service."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: int,
        view: View,
        registry: Optional[KeyRegistry] = None,
        node_names: Optional[Dict[int, str]] = None,
        stats: Optional[StatsRegistry] = None,
        max_envelope_bytes: Optional[Union[int, Mapping[str, int]]] = None,
        request_timeout: float = 2.0,
        admission: Optional[AdmissionController] = None,
    ):
        self.sim = sim
        self.network = network
        self.name = name
        self.view = view
        self.f = view.f
        self.registry = registry
        #: ordering node id -> enrolled identity name
        self.node_names = dict(node_names or {})
        self.orderer_names: Set[str] = set(self.node_names.values())
        self._id_by_name = {v: k for k, v in self.node_names.items()}
        self.stats = stats or StatsRegistry()
        self.max_envelope_bytes = max_envelope_bytes
        self.request_timeout = request_timeout
        #: opt-in backpressure (docs/WORKLOADS.md); None = relay all
        self.admission = admission
        #: same observability shape as the BFT-SMaRt frontend, whose
        #: hub attaches to ``frontend.proxy`` as well
        self.proxy = self
        self.obs = None
        self.peers: List[object] = []
        self.on_block: List[Callable[[Block], None]] = []

        self._nodes = list(view.processes)
        self._home = self._nodes[self.name % len(self._nodes)]
        self._subscribed_index = self._nodes.index(self._home)

        self._sequence = 0
        #: rid -> (request, submitted_at, rotation offset)
        self._outstanding: Dict[Tuple[int, int], Tuple[ClientRequest, float, int]] = {}
        self._rid_by_env: Dict[int, Tuple[int, int]] = {}
        self._next_expected: Dict[str, int] = {}
        self._future: Dict[str, Dict[int, Block]] = {}
        self._delivered_count = 0
        self._last_delivery = 0.0
        self._timer_armed = False

        self.envelopes_submitted = 0
        self.blocks_delivered = 0
        self.rejected_blocks = 0
        self.resubmissions = 0
        self.failovers = 0
        self.delivered_digests: Dict[str, List[bytes]] = {}

        self._blocks_meter = None
        self._envelopes_meter = None
        self._latency_recorder = None

    def start(self) -> None:
        """Open the block subscription (call after network registration)."""
        subscribe = Subscribe(sender=self.name, next_seq=self._delivered_count)
        self.network.send(
            self.name,
            self._nodes[self._subscribed_index],
            subscribe,
            subscribe.wire_size(),
        )

    # ------------------------------------------------------------------
    def attach_peer(self, peer_id: object) -> None:
        if peer_id not in self.peers:
            self.peers.append(peer_id)

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def submit(self, envelope: Envelope) -> Optional[Rejected]:
        """Send an envelope to the ordering cluster (fire-and-forget).

        Same contract as the BFT-SMaRt frontend: without admission
        control, oversized payloads raise
        :class:`~repro.fabric.envelope.OversizedPayloadError`; with it,
        every refusal becomes an explicit :class:`Rejected` verdict and
        ``None`` means admitted.
        """
        admission = self.admission
        ceiling = self.max_envelope_bytes
        if ceiling is not None:
            if not isinstance(ceiling, int):
                ceiling = ceiling.get(envelope.channel_id)
            if ceiling is not None:
                if admission is None:
                    check_payload_size(envelope.payload_ref(), ceiling)
                elif payload_length(envelope.payload_ref()) > ceiling:
                    return self._reject(
                        envelope, admission.reject_oversized(envelope.submitter)
                    )
        if admission is not None:
            verdict = admission.admit(envelope.submitter, self.sim.now)
            if verdict is not None:
                return self._reject(envelope, verdict)
        if envelope.create_time is None:
            envelope.create_time = self.sim.now
        self.envelopes_submitted += 1
        if self.obs is not None:
            self.obs.on_submit(self.name, envelope, self.sim.now)
        request = ClientRequest(
            client_id=self.name,
            sequence=self._sequence,
            operation=envelope,
            size_bytes=envelope.payload_size,
            submit_time=self.sim.now,
        )
        self._sequence += 1
        self._outstanding[request.request_id] = (request, self.sim.now, 0)
        self._rid_by_env[envelope.envelope_id] = request.request_id
        self.network.send(self.name, self._home, request, request.wire_size())
        self._arm_timer()
        return None

    def _reject(self, envelope: Envelope, verdict: Rejected) -> Rejected:
        if self.obs is not None:
            self.obs.on_reject(
                self.name, envelope.submitter, verdict.reason, self.sim.now
            )
        return verdict

    def _arm_timer(self) -> None:
        if self._timer_armed:
            return
        self._timer_armed = True
        self.sim.schedule(self.request_timeout, self._retry_tick)

    def _retry_tick(self) -> None:
        self._timer_armed = False
        if not self._outstanding:
            return
        now = self.sim.now
        n = len(self._nodes)
        for rid in sorted(self._outstanding):
            request, submitted_at, offset = self._outstanding[rid]
            if now - submitted_at < self.request_timeout:
                continue
            # rotate: a crashed or censoring node never commits it, the
            # next one forwards it to whichever leader is current
            offset += 1
            target = self._nodes[(self._nodes.index(self._home) + offset) % n]
            self._outstanding[rid] = (request, now, offset)
            self.resubmissions += 1
            self.network.send(self.name, target, request, request.wire_size())
        if now - self._last_delivery > self.request_timeout:
            # the subscription went quiet while work is outstanding:
            # fail over to the next node and re-sync by sequence
            self._subscribed_index = (self._subscribed_index + 1) % n
            self.failovers += 1
            subscribe = Subscribe(sender=self.name, next_seq=self._delivered_count)
            self.network.send(
                self.name,
                self._nodes[self._subscribed_index],
                subscribe,
                subscribe.wire_size(),
            )
        self._arm_timer()

    # ------------------------------------------------------------------
    # delivery side
    # ------------------------------------------------------------------
    def deliver(self, src, message) -> None:
        if isinstance(message, SubmitEnvelope):
            self.submit(message.envelope)
        elif isinstance(message, BlockDelivery):
            self.on_block_copy(message.source, message.block)

    def on_block_copy(self, source: str, block: Block) -> None:
        if self.orderer_names and source not in self.orderer_names:
            return
        if not self._quorum_ok(block):
            self.rejected_blocks += 1
            return
        channel = block.channel_id
        number = block.header.number
        if self.obs is not None:
            self.obs.on_block_copy(self.name, channel, number, self.sim.now)
        expected = self._next_expected.get(channel, 0)
        if number < expected:
            return  # duplicate (e.g. overlap after a failover re-sync)
        if number > expected:
            # a predecessor was dropped in flight; park the block, the
            # failover re-sync backfills the gap
            self._future.setdefault(channel, {})[number] = block
            return
        self._accept_block(block)
        ready = self._future.get(channel, {})
        while self._next_expected.get(channel, 0) in ready:
            self._accept_block(ready.pop(self._next_expected[channel]))

    def _quorum_ok(self, block: Block) -> bool:
        """Does the block carry a valid Byzantine-majority quorum?"""
        if self.registry is None:
            return False
        payload = block.header.signing_payload()
        signers = set()
        for name, signature in sorted(block.signatures.items()):
            node_id = self._id_by_name.get(name)
            if node_id is None or name not in self.registry:
                continue
            if self.registry.verifier_of(name).verify(payload, signature):
                signers.add(node_id)
        return self.view.has_quorum(signers)

    def _accept_block(self, block: Block) -> None:
        channel = block.channel_id
        self._next_expected[channel] = block.header.number + 1
        self._delivered_count += 1
        self._last_delivery = self.sim.now
        self.blocks_delivered += 1
        freed = 0
        for envelope in block.envelopes:
            rid = self._rid_by_env.pop(envelope.envelope_id, None)
            if rid is not None and self._outstanding.pop(rid, None) is not None:
                freed += 1
        if freed and self.admission is not None:
            self.admission.release(freed)
        if self.obs is not None:
            self.obs.on_block_delivered(self.name, block, self.sim.now)
        self.delivered_digests.setdefault(channel, []).append(block.header.digest())
        self._record_stats(block)
        delivery = BlockDelivery(block=block, source=self.name)
        self.network.broadcast(self.name, self.peers, delivery, delivery.wire_size())
        for callback in self.on_block:
            callback(block)

    def ledger_digest(self, channel: Optional[str] = None) -> bytes:
        """Running hash over the delivered block-digest chain.

        Identical fold to the BFT-SMaRt frontend, so cross-backend
        agreement can be asserted digest-for-digest.
        """
        from repro.crypto.hashing import sha256

        channels = (
            [channel] if channel is not None else sorted(self.delivered_digests)
        )
        acc = b""
        for name in channels:
            for digest in self.delivered_digests.get(name, []):
                acc = sha256("ledger", acc, name, digest)
        return acc

    def _record_stats(self, block: Block) -> None:
        now = self.sim.now
        blocks = self._blocks_meter
        if blocks is None:
            blocks = self._blocks_meter = self.stats.meter(f"{self.name}.blocks")
            self._envelopes_meter = self.stats.meter(f"{self.name}.envelopes")
            self._latency_recorder = self.stats.latency(f"{self.name}.latency")
        blocks.record(now, 1.0)
        self._envelopes_meter.record(now, float(len(block.envelopes)))
        latency = self._latency_recorder
        for envelope in block.envelopes:
            if envelope.create_time is not None:
                latency.record(now - envelope.create_time)
