"""SHA-256 hashing over a canonical byte encoding.

Hyperledger Fabric hashes and signs protobuf-encoded structures; this
module provides the deterministic encoding our data structures use in
its place.  The encoding is a simple type-tagged, length-prefixed
format -- unambiguous (no two distinct values share an encoding), which
is all a hash chain needs.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any, Iterable, Union

Encodable = Union[bytes, str, int, float, bool, None, tuple, list, dict]

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_BYTES = b"B"
_TAG_STR = b"S"
_TAG_LIST = b"L"
_TAG_DICT = b"M"


def canonical_encode(value: Encodable) -> bytes:
    """Deterministically encode ``value`` to bytes.

    Supports None, bools, ints, floats, bytes, str, and (nested)
    lists/tuples and dicts with encodable keys (dict entries are sorted
    by encoded key, so dict ordering never affects the output).
    """
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def _encode_into(out: bytearray, value: Encodable) -> None:
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        body = str(value).encode("ascii")
        out += _TAG_INT
        out += struct.pack(">I", len(body))
        out += body
    elif isinstance(value, float):
        out += _TAG_FLOAT
        out += struct.pack(">d", value)
    elif isinstance(value, bytes):
        out += _TAG_BYTES
        out += struct.pack(">I", len(value))
        out += value
    elif isinstance(value, str):
        body = value.encode("utf-8")
        out += _TAG_STR
        out += struct.pack(">I", len(body))
        out += body
    elif isinstance(value, (list, tuple)):
        out += _TAG_LIST
        out += struct.pack(">I", len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, dict):
        encoded_items = sorted(
            (canonical_encode(key), canonical_encode(val)) for key, val in value.items()
        )
        out += _TAG_DICT
        out += struct.pack(">I", len(encoded_items))
        for key_bytes, val_bytes in encoded_items:
            out += key_bytes
            out += val_bytes
    else:
        raise TypeError(f"cannot canonically encode {type(value).__name__}")


def sha256(*values: Encodable) -> bytes:
    """SHA-256 digest of the canonical encoding of ``values``.

    ``bytes`` arguments passed alone are hashed as-is-encoded (still
    length-prefixed), so ``sha256(a, b) != sha256(a + b)`` -- no
    concatenation ambiguity.
    """
    out = bytearray()
    for value in values:
        _encode_into(out, value)
    # hashing the concatenation equals feeding the encodings to one
    # hasher.update per value; a single buffer skips the per-value
    # bytes copies (sha256 runs on every propose/sign/verify)
    return hashlib.sha256(out).digest()


def sha256_hex(*values: Encodable) -> str:
    return sha256(*values).hex()


def hash_iterable(items: Iterable[Any]) -> bytes:
    """Hash an iterable of encodable items as a list."""
    return sha256(list(items))
