"""Observability CLI: ``python -m repro.obs``.

Subcommands::

    python -m repro.obs report                       # attribution report
    python -m repro.obs report --seed 7 --rate 800
    python -m repro.obs report --trace trace.json    # + Chrome trace
    python -m repro.obs report --cid 12              # pick the critical path
    python -m repro.obs trace --out trace.json       # trace export only

``report`` exits non-zero when the phase-sum/harness cross-check
fails (the CI acceptance gate).  Exported traces are validated against
the trace-event JSON schema before they are written; open them at
https://ui.perfetto.dev or in ``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.export import chrome_trace, write_chrome_trace
from repro.obs.report import cross_check, render_report, run_scenario


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument(
        "--orderers", type=int, default=4, help="ordering cluster size"
    )
    parser.add_argument(
        "--duration", type=float, default=2.0,
        help="seconds of simulated load (default 2.0)",
    )
    parser.add_argument(
        "--rate", type=float, default=500.0, help="offered load, tx/s"
    )
    parser.add_argument("--envelope-size", type=int, default=1024)
    parser.add_argument("--block-size", type=int, default=10)


def cmd_report(args) -> int:
    result = run_scenario(
        seed=args.seed,
        orderers=args.orderers,
        duration=args.duration,
        rate=args.rate,
        envelope_size=args.envelope_size,
        block_size=args.block_size,
    )
    print(render_report(result, cid=args.cid))
    if args.trace:
        path = write_chrome_trace(chrome_trace(result.obs.tracer), args.trace)
        print(f"\n[chrome trace validated and written to {path}]")
    ok, _ = cross_check(result)
    if not ok:
        print("repro.obs report: cross-check FAILED", file=sys.stderr)
        return 1
    return 0


def cmd_trace(args) -> int:
    result = run_scenario(
        seed=args.seed,
        orderers=args.orderers,
        duration=args.duration,
        rate=args.rate,
        envelope_size=args.envelope_size,
        block_size=args.block_size,
    )
    path = write_chrome_trace(chrome_trace(result.obs.tracer), args.out)
    print(f"[chrome trace validated and written to {path}]")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability reports and trace export "
        "(see docs/OBSERVABILITY.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report_parser = sub.add_parser(
        "report", help="run a seeded scenario and print the attribution report"
    )
    _add_scenario_args(report_parser)
    report_parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="also export the Chrome trace-event JSON to PATH",
    )
    report_parser.add_argument(
        "--cid", type=int, default=None,
        help="consensus instance for the critical-path section "
        "(default: the median decided instance)",
    )

    trace_parser = sub.add_parser(
        "trace", help="run a seeded scenario and export only the trace"
    )
    _add_scenario_args(trace_parser)
    trace_parser.add_argument("--out", default="obs-trace.json", metavar="PATH")

    args = parser.parse_args(argv)
    if args.command == "report":
        return cmd_report(args)
    return cmd_trace(args)


if __name__ == "__main__":
    sys.exit(main())
